// Message handlers — the user-written reaction code of a component.
//
// Paper §2.1: the compiler generates one message-handler skeleton per In
// port; the programmer fills in process(). When a message arrives at an In
// port, a pool thread (carrying the message's priority) calls process()
// with the message and the SMM through which it arrived, so the handler can
// fetch connected Out ports via smm.getOutPort() (paper Fig. 7/8).
#pragma once

#include <functional>
#include <utility>

namespace compadres::core {

class Smm;

/// Type-erased handler interface used by the dispatch machinery.
class MessageHandlerBase {
public:
    virtual ~MessageHandlerBase() = default;
    virtual void process_raw(void* msg, Smm& smm) = 0;
};

/// Strongly-typed handler base: subclass and implement process().
template <typename T>
class MessageHandler : public MessageHandlerBase {
public:
    virtual void process(T& msg, Smm& smm) = 0;

    void process_raw(void* msg, Smm& smm) final {
        process(*static_cast<T*>(msg), smm);
    }
};

/// Lambda adaptor, for handlers small enough not to deserve a class.
template <typename T>
class FnHandler final : public MessageHandler<T> {
public:
    using Fn = std::function<void(T&, Smm&)>;
    explicit FnHandler(Fn fn) : fn_(std::move(fn)) {}

    void process(T& msg, Smm& smm) override { fn_(msg, smm); }

private:
    Fn fn_;
};

} // namespace compadres::core
