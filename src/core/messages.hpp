// Built-in message types.
//
// Compadres messages must be "RTSJ-safe": every byte a message refers to
// must live in the message itself so that a reference to the pooled object
// is the only cross-scope reference in play (paper §2.2). In C++ terms:
// flat value types, fixed-capacity buffers, no pointers.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace compadres::core {

/// The paper's Listing example message.
struct MyInteger {
    int value = 0;
};

/// Fixed-capacity text message (CDL name "String").
struct TextMessage {
    static constexpr std::size_t kCapacity = 256;
    std::array<char, kCapacity> data{};
    std::size_t length = 0;

    void assign(std::string_view s) {
        length = std::min(s.size(), kCapacity);
        std::memcpy(data.data(), s.data(), length);
    }
    std::string_view view() const noexcept { return {data.data(), length}; }
};

/// Fixed-capacity octet buffer (CDL name "OctetSeq"), sized to hold the
/// largest evaluation payload (1024 B) plus GIOP framing with headroom.
struct OctetSeq {
    static constexpr std::size_t kCapacity = 4096;
    std::array<std::uint8_t, kCapacity> data{};
    std::size_t length = 0;

    void assign(const std::uint8_t* src, std::size_t n) {
        length = std::min(n, kCapacity);
        std::memcpy(data.data(), src, length);
    }
    const std::uint8_t* begin_bytes() const noexcept { return data.data(); }
};

/// Timestamped sample used by the sensor-pipeline example.
struct SensorSample {
    std::int64_t timestamp_ns = 0;
    std::int32_t sensor_id = 0;
    double value = 0.0;
};

} // namespace compadres::core
