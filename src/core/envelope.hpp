// Envelope — the unit that flows through In-port buffers.
//
// Carries the pooled message, the pool to return it to after process(),
// the destination port (whose handler runs), the SMM hosting the
// connection (handed to the handler), and the message priority set at
// send() time (inherited by the dispatching thread, paper §2.2).
//
// The two timestamps are HopTrace stamps: zero unless a trace sink is
// installed (core/hooks.hpp), in which case the delivery path records when
// the envelope entered the intake queue and when a worker picked it up —
// the difference is the hop's queue wait.
//
// The trace id/span pair is the obs-plane context (obs/trace_context.hpp):
// stamped at send_raw() from the sending thread's current context and
// re-installed around the handler by the dispatcher, so a sampled trace
// survives the asynchronous boundary between sender and pool thread. Both
// stay zero when tracing is off.
#pragma once

#include <cstdint>

namespace compadres::core {

class InPortBase;
class MessagePoolBase;
class Smm;

struct Envelope {
    void* msg = nullptr;
    MessagePoolBase* pool = nullptr;
    InPortBase* port = nullptr;
    Smm* smm = nullptr;
    int priority = 0;
    std::int64_t t_enqueue = 0; ///< HopTrace stamp; 0 when tracing is off
    std::int64_t t_dequeue = 0; ///< HopTrace stamp; 0 when tracing is off
    std::uint64_t trace_id = 0; ///< obs trace context; 0 when untraced
    std::uint32_t span_id = 0;  ///< obs trace context; 0 when untraced
};

} // namespace compadres::core
