// Envelope — the unit that flows through In-port buffers.
//
// Carries the pooled message, the pool to return it to after process(),
// the destination port (whose handler runs), the SMM hosting the
// connection (handed to the handler), and the message priority set at
// send() time (inherited by the dispatching thread, paper §2.2).
#pragma once

namespace compadres::core {

class InPortBase;
class MessagePoolBase;
class Smm;

struct Envelope {
    void* msg = nullptr;
    MessagePoolBase* pool = nullptr;
    InPortBase* port = nullptr;
    Smm* smm = nullptr;
    int priority = 0;
};

} // namespace compadres::core
