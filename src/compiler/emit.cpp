#include "compiler/emit.hpp"

#include "xml/xml.hpp"

namespace compadres::compiler {

namespace {

using xml::XmlNode;

std::unique_ptr<XmlNode> element(std::string name) {
    auto node = std::make_unique<XmlNode>();
    node->name = std::move(name);
    return node;
}

std::unique_ptr<XmlNode> text_element(std::string name, std::string text) {
    auto node = element(std::move(name));
    node->text = std::move(text);
    return node;
}

std::unique_ptr<XmlNode> cdl_port_node(const CdlPort& port) {
    auto node = element("Port");
    node->children.push_back(text_element("PortName", port.name));
    node->children.push_back(text_element(
        "PortType", port.direction == PortDirection::kIn ? "In" : "Out"));
    node->children.push_back(text_element("MessageType", port.message_type));
    return node;
}

std::unique_ptr<XmlNode> ccl_port_node(const CclPortDecl& port) {
    auto node = element("Port");
    node->children.push_back(text_element("PortName", port.name));
    if (port.has_attributes) {
        auto attrs = element("PortAttributes");
        attrs->children.push_back(text_element(
            "BufferSize", std::to_string(port.attributes.buffer_size)));
        attrs->children.push_back(text_element(
            "Threadpool",
            port.attributes.strategy == core::ThreadpoolStrategy::kShared
                ? "Shared"
                : "Dedicated"));
        attrs->children.push_back(text_element(
            "MinThreadpoolSize", std::to_string(port.attributes.min_threads)));
        attrs->children.push_back(text_element(
            "MaxThreadpoolSize", std::to_string(port.attributes.max_threads)));
        attrs->children.push_back(text_element(
            "Overflow",
            port.attributes.policy.overflow ==
                    core::OverflowPolicy::kRingOverwrite
                ? "Ring"
                : "Block"));
        node->children.push_back(std::move(attrs));
    }
    for (const CclLink& link : port.links) {
        auto link_node = element("Link");
        link_node->children.push_back(text_element(
            "PortType",
            link.kind == LinkKind::kInternal ? "Internal" : "External"));
        link_node->children.push_back(
            text_element("ToComponent", link.to_component));
        link_node->children.push_back(text_element("ToPort", link.to_port));
        node->children.push_back(std::move(link_node));
    }
    return node;
}

std::unique_ptr<XmlNode> ccl_component_node(const CclComponent& comp) {
    auto node = element("Component");
    node->children.push_back(text_element("InstanceName", comp.instance_name));
    node->children.push_back(text_element("ClassName", comp.class_name));
    if (comp.type == core::ComponentType::kImmortal) {
        node->children.push_back(text_element("ComponentType", "Immortal"));
    } else {
        node->children.push_back(text_element("ComponentType", "Scoped"));
        node->children.push_back(
            text_element("ScopeLevel", std::to_string(comp.scope_level)));
    }
    if (!comp.ports.empty()) {
        auto connection = element("Connection");
        for (const CclPortDecl& port : comp.ports) {
            connection->children.push_back(ccl_port_node(port));
        }
        node->children.push_back(std::move(connection));
    }
    for (const CclComponent& child : comp.children) {
        node->children.push_back(ccl_component_node(child));
    }
    return node;
}

} // namespace

std::string emit_cdl(const CdlModel& model) {
    auto root = element("CDL");
    for (const auto& [name, comp] : model.components) {
        auto comp_node = element("Component");
        comp_node->children.push_back(text_element("ComponentName", comp.name));
        for (const CdlPort& port : comp.ports) {
            comp_node->children.push_back(cdl_port_node(port));
        }
        root->children.push_back(std::move(comp_node));
    }
    return xml::write(*root);
}

std::string emit_ccl(const CclModel& model) {
    auto root = element("Application");
    root->children.push_back(
        text_element("ApplicationName", model.application_name));
    for (const CclComponent& comp : model.components) {
        root->children.push_back(ccl_component_node(comp));
    }
    for (const CclRemote& remote : model.remotes) {
        auto node = element("Remote");
        node->children.push_back(text_element("RemoteName", remote.name));
        node->children.push_back(
            text_element("Bands", std::to_string(remote.bands)));
        node->children.push_back(text_element(
            "Transport",
            remote.transport == RemoteTransport::kShm ? "shm" : "tcp"));
        if (remote.host != "127.0.0.1") {
            node->children.push_back(text_element("Host", remote.host));
        }
        const auto route_node = [](const char* name,
                                   const CclRemoteRoute& route) {
            auto n = std::make_unique<XmlNode>();
            n->name = name;
            n->children.push_back(text_element("Component", route.component));
            n->children.push_back(text_element("Port", route.port));
            n->children.push_back(text_element("Route", route.route));
            if (route.policy.band >= 0) {
                n->children.push_back(
                    text_element("Band", std::to_string(route.policy.band)));
            }
            if (!route.policy.coalesce) {
                n->children.push_back(text_element("Coalesce", "Off"));
            }
            return n;
        };
        for (const CclRemoteRoute& route : remote.exports) {
            node->children.push_back(route_node("Export", route));
        }
        for (const CclRemoteRoute& route : remote.imports) {
            node->children.push_back(route_node("Import", route));
        }
        root->children.push_back(std::move(node));
    }
    auto rtsj = element("RTSJAttributes");
    rtsj->children.push_back(text_element(
        "ImmortalSize", std::to_string(model.rtsj.immortal_size)));
    for (const core::ScopePoolSpec& pool : model.rtsj.scoped_pools) {
        auto pool_node = element("ScopedPool");
        pool_node->children.push_back(
            text_element("ScopeLevel", std::to_string(pool.level)));
        pool_node->children.push_back(
            text_element("ScopeSize", std::to_string(pool.scope_size)));
        pool_node->children.push_back(
            text_element("PoolSize", std::to_string(pool.pool_size)));
        rtsj->children.push_back(std::move(pool_node));
    }
    rtsj->children.push_back(text_element(
        "ReactorBands", std::to_string(model.rtsj.reactor_bands)));
    if (model.rtsj.trace.enabled || model.rtsj.trace.recorder) {
        auto trace = element("Trace");
        trace->children.push_back(text_element(
            "SampleShift", std::to_string(model.rtsj.trace.sample_shift)));
        trace->children.push_back(text_element(
            "RingDepth", std::to_string(model.rtsj.trace.ring_depth)));
        trace->children.push_back(text_element(
            "Recorder", model.rtsj.trace.recorder ? "true" : "false"));
        rtsj->children.push_back(std::move(trace));
    }
    root->children.push_back(std::move(rtsj));
    return xml::write(*root);
}

} // namespace compadres::compiler
