// Component Composition Language (CCL) — paper §2.2, Listing 1.2.
//
// The CCL instantiates components, nests them (parent/child scoping),
// declares the port attributes (buffer size, threading strategy, pool
// bounds) and the links between ports, and fixes the RTSJ memory layout
// (<RTSJAttributes>: immortal size plus per-level scoped-region pools).
#pragma once

#include "core/application.hpp"
#include "core/port.hpp"
#include "xml/xml.hpp"

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace compadres::compiler {

class CclError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class LinkKind { kInternal, kExternal };

/// One <Link>: connects the enclosing port to `to_component.to_port`.
/// Links may be declared on either endpoint; the validator orients them
/// Out -> In using the CDL.
struct CclLink {
    LinkKind kind = LinkKind::kExternal;
    std::string to_component; ///< instance name of the peer
    std::string to_port;
    int line = 0;
};

/// One <Port> inside a <Connection>.
struct CclPortDecl {
    std::string name;
    core::InPortConfig attributes; ///< meaningful for In ports
    bool has_attributes = false;
    std::vector<CclLink> links;
    int line = 0;
};

struct CclComponent {
    std::string instance_name;
    std::string class_name;
    core::ComponentType type = core::ComponentType::kScoped;
    int scope_level = 0; ///< 0 for immortal
    std::vector<CclPortDecl> ports;
    std::vector<CclComponent> children;
    int line = 0;
};

/// One <Export> or <Import> inside a <Remote>: binds an instance's port
/// to a named wire route, optionally pinning the route's transmission
/// policy — <Band> and <Coalesce> (exports only; imports take the band
/// stamped by the peer).
struct CclRemoteRoute {
    std::string component; ///< instance name
    std::string port;
    std::string route; ///< wire route name
    /// Route policy: policy.band -1 derives the lane from the port's
    /// default priority; policy.coalesce maps <Coalesce>On/Off.
    core::TransmissionPolicy policy;
    int line = 0;
};

/// How a <Remote>'s frames travel: priority-banded TCP lanes (the
/// default), or the co-located shared-memory wire (net/shm_transport.hpp)
/// with its TCP control/fallback channel.
enum class RemoteTransport { kTcp, kShm };

/// One <Remote>: a lane-group connection to a peer application. <Bands>
/// is the lane count (priority-banded TCP wires) the connection shards
/// across — see net/lane_group.hpp. <Transport>shm</Transport> selects
/// the shared-memory wire instead (single-lane, same-host only — the
/// validator rejects a non-loopback <Host> and explicit multi-band
/// declarations); <Host> names the peer endpoint, defaulting to
/// 127.0.0.1.
struct CclRemote {
    std::string name;
    std::size_t bands = 2;
    bool bands_declared = false; ///< <Bands> appeared explicitly
    RemoteTransport transport = RemoteTransport::kTcp;
    std::string host = "127.0.0.1";
    std::vector<CclRemoteRoute> exports;
    std::vector<CclRemoteRoute> imports;
    int line = 0;
};

struct CclModel {
    std::string application_name;
    std::vector<CclComponent> components; ///< top-level instances
    std::vector<CclRemote> remotes;
    core::RtsjAttributes rtsj;

    /// Depth-first visit (parents before children).
    template <typename F>
    void for_each_component(F&& fn) const {
        for (const CclComponent& c : components) visit(c, nullptr, fn);
    }

private:
    template <typename F>
    static void visit(const CclComponent& c, const CclComponent* parent, F& fn) {
        fn(c, parent);
        for (const CclComponent& child : c.children) visit(child, &c, fn);
    }
};

/// Parse a CCL document rooted at <Application>. Throws CclError on
/// structural problems; semantic checks live in the validator.
CclModel parse_ccl(const xml::XmlNode& root);
CclModel parse_ccl_file(const std::string& path);
CclModel parse_ccl_string(const std::string& text);

} // namespace compadres::compiler
