#include "compiler/assembler.hpp"

namespace compadres::compiler {

std::unique_ptr<core::Application> assemble(const AssemblyPlan& plan) {
    auto app = std::make_unique<core::Application>(plan.application_name,
                                                   plan.rtsj);
    // Components: plan order is parents-before-children, so the parent
    // always exists (and its region is enterable) when a child is created.
    for (const PlannedComponent& pc : plan.components) {
        core::Component* parent =
            pc.parent_instance.empty() ? nullptr : app->find(pc.parent_instance);
        if (!pc.parent_instance.empty() && parent == nullptr) {
            throw core::AssemblyError("plan is out of order: parent '" +
                                      pc.parent_instance + "' of '" +
                                      pc.instance_name + "' not yet created");
        }
        core::Component& comp = app->create_by_name(
            pc.class_name, pc.instance_name, parent, pc.type, pc.scope_level,
            pc.port_configs);
        (void)comp;
    }
    // Connections: the plan already fixed the hosting SMM; the runtime
    // recomputes the common ancestor and must agree — a mismatch means the
    // validator and runtime have diverged, which is a bug worth failing on.
    for (const PlannedConnection& conn : plan.connections) {
        core::Component& from = app->component(conn.from_instance);
        core::Component& to = app->component(conn.to_instance);
        core::Component& host = app->common_ancestor(from, to);
        const std::string host_name =
            &host == &app->root() ? "" : host.instance_name();
        if (host_name != conn.host_instance) {
            throw core::AssemblyError(
                "SMM placement mismatch for " + conn.from_instance + "." +
                conn.from_port + " -> " + conn.to_instance + "." + conn.to_port +
                ": plan says '" + conn.host_instance + "', runtime computed '" +
                host_name + "'");
        }
        app->connect(from.out_port(conn.from_port), to.in_port(conn.to_port),
                     conn.pool_capacity);
    }
    return app;
}

std::unique_ptr<core::Application> assemble_from_files(
    const std::string& cdl_path, const std::string& ccl_path) {
    const CdlModel cdl = parse_cdl_file(cdl_path);
    const CclModel ccl = parse_ccl_file(ccl_path);
    return assemble(validate_and_plan(cdl, ccl));
}

std::unique_ptr<core::Application> assemble_from_strings(
    const std::string& cdl_text, const std::string& ccl_text) {
    const CdlModel cdl = parse_cdl_string(cdl_text);
    const CclModel ccl = parse_ccl_string(ccl_text);
    return assemble(validate_and_plan(cdl, ccl));
}

} // namespace compadres::compiler
