#include "compiler/ccl.hpp"

#include <charconv>

namespace compadres::compiler {

namespace {

long parse_number(const std::string& text, const std::string& what, int line) {
    long value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        throw CclError(what + ": expected a number, got '" + text + "' (line " +
                       std::to_string(line) + ")");
    }
    return value;
}

CclLink parse_link(const xml::XmlNode& node) {
    CclLink link;
    link.line = node.line;
    const std::string kind = node.child_text("PortType");
    if (kind == "Internal") {
        link.kind = LinkKind::kInternal;
    } else if (kind == "External") {
        link.kind = LinkKind::kExternal;
    } else {
        throw CclError("<Link> <PortType> must be 'Internal' or 'External', got '" +
                       kind + "' (line " + std::to_string(node.line) + ")");
    }
    link.to_component = node.child_text("ToComponent");
    link.to_port = node.child_text("ToPort");
    if (link.to_component.empty() || link.to_port.empty()) {
        throw CclError("<Link> needs <ToComponent> and <ToPort> (line " +
                       std::to_string(node.line) + ")");
    }
    return link;
}

core::InPortConfig parse_port_attributes(const xml::XmlNode& node,
                                         const std::string& port_name) {
    core::InPortConfig cfg;
    if (const xml::XmlNode* buf = node.child("BufferSize")) {
        const long v = parse_number(buf->text, "BufferSize of " + port_name,
                                    buf->line);
        if (v <= 0) {
            throw CclError("BufferSize of '" + port_name + "' must be positive");
        }
        cfg.buffer_size = static_cast<std::size_t>(v);
    }
    const std::string strategy = node.child_text("Threadpool", "Dedicated");
    if (strategy == "Shared") {
        cfg.strategy = core::ThreadpoolStrategy::kShared;
    } else if (strategy == "Dedicated") {
        cfg.strategy = core::ThreadpoolStrategy::kDedicated;
    } else {
        throw CclError("Threadpool of '" + port_name +
                       "' must be 'Shared' or 'Dedicated', got '" + strategy + "'");
    }
    if (const xml::XmlNode* n = node.child("MinThreadpoolSize")) {
        cfg.min_threads = static_cast<std::size_t>(
            parse_number(n->text, "MinThreadpoolSize of " + port_name, n->line));
    }
    if (const xml::XmlNode* n = node.child("MaxThreadpoolSize")) {
        cfg.max_threads = static_cast<std::size_t>(
            parse_number(n->text, "MaxThreadpoolSize of " + port_name, n->line));
    }
    if (cfg.min_threads > cfg.max_threads) {
        throw CclError("port '" + port_name + "': MinThreadpoolSize (" +
                       std::to_string(cfg.min_threads) +
                       ") exceeds MaxThreadpoolSize (" +
                       std::to_string(cfg.max_threads) + ")");
    }
    const std::string overflow = node.child_text("Overflow", "Block");
    if (overflow == "Block") {
        cfg.policy.overflow = core::OverflowPolicy::kBlock;
    } else if (overflow == "Ring") {
        cfg.policy.overflow = core::OverflowPolicy::kRingOverwrite;
    } else {
        throw CclError("Overflow of '" + port_name +
                       "' must be 'Block' or 'Ring', got '" + overflow + "'");
    }
    return cfg;
}

CclPortDecl parse_port_decl(const xml::XmlNode& node) {
    CclPortDecl decl;
    decl.line = node.line;
    decl.name = node.child_text("PortName");
    if (decl.name.empty()) {
        throw CclError("<Port> without <PortName> (line " +
                       std::to_string(node.line) + ")");
    }
    if (const xml::XmlNode* attrs = node.child("PortAttributes")) {
        decl.attributes = parse_port_attributes(*attrs, decl.name);
        decl.has_attributes = true;
    }
    for (const xml::XmlNode* link_node : node.children_named("Link")) {
        decl.links.push_back(parse_link(*link_node));
    }
    return decl;
}

CclComponent parse_component(const xml::XmlNode& node) {
    CclComponent comp;
    comp.line = node.line;
    comp.instance_name = node.child_text("InstanceName");
    comp.class_name = node.child_text("ClassName");
    if (comp.instance_name.empty() || comp.class_name.empty()) {
        throw CclError("<Component> needs <InstanceName> and <ClassName> (line " +
                       std::to_string(node.line) + ")");
    }
    const std::string type = node.child_text("ComponentType", "Scoped");
    if (type == "Immortal") {
        comp.type = core::ComponentType::kImmortal;
        comp.scope_level = 0;
    } else if (type == "Scoped") {
        comp.type = core::ComponentType::kScoped;
        const xml::XmlNode* level = node.child("ScopeLevel");
        if (level == nullptr) {
            throw CclError("scoped component '" + comp.instance_name +
                           "' needs a <ScopeLevel>");
        }
        const long v = parse_number(level->text,
                                    "ScopeLevel of " + comp.instance_name,
                                    level->line);
        if (v < 1) {
            throw CclError("ScopeLevel of '" + comp.instance_name +
                           "' must be >= 1");
        }
        comp.scope_level = static_cast<int>(v);
    } else {
        throw CclError("component '" + comp.instance_name +
                       "': <ComponentType> must be 'Immortal' or 'Scoped'");
    }
    if (const xml::XmlNode* connection = node.child("Connection")) {
        for (const xml::XmlNode* port_node : connection->children_named("Port")) {
            comp.ports.push_back(parse_port_decl(*port_node));
        }
    }
    for (const xml::XmlNode* child : node.children_named("Component")) {
        comp.children.push_back(parse_component(*child));
    }
    return comp;
}

CclRemoteRoute parse_remote_route(const xml::XmlNode& node,
                                  const char* element_name) {
    CclRemoteRoute route;
    route.line = node.line;
    route.component = node.child_text("Component");
    route.port = node.child_text("Port");
    route.route = node.child_text("Route");
    if (route.component.empty() || route.port.empty() || route.route.empty()) {
        throw CclError(std::string("<") + element_name +
                       "> needs <Component>, <Port> and <Route> (line " +
                       std::to_string(node.line) + ")");
    }
    if (const xml::XmlNode* band = node.child("Band")) {
        const long v = parse_number(band->text, "Band of route " + route.route,
                                    band->line);
        if (v < 0) {
            throw CclError("Band of route '" + route.route +
                           "' must be >= 0 (line " +
                           std::to_string(band->line) + ")");
        }
        route.policy.band = static_cast<int>(v);
    }
    if (const xml::XmlNode* coalesce = node.child("Coalesce")) {
        if (coalesce->text == "On") {
            route.policy.coalesce = true;
        } else if (coalesce->text == "Off") {
            route.policy.coalesce = false;
        } else {
            throw CclError("Coalesce of route '" + route.route +
                           "' must be 'On' or 'Off', got '" + coalesce->text +
                           "' (line " + std::to_string(coalesce->line) + ")");
        }
    }
    return route;
}

CclRemote parse_remote(const xml::XmlNode& node) {
    CclRemote remote;
    remote.line = node.line;
    remote.name = node.child_text("RemoteName");
    if (remote.name.empty()) {
        throw CclError("<Remote> without <RemoteName> (line " +
                       std::to_string(node.line) + ")");
    }
    if (const xml::XmlNode* bands = node.child("Bands")) {
        const long v = parse_number(bands->text, "Bands of " + remote.name,
                                    bands->line);
        if (v < 1) {
            throw CclError("Bands of '" + remote.name +
                           "' must be >= 1 (line " +
                           std::to_string(bands->line) + ")");
        }
        remote.bands = static_cast<std::size_t>(v);
        remote.bands_declared = true;
    }
    if (const xml::XmlNode* transport = node.child("Transport")) {
        if (transport->text == "tcp") {
            remote.transport = RemoteTransport::kTcp;
        } else if (transport->text == "shm") {
            remote.transport = RemoteTransport::kShm;
            // shm defaults to one lane; a declared <Bands> N carves the
            // segment into N ring+arena pairs per direction instead of
            // following the lane-group default.
            if (!remote.bands_declared) remote.bands = 1;
        } else {
            throw CclError("Transport of '" + remote.name +
                           "' must be 'tcp' or 'shm', got '" +
                           transport->text + "' (line " +
                           std::to_string(transport->line) + ")");
        }
    }
    if (const xml::XmlNode* host = node.child("Host")) {
        if (host->text.empty()) {
            throw CclError("<Host> of '" + remote.name +
                           "' must not be empty (line " +
                           std::to_string(host->line) + ")");
        }
        remote.host = host->text;
    }
    for (const xml::XmlNode* exp : node.children_named("Export")) {
        remote.exports.push_back(parse_remote_route(*exp, "Export"));
    }
    for (const xml::XmlNode* imp : node.children_named("Import")) {
        remote.imports.push_back(parse_remote_route(*imp, "Import"));
    }
    if (remote.exports.empty() && remote.imports.empty()) {
        throw CclError("<Remote> '" + remote.name +
                       "' declares no <Export> or <Import> routes");
    }
    return remote;
}

core::RtsjAttributes parse_rtsj(const xml::XmlNode& node) {
    core::RtsjAttributes attrs;
    if (const xml::XmlNode* imm = node.child("ImmortalSize")) {
        const long v = parse_number(imm->text, "ImmortalSize", imm->line);
        if (v <= 0) throw CclError("ImmortalSize must be positive");
        attrs.immortal_size = static_cast<std::size_t>(v);
    }
    for (const xml::XmlNode* pool : node.children_named("ScopedPool")) {
        core::ScopePoolSpec spec;
        const xml::XmlNode* level = pool->child("ScopeLevel");
        if (level == nullptr) {
            throw CclError("<ScopedPool> without <ScopeLevel> (line " +
                           std::to_string(pool->line) + ")");
        }
        spec.level = static_cast<int>(
            parse_number(level->text, "ScopedPool ScopeLevel", level->line));
        if (const xml::XmlNode* size = pool->child("ScopeSize")) {
            const long v = parse_number(size->text, "ScopeSize", size->line);
            if (v <= 0) throw CclError("ScopeSize must be positive");
            spec.scope_size = static_cast<std::size_t>(v);
        }
        if (const xml::XmlNode* count = pool->child("PoolSize")) {
            const long v = parse_number(count->text, "PoolSize", count->line);
            if (v <= 0) throw CclError("PoolSize must be positive");
            spec.pool_size = static_cast<std::size_t>(v);
        }
        attrs.scoped_pools.push_back(spec);
    }
    if (const xml::XmlNode* bands = node.child("ReactorBands")) {
        const long v = parse_number(bands->text, "ReactorBands", bands->line);
        if (v < 1) throw CclError("ReactorBands must be >= 1");
        attrs.reactor_bands = static_cast<std::size_t>(v);
    }
    // <Trace>: the observability plane's deployment knobs. Presence of the
    // block turns wire trace propagation on; the flight recorder defaults
    // to on inside the block (its own child can turn it back off).
    if (const xml::XmlNode* trace = node.child("Trace")) {
        attrs.trace.enabled = true;
        attrs.trace.recorder = true;
        if (const xml::XmlNode* shift = trace->child("SampleShift")) {
            const long v =
                parse_number(shift->text, "Trace SampleShift", shift->line);
            if (v < 0 || v > 62) {
                throw CclError("Trace SampleShift must be in [0, 62] (line " +
                               std::to_string(shift->line) + ")");
            }
            attrs.trace.sample_shift = static_cast<unsigned>(v);
        }
        if (const xml::XmlNode* depth = trace->child("RingDepth")) {
            const long v =
                parse_number(depth->text, "Trace RingDepth", depth->line);
            if (v < 1) {
                throw CclError("Trace RingDepth must be positive (line " +
                               std::to_string(depth->line) + ")");
            }
            attrs.trace.ring_depth = static_cast<std::size_t>(v);
        }
        if (const xml::XmlNode* rec = trace->child("Recorder")) {
            if (rec->text == "true" || rec->text == "1") {
                attrs.trace.recorder = true;
            } else if (rec->text == "false" || rec->text == "0") {
                attrs.trace.recorder = false;
            } else {
                throw CclError("Trace Recorder must be true or false (line " +
                               std::to_string(rec->line) + ")");
            }
        }
    }
    return attrs;
}

} // namespace

CclModel parse_ccl(const xml::XmlNode& root) {
    if (root.name != "Application") {
        throw CclError("CCL root element must be <Application>, got <" +
                       root.name + ">");
    }
    CclModel model;
    model.application_name = root.child_text("ApplicationName");
    if (model.application_name.empty()) {
        throw CclError("<Application> without <ApplicationName>");
    }
    for (const xml::XmlNode* comp : root.children_named("Component")) {
        model.components.push_back(parse_component(*comp));
    }
    if (model.components.empty()) {
        throw CclError("CCL application instantiates no components");
    }
    for (const xml::XmlNode* remote : root.children_named("Remote")) {
        model.remotes.push_back(parse_remote(*remote));
    }
    if (const xml::XmlNode* rtsj = root.child("RTSJAttributes")) {
        model.rtsj = parse_rtsj(*rtsj);
    }
    return model;
}

CclModel parse_ccl_file(const std::string& path) {
    return parse_ccl(*xml::parse_file(path));
}

CclModel parse_ccl_string(const std::string& text) {
    return parse_ccl(*xml::parse(text));
}

} // namespace compadres::compiler
