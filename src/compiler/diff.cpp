#include "compiler/diff.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace compadres::compiler {

namespace {

bool same_structure(const core::InPortConfig& a, const core::InPortConfig& b) {
    return a.buffer_size == b.buffer_size && a.strategy == b.strategy &&
           a.min_threads == b.min_threads && a.max_threads == b.max_threads;
}

std::string route_key(const PlannedConnection& c) {
    return c.from_instance + "." + c.from_port + " -> " + c.to_instance + "." +
           c.to_port;
}

void diff_rtsj(const core::RtsjAttributes& a, const core::RtsjAttributes& b,
               std::vector<std::string>& issues) {
    if (a.immortal_size != b.immortal_size) {
        issues.push_back("cannot change <ImmortalSize> live (" +
                         std::to_string(a.immortal_size) + " -> " +
                         std::to_string(b.immortal_size) +
                         "): the immortal region is allocated at startup");
    }
    if (a.reactor_bands != b.reactor_bands) {
        issues.push_back(
            "cannot change <ReactorBands> live: the reactor loop pool is "
            "sized at startup");
    }
    auto pool_key = [](const core::ScopePoolSpec& s) {
        return std::to_string(s.level) + ":" + std::to_string(s.scope_size) +
               "x" + std::to_string(s.pool_size);
    };
    std::multiset<std::string> pa, pb;
    for (const core::ScopePoolSpec& s : a.scoped_pools) pa.insert(pool_key(s));
    for (const core::ScopePoolSpec& s : b.scoped_pools) pb.insert(pool_key(s));
    if (pa != pb) {
        issues.push_back(
            "cannot change <ScopedPool> declarations live: scoped-region "
            "pools are pre-created in immortal memory at startup");
    }
    if (a.trace.enabled != b.trace.enabled ||
        a.trace.sample_shift != b.trace.sample_shift ||
        a.trace.recorder != b.trace.recorder ||
        a.trace.ring_depth != b.trace.ring_depth) {
        issues.push_back(
            "cannot change the <Trace> block live: observability knobs are "
            "applied process-wide at startup");
    }
}

} // namespace

core::RecomposePlan diff_plans(const AssemblyPlan& from,
                               const AssemblyPlan& to) {
    std::vector<std::string> issues;
    core::RecomposePlan plan;
    plan.application = from.application_name;
    if (from.application_name != to.application_name) {
        issues.push_back("the plans describe different applications ('" +
                         from.application_name + "' vs '" +
                         to.application_name + "')");
    }
    diff_rtsj(from.rtsj, to.rtsj, issues);

    // ---- components: spawn / retire / in-place checks ----
    std::map<std::string, const PlannedComponent*> from_comps, to_comps;
    for (const PlannedComponent& c : from.components) {
        from_comps[c.instance_name] = &c;
    }
    for (const PlannedComponent& c : to.components) {
        to_comps[c.instance_name] = &c;
    }
    for (const PlannedComponent& c : to.components) {
        auto it = from_comps.find(c.instance_name);
        if (it == from_comps.end()) {
            // New instance: spawn in `to` order (parents precede children
            // in a validated plan).
            core::RecomposeComponentSpec spec;
            spec.instance = c.instance_name;
            spec.class_name = c.class_name;
            spec.type = c.type;
            spec.level = c.scope_level;
            spec.parent = c.parent_instance;
            spec.port_configs = c.port_configs;
            plan.spawns.push_back(std::move(spec));
            continue;
        }
        const PlannedComponent& old = *it->second;
        if (old.class_name != c.class_name) {
            issues.push_back("component '" + c.instance_name +
                             "' changes class ('" + old.class_name + "' -> '" +
                             c.class_name +
                             "'); retire and respawn under a new instance "
                             "name instead");
        }
        if (old.type != c.type || old.scope_level != c.scope_level) {
            issues.push_back("component '" + c.instance_name +
                             "' changes memory placement (type/level); a "
                             "live instance cannot move regions");
        }
        if (old.parent_instance != c.parent_instance) {
            issues.push_back("component '" + c.instance_name +
                             "' changes parent ('" +
                             (old.parent_instance.empty() ? "<root>"
                                                          : old.parent_instance) +
                             "' -> '" +
                             (c.parent_instance.empty() ? "<root>"
                                                        : c.parent_instance) +
                             "'); the scope stack is fixed at creation");
        }
        // Port attributes: structural knobs are frozen (they size pools and
        // queues live traffic is using); the TransmissionPolicy is exactly
        // what live recomposition CAN change.
        std::set<std::string> port_names;
        for (const auto& [name, cfg] : old.port_configs) port_names.insert(name);
        for (const auto& [name, cfg] : c.port_configs) port_names.insert(name);
        for (const std::string& port : port_names) {
            const auto fa = old.port_configs.find(port);
            const auto fb = c.port_configs.find(port);
            const core::InPortConfig cfg_a =
                fa == old.port_configs.end() ? core::InPortConfig{} : fa->second;
            const core::InPortConfig cfg_b =
                fb == c.port_configs.end() ? core::InPortConfig{} : fb->second;
            if (!same_structure(cfg_a, cfg_b)) {
                issues.push_back(
                    "port '" + c.instance_name + "." + port +
                    "' changes structural attributes (buffer/threadpool); "
                    "only the transmission policy can change live");
                continue;
            }
            if (cfg_a.policy != cfg_b.policy) {
                core::RecomposeRepolicy r;
                r.instance = c.instance_name;
                r.port = port;
                r.from = cfg_a.policy;
                r.to = cfg_b.policy;
                plan.repolicies.push_back(std::move(r));
            }
        }
    }
    // Retires in REVERSE creation order, so children go before parents.
    for (auto it = from.components.rbegin(); it != from.components.rend();
         ++it) {
        if (to_comps.count(it->instance_name) != 0) continue;
        if (it->type == core::ComponentType::kImmortal) {
            issues.push_back("component '" + it->instance_name +
                             "' is immortal and cannot be retired live (its "
                             "storage only dies with the application)");
            continue;
        }
        plan.retires.push_back(it->instance_name);
    }

    // ---- connections: add / remove ----
    std::map<std::string, const PlannedConnection*> from_conns, to_conns;
    for (const PlannedConnection& c : from.connections) {
        from_conns[route_key(c)] = &c;
    }
    for (const PlannedConnection& c : to.connections) {
        to_conns[route_key(c)] = &c;
    }
    for (const PlannedConnection& c : to.connections) {
        auto it = from_conns.find(route_key(c));
        if (it == from_conns.end()) {
            plan.route_adds.push_back(core::RecomposeRoute{
                c.from_instance, c.from_port, c.to_instance, c.to_port,
                c.pool_capacity});
            continue;
        }
        if (it->second->pool_capacity != c.pool_capacity) {
            issues.push_back("connection " + route_key(c) +
                             " changes pool capacity; message pools are "
                             "sized at wiring time");
        }
    }
    for (const PlannedConnection& c : from.connections) {
        if (to_conns.count(route_key(c)) != 0) continue;
        plan.route_removes.push_back(core::RecomposeRoute{
            c.from_instance, c.from_port, c.to_instance, c.to_port, 0});
    }

    // ---- remotes: the topology is frozen, the policy is not ----
    std::map<std::string, const PlannedRemote*> from_remotes, to_remotes;
    for (const PlannedRemote& r : from.remotes) from_remotes[r.name] = &r;
    for (const PlannedRemote& r : to.remotes) to_remotes[r.name] = &r;
    for (const PlannedRemote& r : to.remotes) {
        if (from_remotes.count(r.name) == 0) {
            issues.push_back("remote '" + r.name +
                             "' is new; remote connections (and their lane "
                             "handshake) cannot be added live");
        }
    }
    for (const PlannedRemote& r : from.remotes) {
        auto it = to_remotes.find(r.name);
        if (it == to_remotes.end()) {
            issues.push_back("remote '" + r.name +
                             "' disappears; remote connections cannot be "
                             "torn down live");
            continue;
        }
        const PlannedRemote& nu = *it->second;
        if (r.bands != nu.bands) {
            issues.push_back("remote '" + r.name +
                             "': <Bands> changes; the lane group is "
                             "established by the startup handshake");
        }
        if (r.transport != nu.transport) {
            issues.push_back("remote '" + r.name +
                             "': <Transport> changes; the wire (shm segment "
                             "or lane group) is established by the startup "
                             "handshake");
        }
        if (r.host != nu.host) {
            issues.push_back("remote '" + r.name +
                             "': <Host> changes; reconnecting to a different "
                             "peer is not a live transition");
        }
        std::map<std::string, const PlannedRemoteRoute*> old_exports;
        for (const PlannedRemoteRoute& e : r.exports) old_exports[e.route] = &e;
        for (const PlannedRemoteRoute& e : nu.exports) {
            auto old_it = old_exports.find(e.route);
            if (old_it == old_exports.end()) {
                issues.push_back("remote '" + r.name + "' export '" + e.route +
                                 "' is new; remote routes are registered "
                                 "before the bridge starts");
                continue;
            }
            const PlannedRemoteRoute& old = *old_it->second;
            if (old.instance != e.instance || old.port != e.port) {
                issues.push_back("remote '" + r.name + "' export '" + e.route +
                                 "' rebinds to a different port; remote "
                                 "routes are frozen");
                continue;
            }
            if (old.policy != e.policy) {
                core::RecomposeRepolicy rep;
                rep.remote = true;
                rep.remote_name = r.name;
                rep.route = e.route;
                rep.from = old.policy;
                rep.to = e.policy;
                plan.repolicies.push_back(std::move(rep));
            }
        }
        for (const PlannedRemoteRoute& e : r.exports) {
            bool still = false;
            for (const PlannedRemoteRoute& n : nu.exports) {
                if (n.route == e.route) still = true;
            }
            if (!still) {
                issues.push_back("remote '" + r.name + "' export '" + e.route +
                                 "' disappears; remote routes cannot be "
                                 "removed live");
            }
        }
        std::set<std::string> old_imports, new_imports;
        for (const PlannedRemoteRoute& i : r.imports) old_imports.insert(i.route);
        for (const PlannedRemoteRoute& i : nu.imports) new_imports.insert(i.route);
        if (old_imports != new_imports) {
            issues.push_back("remote '" + r.name +
                             "': the import route set changes; remote routes "
                             "are frozen");
        }
    }

    if (!issues.empty()) throw ValidationError(std::move(issues));
    return plan;
}

} // namespace compadres::compiler
