#include "compiler/codegen.hpp"

#include <cctype>
#include <sstream>

namespace compadres::compiler {

namespace {

std::string to_snake_case(const std::string& name) {
    std::string out;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        if (std::isupper(static_cast<unsigned char>(c))) {
            if (i != 0) out.push_back('_');
            out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::string cpp_type_for_message(const std::string& cdl_type) {
    if (cdl_type == "String") return "compadres::core::TextMessage";
    if (cdl_type == "MyInteger") return "compadres::core::MyInteger";
    if (cdl_type == "OctetSeq") return "compadres::core::OctetSeq";
    if (cdl_type == "SensorSample") return "compadres::core::SensorSample";
    return cdl_type;
}

std::map<std::string, std::string> generate_skeletons(const CdlModel& cdl) {
    std::map<std::string, std::string> files;
    for (const auto& [class_name, comp] : cdl.components) {
        std::ostringstream out;
        const std::string guard_name = to_snake_case(class_name);
        out << "// GENERATED SKELETON for component class '" << class_name
            << "'.\n"
            << "// Fill in the process() bodies and (optionally) _start();\n"
            << "// regenerate with --force to overwrite.\n"
            << "#pragma once\n\n"
            << "#include \"core/application.hpp\"\n"
            << "#include \"core/messages.hpp\"\n\n"
            << "namespace app {\n\n";

        // Handler skeletons, one per In port.
        for (const CdlPort& port : comp.ports) {
            if (port.direction != PortDirection::kIn) continue;
            const std::string cpp_type = cpp_type_for_message(port.message_type);
            out << "class " << class_name << "_" << port.name
                << "_Handler final\n    : public compadres::core::MessageHandler<"
                << cpp_type << "> {\npublic:\n"
                << "    void process(" << cpp_type
                << "& msg, compadres::core::Smm& smm) override {\n"
                << "        (void)msg; (void)smm;\n"
                << "        // TODO: handle a message arriving at In port '"
                << port.name << "'\n    }\n};\n\n";
        }

        // Component skeleton.
        out << "class " << class_name
            << " : public compadres::core::Component {\npublic:\n"
            << "    explicit " << class_name
            << "(const compadres::core::ComponentContext& ctx)\n"
            << "        : compadres::core::Component(ctx) {\n";
        for (const CdlPort& port : comp.ports) {
            const std::string cpp_type = cpp_type_for_message(port.message_type);
            if (port.direction == PortDirection::kIn) {
                out << "        add_in_port<" << cpp_type << ">(\"" << port.name
                    << "\", \"" << port.message_type << "\",\n"
                    << "                    port_config(\"" << port.name
                    << "\"), *region().make<" << class_name << "_" << port.name
                    << "_Handler>());\n";
            } else {
                out << "        add_out_port<" << cpp_type << ">(\"" << port.name
                    << "\", \"" << port.message_type << "\");\n";
            }
        }
        out << "    }\n\n"
            << "    void _start() override {\n"
            << "        // TODO: initialization (may send the first messages)\n"
            << "    }\n};\n\n"
            << "inline void register_" << guard_name << "() {\n"
            << "    compadres::core::ComponentRegistry::global().register_class<"
            << class_name << ">(\"" << class_name << "\");\n}\n\n"
            << "} // namespace app\n";

        files[guard_name + "_component.hpp"] = out.str();
    }
    return files;
}

std::string generate_main_stub(const AssemblyPlan& plan) {
    std::ostringstream out;
    out << "// GENERATED MAIN for application '" << plan.application_name
        << "'.\n"
        << "#include \"compiler/assembler.hpp\"\n\n";
    std::map<std::string, bool> classes;
    for (const PlannedComponent& pc : plan.components) {
        classes[pc.class_name] = true;
    }
    for (const auto& [cls, _] : classes) {
        out << "#include \"" << to_snake_case(cls) << "_component.hpp\"\n";
    }
    out << "\nint main() {\n"
        << "    compadres::core::register_builtin_message_types();\n";
    for (const auto& [cls, _] : classes) {
        out << "    app::register_" << to_snake_case(cls) << "();\n";
    }
    out << "    auto app = compadres::compiler::assemble_from_files(\n"
        << "        \"" << plan.application_name << ".cdl.xml\", \""
        << plan.application_name << ".ccl.xml\");\n"
        << "    app->start();\n"
        << "    // TODO: application logic / wait for completion\n"
        << "    app->shutdown();\n"
        << "    return 0;\n}\n";
    return out.str();
}

} // namespace compadres::compiler
