// Assembler — executes an AssemblyPlan against the live runtime.
//
// In the paper the compiler emits RTSJ glue code that is then compiled
// with javac; in C++ the equivalent "glue" is executed directly: create
// the regions and pools, instantiate every component (by registered class
// name) in its region, and wire every planned connection through the SMM
// the plan assigned. The emitted-source path still exists for inspection
// (see codegen.hpp), but the assembler is what applications use.
#pragma once

#include "compiler/validator.hpp"
#include "core/application.hpp"

#include <memory>

namespace compadres::compiler {

/// Build a ready-to-start Application from a validated plan. All component
/// classes named by the plan must be registered in
/// core::ComponentRegistry::global(), and all message types in
/// core::MessageTypeRegistry::global().
std::unique_ptr<core::Application> assemble(const AssemblyPlan& plan);

/// One-call convenience: parse, validate, assemble.
std::unique_ptr<core::Application> assemble_from_files(
    const std::string& cdl_path, const std::string& ccl_path);
std::unique_ptr<core::Application> assemble_from_strings(
    const std::string& cdl_text, const std::string& ccl_text);

} // namespace compadres::compiler
