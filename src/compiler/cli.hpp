// compadresc — the Compadres compiler as a command-line tool.
//
// The paper's workflow runs its compiler twice: over the CDL to generate
// component/handler skeletons (phase 1), and over the CDL+CCL to validate
// the composition and produce the glue (phase 2). This is that tool:
//
//   compadresc check     <cdl> [<ccl>]        parse + validate, report issues
//   compadresc skeletons <cdl> -o <dir>       emit C++ skeleton headers
//   compadresc plan      <cdl> <ccl>          dump the derived assembly plan
//   compadresc main-stub <cdl> <ccl> -o <dir> emit a main-application stub
//
// The entry point is a library function so tests drive it without spawning
// processes; tools/compadresc.cpp is a two-line main.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace compadres::compiler {

/// Runs the CLI. Returns a process exit code (0 ok, 1 usage error,
/// 2 parse/validation failure, 3 I/O failure).
int compadresc_main(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

} // namespace compadres::compiler
