// Skeleton generation — phase 1 of the paper's toolchain (§2.1): "The CDL
// file is compiled to generate the skeletons of the implementation classes
// of the components and the message handlers associated with the
// components' In ports. The programmer adds the implementation..."
//
// For each CDL component class this emits one C++ header containing:
//   * a component class deriving core::Component whose constructor adds
//     every declared port (In ports pick up their CCL attributes via
//     ComponentContext::port_config), and
//   * one MessageHandler skeleton per In port with an empty process()
//     body for the programmer to fill in,
// plus a registration helper so the class is creatable by name.
#pragma once

#include "compiler/cdl.hpp"
#include "compiler/validator.hpp"

#include <map>
#include <string>

namespace compadres::compiler {

/// Maps CDL <MessageType> names to C++ type names for emitted code.
/// Unknown names pass through verbatim (the user's own types).
std::string cpp_type_for_message(const std::string& cdl_type);

/// Generate one skeleton header per component class.
/// Keys are suggested file names ("server_component.hpp"), values the
/// complete file contents.
std::map<std::string, std::string> generate_skeletons(const CdlModel& cdl);

/// Generate a main-application stub that registers the component classes,
/// assembles the plan, and runs start()/shutdown() — the analogue of the
/// generated "main application class that includes an empty start()
/// method" (paper §2.2).
std::string generate_main_stub(const AssemblyPlan& plan);

} // namespace compadres::compiler
