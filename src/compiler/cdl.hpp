// Component Definition Language (CDL) — paper §2.1, Listing 1.1.
//
// The CDL declares component classes and their ports: name, direction
// (In/Out relative to the component) and the message type carried. The
// Compadres compiler uses it to (a) generate component/handler skeletons
// and (b) validate the CCL's connections and message types.
#pragma once

#include "xml/xml.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace compadres::compiler {

class CdlError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class PortDirection { kIn, kOut };

struct CdlPort {
    std::string name;
    PortDirection direction = PortDirection::kIn;
    std::string message_type;
};

struct CdlComponent {
    std::string name;
    std::vector<CdlPort> ports;

    const CdlPort* find_port(const std::string& port_name) const noexcept;
};

struct CdlModel {
    /// Keyed by component class name.
    std::map<std::string, CdlComponent> components;

    const CdlComponent* find(const std::string& class_name) const noexcept;
};

/// Parse a CDL document. The root element may be a wrapper (<CDL>,
/// <Components>, ...) holding <Component> children, or a single
/// <Component> itself. Throws CdlError on structural problems (missing
/// names, bad port types, duplicate components/ports).
CdlModel parse_cdl(const xml::XmlNode& root);
CdlModel parse_cdl_file(const std::string& path);
CdlModel parse_cdl_string(const std::string& text);

} // namespace compadres::compiler
