// Assembly diff — turn two validated CCL plans into a live-recompose plan.
//
// `compadresc diff old.ccl new.ccl` and the runtime's live re-deploy both
// go through diff_plans: it compares two AssemblyPlans of the SAME
// application and produces the core::RecomposePlan (components to
// spawn/retire, routes to add/remove, routes whose TransmissionPolicy
// changes) that apply_recompose executes under quiesce-reroute-resume.
//
// Not every textual CCL change is a legal LIVE transition. The memory
// layout is frozen at startup (immortal size, scoped pools, reactor
// bands), a component instance cannot change class/type/level/parent in
// place, structural port attributes (buffer size, threading) size pools
// and queues that live traffic is using, and remote topology (the
// <Remote> set, its band count, its route set) is frozen once the lane
// handshake ran. Those differences raise ValidationError listing every
// offending transition — `compadresc diff` exits 1 on them.
#pragma once

#include "compiler/validator.hpp"
#include "core/recompose.hpp"

namespace compadres::compiler {

/// Diff `from` -> `to` into a live-applicable plan. Throws ValidationError
/// (with every issue collected) when the transition cannot be applied to a
/// running application.
core::RecomposePlan diff_plans(const AssemblyPlan& from, const AssemblyPlan& to);

} // namespace compadres::compiler
