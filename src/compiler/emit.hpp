// Model -> XML emission, the write direction of the toolchain.
//
// parse_cdl/parse_ccl read the paper's XML dialects; these functions write
// them back out from the in-memory models. Uses: programmatic generation
// of composition files (the "graphical user interface for connecting
// components" the paper leaves as future work would sit on exactly this),
// canonicalization, and round-trip testing of the parsers.
#pragma once

#include "compiler/ccl.hpp"
#include "compiler/cdl.hpp"

#include <string>

namespace compadres::compiler {

/// Serialize a CDL model to XML (root element <CDL>). parse_cdl_string of
/// the output reproduces the model exactly.
std::string emit_cdl(const CdlModel& model);

/// Serialize a CCL model to XML (root element <Application>).
/// parse_ccl_string of the output reproduces the model exactly.
std::string emit_ccl(const CclModel& model);

} // namespace compadres::compiler
