#include "compiler/validator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace compadres::compiler {

ValidationError::ValidationError(std::vector<std::string> issues)
    : std::runtime_error(join(issues)), issues_(std::move(issues)) {}

std::string ValidationError::join(const std::vector<std::string>& issues) {
    std::ostringstream out;
    out << "CCL validation failed with " << issues.size() << " issue(s):";
    for (const std::string& issue : issues) {
        out << "\n  - " << issue;
    }
    return out.str();
}

namespace {

struct InstanceInfo {
    const CclComponent* decl = nullptr;
    const CclComponent* parent = nullptr;
    std::string parent_name; // empty = top level
};

/// Chain of ancestors from the instance up to the top level (inclusive of
/// the instance itself, exclusive of the implicit root).
std::vector<std::string> ancestry(const std::map<std::string, InstanceInfo>& table,
                                  const std::string& instance) {
    std::vector<std::string> chain;
    std::string cur = instance;
    while (!cur.empty()) {
        chain.push_back(cur);
        cur = table.at(cur).parent_name;
    }
    return chain;
}

struct Edge {
    std::string from_instance, from_port, to_instance, to_port;
    std::string message_type;
    LinkKind kind;
    int line;

    bool operator<(const Edge& o) const {
        return std::tie(from_instance, from_port, to_instance, to_port) <
               std::tie(o.from_instance, o.from_port, o.to_instance, o.to_port);
    }
};

} // namespace

AssemblyPlan validate_and_plan(const CdlModel& cdl, const CclModel& ccl) {
    std::vector<std::string> issues;
    AssemblyPlan plan;
    plan.application_name = ccl.application_name;
    plan.rtsj = ccl.rtsj;
    if (plan.rtsj.trace.ring_depth > (std::size_t{1} << 24)) {
        issues.push_back(
            "Trace RingDepth " + std::to_string(plan.rtsj.trace.ring_depth) +
            " exceeds the flight recorder's per-thread maximum (" +
            std::to_string(std::size_t{1} << 24) + " events)");
    }

    // ---- pass 1: instance table, classes, scope levels ----
    std::map<std::string, InstanceInfo> table;
    ccl.for_each_component([&](const CclComponent& c, const CclComponent* parent) {
        if (table.count(c.instance_name) != 0) {
            issues.push_back("duplicate instance name '" + c.instance_name +
                             "' (line " + std::to_string(c.line) + ")");
            return;
        }
        InstanceInfo info;
        info.decl = &c;
        info.parent = parent;
        info.parent_name = parent != nullptr ? parent->instance_name : "";
        table.emplace(c.instance_name, info);

        if (cdl.find(c.class_name) == nullptr) {
            issues.push_back("instance '" + c.instance_name +
                             "' uses undefined component class '" +
                             c.class_name + "'");
        }
        // Scope-level / nesting consistency. This is what guarantees the
        // derived region tree satisfies the RTSJ single-parent rule: every
        // scoped component's region is entered exactly once, from its
        // parent's region.
        if (c.type == core::ComponentType::kImmortal) {
            if (parent != nullptr && parent->type == core::ComponentType::kScoped) {
                issues.push_back("immortal component '" + c.instance_name +
                                 "' cannot be nested inside scoped component '" +
                                 parent->instance_name +
                                 "' (immortal memory outlives every scope)");
            }
        } else {
            const int parent_level =
                (parent == nullptr ||
                 parent->type == core::ComponentType::kImmortal)
                    ? 0
                    : parent->scope_level;
            if (c.scope_level != parent_level + 1) {
                issues.push_back(
                    "scoped component '" + c.instance_name + "' declares level " +
                    std::to_string(c.scope_level) + " but its parent is at level " +
                    std::to_string(parent_level) + " (child must be parent + 1)");
            }
        }
    });

    // ---- pass 2: links ----
    std::set<Edge> edges;
    ccl.for_each_component([&](const CclComponent& c, const CclComponent*) {
        const CdlComponent* cls = cdl.find(c.class_name);
        for (const CclPortDecl& port : c.ports) {
            const CdlPort* own = cls != nullptr ? cls->find_port(port.name) : nullptr;
            if (cls != nullptr && own == nullptr) {
                issues.push_back("instance '" + c.instance_name +
                                 "' declares port '" + port.name +
                                 "' which class '" + c.class_name +
                                 "' does not define");
                continue;
            }
            if (own != nullptr && own->direction == PortDirection::kOut &&
                port.has_attributes) {
                issues.push_back("port '" + c.instance_name + "." + port.name +
                                 "' is an Out port; <PortAttributes> (buffer/"
                                 "threadpool) apply only to In ports");
            }
            if (own != nullptr && own->direction == PortDirection::kIn &&
                port.has_attributes &&
                port.attributes.policy.overflow ==
                    core::OverflowPolicy::kRingOverwrite &&
                port.attributes.max_threads == 0) {
                issues.push_back(
                    "port '" + c.instance_name + "." + port.name +
                    "' sets <Overflow>Ring</Overflow> but MaxThreadpoolSize "
                    "is 0: a synchronous port never queues messages, so "
                    "there is nothing to overwrite");
            }
            for (const CclLink& link : port.links) {
                auto peer_it = table.find(link.to_component);
                if (peer_it == table.end()) {
                    issues.push_back("link from '" + c.instance_name + "." +
                                     port.name + "' names unknown instance '" +
                                     link.to_component + "' (line " +
                                     std::to_string(link.line) + ")");
                    continue;
                }
                const CclComponent& peer = *peer_it->second.decl;
                const CdlComponent* peer_cls = cdl.find(peer.class_name);
                const CdlPort* peer_port =
                    peer_cls != nullptr ? peer_cls->find_port(link.to_port) : nullptr;
                if (peer_cls != nullptr && peer_port == nullptr) {
                    issues.push_back("link from '" + c.instance_name + "." +
                                     port.name + "' names unknown port '" +
                                     peer.instance_name + "." + link.to_port + "'");
                    continue;
                }
                if (own == nullptr || peer_port == nullptr) continue;

                // Orientation: exactly one Out and one In endpoint.
                if (own->direction == peer_port->direction) {
                    issues.push_back(
                        "link '" + c.instance_name + "." + port.name + "' <-> '" +
                        peer.instance_name + "." + link.to_port +
                        "' connects two " +
                        (own->direction == PortDirection::kIn ? "In" : "Out") +
                        " ports; Out ports must be connected to In ports");
                    continue;
                }
                if (peer.instance_name == c.instance_name) {
                    issues.push_back("loop: component '" + c.instance_name +
                                     "' is connected to itself via '" + port.name +
                                     "' -> '" + link.to_port + "'");
                    continue;
                }
                if (own->message_type != peer_port->message_type) {
                    issues.push_back("message type mismatch on link '" +
                                     c.instance_name + "." + port.name + "' ('" +
                                     own->message_type + "') <-> '" +
                                     peer.instance_name + "." + link.to_port +
                                     "' ('" + peer_port->message_type + "')");
                    continue;
                }
                Edge e;
                e.kind = link.kind;
                e.line = link.line;
                e.message_type = own->message_type;
                if (own->direction == PortDirection::kOut) {
                    e.from_instance = c.instance_name;
                    e.from_port = port.name;
                    e.to_instance = peer.instance_name;
                    e.to_port = link.to_port;
                } else {
                    e.from_instance = peer.instance_name;
                    e.from_port = link.to_port;
                    e.to_instance = c.instance_name;
                    e.to_port = port.name;
                }
                // A link may legitimately be declared on both endpoints;
                // identical edges collapse to one connection.
                edges.insert(e);
            }
        }
    });

    // ---- pass 3: link legality + SMM placement ----
    for (const Edge& e : edges) {
        if (table.count(e.from_instance) == 0 || table.count(e.to_instance) == 0) {
            continue; // already reported
        }
        const auto from_chain = ancestry(table, e.from_instance);
        const auto to_chain = ancestry(table, e.to_instance);
        const auto index_of = [](const std::vector<std::string>& chain,
                                 const std::string& name) -> int {
            const auto it = std::find(chain.begin(), chain.end(), name);
            return it == chain.end()
                       ? -1
                       : static_cast<int>(it - chain.begin());
        };
        const int to_in_from = index_of(from_chain, e.to_instance);
        const int from_in_to = index_of(to_chain, e.from_instance);

        PlannedConnection conn;
        conn.from_instance = e.from_instance;
        conn.from_port = e.from_port;
        conn.to_instance = e.to_instance;
        conn.to_port = e.to_port;
        conn.message_type = e.message_type;

        const std::string edge_desc = e.from_instance + "." + e.from_port +
                                      " -> " + e.to_instance + "." + e.to_port;
        if (to_in_from == 1 || from_in_to == 1) {
            // Parent <-> direct child: must be declared Internal.
            if (e.kind != LinkKind::kInternal) {
                issues.push_back("link " + edge_desc +
                                 " joins a parent and its child and must be "
                                 "declared Internal");
                continue;
            }
            conn.host_instance = to_in_from == 1 ? e.to_instance : e.from_instance;
        } else if (to_in_from > 1 || from_in_to > 1) {
            // Non-immediate ancestor: legal as an External link; the
            // compiler provides a shadow port (pool/buffer directly in the
            // ancestor's SMM, no relay through intermediate levels).
            if (e.kind != LinkKind::kExternal) {
                issues.push_back("link " + edge_desc +
                                 " skips generations and must be declared "
                                 "External (shadow port)");
                continue;
            }
            conn.shadow = true;
            conn.host_instance =
                to_in_from > 1 ? e.to_instance : e.from_instance;
        } else if (table.at(e.from_instance).parent_name ==
                   table.at(e.to_instance).parent_name) {
            // Siblings (possibly both top-level, sharing the root).
            if (e.kind != LinkKind::kExternal) {
                issues.push_back("link " + edge_desc +
                                 " joins siblings and must be declared External");
                continue;
            }
            conn.host_instance = table.at(e.from_instance).parent_name;
        } else {
            issues.push_back(
                "link " + edge_desc +
                " joins components that are neither parent/child, siblings, "
                "nor ancestor/descendant; the RTSJ scoping rules allow no "
                "such connection");
            continue;
        }

        // Pool capacity: the In side's buffer + pool threads + slack.
        core::InPortConfig in_cfg;
        const CclComponent& to_decl = *table.at(e.to_instance).decl;
        for (const CclPortDecl& p : to_decl.ports) {
            if (p.name == e.to_port && p.has_attributes) in_cfg = p.attributes;
        }
        conn.pool_capacity = in_cfg.buffer_size + in_cfg.max_threads + 2;
        plan.connections.push_back(std::move(conn));
    }

    // ---- pass 4: remote connections (<Remote> / <Bands>) ----
    // The GIOP flags octet carries the band in 3 bits, so 8 lanes is the
    // wire-format ceiling (net::kMaxLanes); the deployment's reactor-band
    // count is the deployment ceiling — a lane beyond it would share a
    // loop thread with another band, silently voiding the isolation the
    // bands declare.
    constexpr std::size_t kWireBandLimit = 8;
    std::set<std::string> remote_names;
    for (const CclRemote& remote : ccl.remotes) {
        if (!remote_names.insert(remote.name).second) {
            issues.push_back("duplicate remote name '" + remote.name +
                             "' (line " + std::to_string(remote.line) + ")");
            continue;
        }
        PlannedRemote pr;
        pr.name = remote.name;
        pr.bands = remote.bands;
        pr.transport = remote.transport;
        pr.host = remote.host;
        if (remote.bands < 1) {
            issues.push_back("remote '" + remote.name +
                             "': <Bands> must be >= 1");
        }
        if (remote.transport == RemoteTransport::kShm) {
            // Shared memory cannot cross hosts; catching a non-loopback
            // endpoint here beats a silent per-connection TCP fallback.
            if (remote.host != "127.0.0.1" && remote.host != "localhost" &&
                remote.host != "::1") {
                issues.push_back(
                    "remote '" + remote.name + "': <Transport>shm "
                    "requires a co-located peer, but <Host> is '" +
                    remote.host + "' (shared memory cannot cross hosts)");
            }
        }
        if (remote.bands > kWireBandLimit) {
            issues.push_back("remote '" + remote.name + "': <Bands> " +
                             std::to_string(remote.bands) +
                             " exceeds the wire-format limit of " +
                             std::to_string(kWireBandLimit) +
                             " (3-bit band field in the GIOP flags octet)");
        }
        // Shm lanes live inside one segment drained by a single recv
        // thread — they isolate queueing (per-band rings and arenas), not
        // loop threads — so the reactor-band ceiling applies only to
        // TCP lane groups, where each band is its own socket on its own
        // loop.
        if (remote.transport != RemoteTransport::kShm &&
            remote.bands > plan.rtsj.reactor_bands) {
            issues.push_back(
                "remote '" + remote.name + "': <Bands> " +
                std::to_string(remote.bands) +
                " exceeds <ReactorBands> " +
                std::to_string(plan.rtsj.reactor_bands) +
                " — lanes beyond the reactor's band count would share a "
                "loop thread, voiding the priority isolation they declare");
        }
        std::set<std::string> export_routes;
        std::set<std::string> import_routes;
        const auto check_route = [&](const CclRemoteRoute& r, bool is_export)
            -> const CdlPort* {
            const char* what = is_export ? "export" : "import";
            auto it = table.find(r.component);
            if (it == table.end()) {
                issues.push_back("remote '" + remote.name + "' " + what +
                                 " '" + r.route + "' names unknown instance '" +
                                 r.component + "' (line " +
                                 std::to_string(r.line) + ")");
                return nullptr;
            }
            const CdlComponent* cls = cdl.find(it->second.decl->class_name);
            const CdlPort* port =
                cls != nullptr ? cls->find_port(r.port) : nullptr;
            if (cls != nullptr && port == nullptr) {
                issues.push_back("remote '" + remote.name + "' " + what +
                                 " '" + r.route + "' names unknown port '" +
                                 r.component + "." + r.port + "'");
                return nullptr;
            }
            if (port != nullptr) {
                const PortDirection want =
                    is_export ? PortDirection::kOut : PortDirection::kIn;
                if (port->direction != want) {
                    issues.push_back(
                        "remote '" + remote.name + "' " + what + " '" +
                        r.route + "': port '" + r.component + "." + r.port +
                        "' is an " +
                        (port->direction == PortDirection::kIn ? "In" : "Out") +
                        " port; exports ship from Out ports, imports feed "
                        "In ports");
                    return nullptr;
                }
            }
            auto& seen = is_export ? export_routes : import_routes;
            if (!seen.insert(r.route).second) {
                issues.push_back("remote '" + remote.name +
                                 "': duplicate " + what + " route '" +
                                 r.route + "'");
                return nullptr;
            }
            return port;
        };
        for (const CclRemoteRoute& r : remote.exports) {
            const CdlPort* port = check_route(r, /*is_export=*/true);
            if (r.policy.band >= 0 && static_cast<std::size_t>(r.policy.band) >=
                                          remote.bands) {
                issues.push_back("remote '" + remote.name + "' export '" +
                                 r.route + "': <Band> " +
                                 std::to_string(r.policy.band) +
                                 " is outside the remote's band range [0, " +
                                 std::to_string(remote.bands) + ")");
                continue;
            }
            if (port == nullptr) continue;
            PlannedRemoteRoute planned;
            planned.instance = r.component;
            planned.port = r.port;
            planned.route = r.route;
            planned.policy = r.policy;
            planned.message_type = port->message_type;
            pr.exports.push_back(std::move(planned));
        }
        for (const CclRemoteRoute& r : remote.imports) {
            const CdlPort* port = check_route(r, /*is_export=*/false);
            if (r.policy.band >= 0) {
                issues.push_back("remote '" + remote.name + "' import '" +
                                 r.route +
                                 "' declares a <Band>; imports take the band "
                                 "stamped by the exporting peer");
                continue;
            }
            if (!r.policy.coalesce) {
                issues.push_back("remote '" + remote.name + "' import '" +
                                 r.route +
                                 "' declares <Coalesce>; the exporting peer "
                                 "owns the route's wire policy");
                continue;
            }
            if (port == nullptr) continue;
            PlannedRemoteRoute planned;
            planned.instance = r.component;
            planned.port = r.port;
            planned.route = r.route;
            planned.message_type = port->message_type;
            pr.imports.push_back(std::move(planned));
        }
        plan.remotes.push_back(std::move(pr));
    }

    // ---- pass 5: planned components + scope pools ----
    std::set<int> used_levels;
    ccl.for_each_component([&](const CclComponent& c, const CclComponent* parent) {
        PlannedComponent pc;
        pc.instance_name = c.instance_name;
        pc.class_name = c.class_name;
        pc.type = c.type;
        pc.scope_level = c.scope_level;
        pc.parent_instance = parent != nullptr ? parent->instance_name : "";
        const CdlComponent* cls = cdl.find(c.class_name);
        for (const CclPortDecl& p : c.ports) {
            const CdlPort* def = cls != nullptr ? cls->find_port(p.name) : nullptr;
            if (p.has_attributes && def != nullptr &&
                def->direction == PortDirection::kIn) {
                pc.port_configs[p.name] = p.attributes;
            }
        }
        plan.components.push_back(std::move(pc));
        if (c.type == core::ComponentType::kScoped) {
            used_levels.insert(c.scope_level);
        }
    });
    for (const int level : used_levels) {
        const bool declared =
            std::any_of(plan.rtsj.scoped_pools.begin(),
                        plan.rtsj.scoped_pools.end(),
                        [&](const core::ScopePoolSpec& s) { return s.level == level; });
        if (!declared) {
            core::ScopePoolSpec spec;
            spec.level = level;
            plan.rtsj.scoped_pools.push_back(spec); // library default size
        }
    }

    if (!issues.empty()) {
        throw ValidationError(std::move(issues));
    }
    return plan;
}

} // namespace compadres::compiler
