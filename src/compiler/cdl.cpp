#include "compiler/cdl.hpp"

namespace compadres::compiler {

const CdlPort* CdlComponent::find_port(const std::string& port_name) const noexcept {
    for (const CdlPort& p : ports) {
        if (p.name == port_name) return &p;
    }
    return nullptr;
}

const CdlComponent* CdlModel::find(const std::string& class_name) const noexcept {
    auto it = components.find(class_name);
    return it == components.end() ? nullptr : &it->second;
}

namespace {

CdlPort parse_port(const xml::XmlNode& node, const std::string& component_name) {
    CdlPort port;
    port.name = node.child_text("PortName");
    if (port.name.empty()) {
        throw CdlError("component '" + component_name +
                       "': <Port> without <PortName> (line " +
                       std::to_string(node.line) + ")");
    }
    const std::string type = node.child_text("PortType");
    if (type == "In") {
        port.direction = PortDirection::kIn;
    } else if (type == "Out") {
        port.direction = PortDirection::kOut;
    } else {
        throw CdlError("port '" + component_name + "." + port.name +
                       "': <PortType> must be 'In' or 'Out', got '" + type + "'");
    }
    port.message_type = node.child_text("MessageType");
    if (port.message_type.empty()) {
        throw CdlError("port '" + component_name + "." + port.name +
                       "' has no <MessageType>");
    }
    return port;
}

CdlComponent parse_component(const xml::XmlNode& node) {
    CdlComponent comp;
    comp.name = node.child_text("ComponentName");
    if (comp.name.empty()) {
        throw CdlError("<Component> without <ComponentName> (line " +
                       std::to_string(node.line) + ")");
    }
    for (const xml::XmlNode* port_node : node.children_named("Port")) {
        CdlPort port = parse_port(*port_node, comp.name);
        if (comp.find_port(port.name) != nullptr) {
            throw CdlError("component '" + comp.name + "': duplicate port '" +
                           port.name + "'");
        }
        comp.ports.push_back(std::move(port));
    }
    return comp;
}

} // namespace

CdlModel parse_cdl(const xml::XmlNode& root) {
    CdlModel model;
    std::vector<const xml::XmlNode*> component_nodes;
    if (root.name == "Component") {
        component_nodes.push_back(&root);
    } else {
        component_nodes = root.children_named("Component");
    }
    if (component_nodes.empty()) {
        throw CdlError("CDL document declares no components");
    }
    for (const xml::XmlNode* node : component_nodes) {
        CdlComponent comp = parse_component(*node);
        if (model.components.count(comp.name) != 0) {
            throw CdlError("duplicate component definition '" + comp.name + "'");
        }
        model.components.emplace(comp.name, std::move(comp));
    }
    return model;
}

CdlModel parse_cdl_file(const std::string& path) {
    return parse_cdl(*xml::parse_file(path));
}

CdlModel parse_cdl_string(const std::string& text) {
    return parse_cdl(*xml::parse(text));
}

} // namespace compadres::compiler
