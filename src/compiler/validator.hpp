// CCL validation and assembly planning — the second phase of the paper's
// compiler (§2.2: "In this phase the compiler serves two purposes:
// validation and glue code generation").
//
// Validation enforces everything the paper lists:
//   * every instance's class is defined in the CDL; ports exist;
//   * Out ports connect to In ports and message types match exactly;
//   * no loops (a component connected to itself, or the same edge twice);
//   * internal links join a parent with its own child; external links join
//     siblings — or, skipping generations, a component with a non-immediate
//     ancestor, which the compiler turns into a *shadow port* (pool and
//     buffer placed directly in the ancestor's SMM, paper Fig. 5);
//   * scope levels are consistent (child = parent + 1; immortal components
//     never nest inside scoped ones) — this is what guarantees the derived
//     region structure satisfies the single-parent rule;
//   * the derived SMM placement satisfies the Table-1 access rules;
//   * every scoped level used has a scoped-region pool (explicit or
//     defaulted) and port attributes are sane.
//
// The output is an AssemblyPlan: the ordered create-and-wire instructions
// that Assembler executes — the runtime analogue of the generated RTSJ
// glue code.
#pragma once

#include "compiler/ccl.hpp"
#include "compiler/cdl.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace compadres::compiler {

/// All problems found, reported together (a build tool that stops at the
/// first error wastes the user's time).
class ValidationError : public std::runtime_error {
public:
    explicit ValidationError(std::vector<std::string> issues);
    const std::vector<std::string>& issues() const noexcept { return issues_; }

private:
    static std::string join(const std::vector<std::string>& issues);
    std::vector<std::string> issues_;
};

struct PlannedComponent {
    std::string instance_name;
    std::string class_name;
    core::ComponentType type = core::ComponentType::kImmortal;
    int scope_level = 0;
    std::string parent_instance; ///< empty = top level (root)
    /// In-port attributes from the CCL, applied at construction.
    std::map<std::string, core::InPortConfig> port_configs;
};

struct PlannedConnection {
    std::string from_instance; ///< Out side
    std::string from_port;
    std::string to_instance; ///< In side
    std::string to_port;
    std::string message_type;
    /// Instance whose SMM hosts the pool/buffer (closest common ancestor;
    /// empty = the application root).
    std::string host_instance;
    /// True when the link skips generations — the compiler "detects the
    /// need for a shadow port" (paper Fig. 5).
    bool shadow = false;
    std::size_t pool_capacity = 0;
};

/// One validated remote route (export or import) of a <Remote>.
struct PlannedRemoteRoute {
    std::string instance;
    std::string port;
    std::string route;
    /// Exports: the route's transmission policy (band -1 = derived from
    /// the port's default priority at bridge setup). Always defaulted for
    /// imports — the band travels in the frame.
    core::TransmissionPolicy policy;
    std::string message_type;
};

/// One validated <Remote>: a lane-group connection to a peer application.
struct PlannedRemote {
    std::string name;
    std::size_t bands = 2; ///< lane count (validated <= rtsj.reactor_bands)
    /// Wire selection: TCP lane group, or the co-located shared-memory
    /// wire (validated single-band, loopback host only).
    RemoteTransport transport = RemoteTransport::kTcp;
    std::string host = "127.0.0.1";
    std::vector<PlannedRemoteRoute> exports;
    std::vector<PlannedRemoteRoute> imports;
};

struct AssemblyPlan {
    std::string application_name;
    core::RtsjAttributes rtsj;
    std::vector<PlannedComponent> components; ///< parents before children
    std::vector<PlannedConnection> connections;
    std::vector<PlannedRemote> remotes;
};

/// Validate `ccl` against `cdl` and derive the plan. Throws
/// ValidationError carrying every issue found.
AssemblyPlan validate_and_plan(const CdlModel& cdl, const CclModel& ccl);

} // namespace compadres::compiler
