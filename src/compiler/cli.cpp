#include "compiler/cli.hpp"

#include "compiler/assembler.hpp"
#include "compiler/codegen.hpp"
#include "compiler/diff.hpp"
#include "compiler/emit.hpp"
#include "core/recompose.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

namespace compadres::compiler {

namespace {

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kInvalid = 2;
constexpr int kIo = 3;
/// `diff` contract: a transition the live runtime cannot apply exits 1.
constexpr int kInvalidTransition = 1;

void print_usage(std::ostream& err) {
    err << "usage:\n"
           "  compadresc check     <cdl.xml> [<ccl.xml>]\n"
           "  compadresc skeletons <cdl.xml> -o <dir>\n"
           "  compadresc plan      <cdl.xml> <ccl.xml>\n"
           "  compadresc diff      <cdl.xml> <old.ccl> <new.ccl>\n"
           "  compadresc main-stub <cdl.xml> <ccl.xml> -o <dir>\n"
           "  compadresc canon     <cdl.xml> [<ccl.xml>]\n"
           "diff prints the live-recompose plan (spawns/retires, route\n"
           "adds/removes, repolicies) without applying it; exit 1 when the\n"
           "transition cannot be applied to a running application.\n";
}

/// Extracts "-o <dir>" from args; empty string when absent.
std::string take_output_dir(std::vector<std::string>& args) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == "-o") {
            std::string dir = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return dir;
        }
    }
    return {};
}

int write_file(const std::filesystem::path& path, const std::string& content,
               std::ostream& out, std::ostream& err) {
    std::ofstream f(path);
    if (!f) {
        err << "compadresc: cannot write " << path.string() << "\n";
        return kIo;
    }
    f << content;
    out << "wrote " << path.string() << " (" << content.size() << " bytes)\n";
    return kOk;
}

void dump_plan(const AssemblyPlan& plan, std::ostream& out) {
    out << "application: " << plan.application_name << "\n";
    out << "immortal: " << plan.rtsj.immortal_size << " bytes\n";
    for (const auto& pool : plan.rtsj.scoped_pools) {
        out << "scope pool: level " << pool.level << ", " << pool.scope_size
            << " bytes x " << pool.pool_size << "\n";
    }
    if (plan.rtsj.trace.enabled || plan.rtsj.trace.recorder) {
        out << "trace: sample-shift " << plan.rtsj.trace.sample_shift
            << ", ring depth " << plan.rtsj.trace.ring_depth << ", recorder "
            << (plan.rtsj.trace.recorder ? "on" : "off") << "\n";
    }
    for (const auto& comp : plan.components) {
        out << "component: " << comp.instance_name << " class="
            << comp.class_name << " "
            << (comp.type == core::ComponentType::kImmortal ? "immortal"
                                                            : "scoped")
            << " level=" << comp.scope_level << " parent="
            << (comp.parent_instance.empty() ? "<root>" : comp.parent_instance)
            << "\n";
        for (const auto& [port, cfg] : comp.port_configs) {
            out << "  port " << port << ": buffer=" << cfg.buffer_size
                << " threads=" << cfg.min_threads << ".." << cfg.max_threads
                << (cfg.strategy == core::ThreadpoolStrategy::kShared
                        ? " shared"
                        : " dedicated")
                << (cfg.policy.overflow == core::OverflowPolicy::kRingOverwrite
                        ? " overflow=ring"
                        : "")
                << "\n";
        }
    }
    for (const auto& conn : plan.connections) {
        out << "connection: " << conn.from_instance << "." << conn.from_port
            << " -> " << conn.to_instance << "." << conn.to_port << " type="
            << conn.message_type << " host="
            << (conn.host_instance.empty() ? "<root>" : conn.host_instance)
            << (conn.shadow ? " [shadow]" : "") << " pool="
            << conn.pool_capacity << "\n";
    }
    for (const auto& remote : plan.remotes) {
        out << "remote: " << remote.name << " bands=" << remote.bands
            << " transport="
            << (remote.transport == RemoteTransport::kShm ? "shm" : "tcp");
        if (remote.host != "127.0.0.1") out << " host=" << remote.host;
        out << "\n";
        for (const auto& r : remote.exports) {
            out << "  export " << r.route << ": " << r.instance << "."
                << r.port << " type=" << r.message_type << " band=";
            if (r.policy.band >= 0) {
                out << r.policy.band;
            } else {
                out << "auto";
            }
            if (!r.policy.coalesce) out << " coalesce=off";
            out << "\n";
        }
        for (const auto& r : remote.imports) {
            out << "  import " << r.route << ": " << r.instance << "."
                << r.port << " type=" << r.message_type << "\n";
        }
    }
}

} // namespace

int compadresc_main(const std::vector<std::string>& args_in, std::ostream& out,
                    std::ostream& err) {
    std::vector<std::string> args = args_in;
    const std::string output_dir = take_output_dir(args);
    if (args.empty()) {
        print_usage(err);
        return kUsage;
    }
    const std::string command = args.front();
    args.erase(args.begin());

    try {
        if (command == "check") {
            if (args.empty() || args.size() > 2) {
                print_usage(err);
                return kUsage;
            }
            const CdlModel cdl = parse_cdl_file(args[0]);
            out << "CDL ok: " << cdl.components.size() << " component class(es)\n";
            if (args.size() == 2) {
                const CclModel ccl = parse_ccl_file(args[1]);
                const AssemblyPlan plan = validate_and_plan(cdl, ccl);
                out << "CCL ok: " << plan.components.size()
                    << " instance(s), " << plan.connections.size()
                    << " connection(s), " << plan.remotes.size()
                    << " remote(s)\n";
            }
            return kOk;
        }
        if (command == "skeletons") {
            if (args.size() != 1 || output_dir.empty()) {
                print_usage(err);
                return kUsage;
            }
            const CdlModel cdl = parse_cdl_file(args[0]);
            std::filesystem::create_directories(output_dir);
            for (const auto& [name, content] : generate_skeletons(cdl)) {
                const int rc = write_file(
                    std::filesystem::path(output_dir) / name, content, out, err);
                if (rc != kOk) return rc;
            }
            return kOk;
        }
        if (command == "plan") {
            if (args.size() != 2) {
                print_usage(err);
                return kUsage;
            }
            const CdlModel cdl = parse_cdl_file(args[0]);
            const CclModel ccl = parse_ccl_file(args[1]);
            dump_plan(validate_and_plan(cdl, ccl), out);
            return kOk;
        }
        if (command == "diff" || command == "--diff") {
            if (args.size() != 3) {
                print_usage(err);
                return kUsage;
            }
            const CdlModel cdl = parse_cdl_file(args[0]);
            const AssemblyPlan from =
                validate_and_plan(cdl, parse_ccl_file(args[1]));
            const AssemblyPlan to =
                validate_and_plan(cdl, parse_ccl_file(args[2]));
            try {
                out << core::describe(diff_plans(from, to));
                return kOk;
            } catch (const ValidationError& e) {
                err << e.what() << "\n";
                return kInvalidTransition;
            }
        }
        if (command == "main-stub") {
            if (args.size() != 2 || output_dir.empty()) {
                print_usage(err);
                return kUsage;
            }
            const CdlModel cdl = parse_cdl_file(args[0]);
            const CclModel ccl = parse_ccl_file(args[1]);
            const AssemblyPlan plan = validate_and_plan(cdl, ccl);
            std::filesystem::create_directories(output_dir);
            return write_file(std::filesystem::path(output_dir) /
                                  (plan.application_name + "_main.cpp"),
                              generate_main_stub(plan), out, err);
        }
        if (command == "canon") {
            // Canonical re-emission: parse and write the documents back in
            // normalized form (stable ordering, consistent indentation).
            if (args.empty() || args.size() > 2) {
                print_usage(err);
                return kUsage;
            }
            out << emit_cdl(parse_cdl_file(args[0]));
            if (args.size() == 2) {
                out << emit_ccl(parse_ccl_file(args[1]));
            }
            return kOk;
        }
        print_usage(err);
        return kUsage;
    } catch (const ValidationError& e) {
        err << e.what() << "\n";
        return kInvalid;
    } catch (const std::exception& e) {
        err << "compadresc: " << e.what() << "\n";
        return kInvalid;
    }
}

} // namespace compadres::compiler
