#include "cdr/cdr.hpp"

namespace compadres::cdr {

void OutputStream::align(std::size_t boundary) {
    const std::size_t misalign = (buf_.size() - origin_) % boundary;
    if (misalign != 0) {
        buf_.resize(buf_.size() + (boundary - misalign), 0);
    }
}

void OutputStream::write_float(float v) {
    static_assert(sizeof(float) == 4);
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    write_ulong(bits);
}

void OutputStream::write_double(double v) {
    static_assert(sizeof(double) == 8);
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write_ulonglong(bits);
}

void OutputStream::write_string(std::string_view s) {
    write_ulong(static_cast<std::uint32_t>(s.size() + 1));
    write_raw(s.data(), s.size());
    write_octet(0);
}

void OutputStream::write_octet_seq(const std::uint8_t* data, std::size_t n) {
    write_ulong(static_cast<std::uint32_t>(n));
    write_raw(data, n);
}

void OutputStream::write_raw(const void* data, std::size_t n) {
    if (n == 0) return;
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, data, n);
}

void OutputStream::patch_ulong(std::size_t offset, std::uint32_t v) {
    if (offset + 4 > buf_.size()) {
        throw MarshalError("patch_ulong out of range");
    }
    if (order_ != native_order()) v = detail::byteswap(v);
    std::memcpy(buf_.data() + offset, &v, 4);
}

void InputStream::align(std::size_t boundary) {
    const std::size_t misalign = pos_ % boundary;
    if (misalign != 0) {
        const std::size_t pad = boundary - misalign;
        require(pad);
        pos_ += pad;
    }
}

float InputStream::read_float() {
    const std::uint32_t bits = read_ulong();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
}

double InputStream::read_double() {
    const std::uint64_t bits = read_ulonglong();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

std::string InputStream::read_string() {
    const std::uint32_t len = read_ulong();
    if (len == 0) {
        throw MarshalError("CDR string with zero length (must include NUL)");
    }
    require(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len - 1);
    if (data_[pos_ + len - 1] != 0) {
        throw MarshalError("CDR string missing NUL terminator");
    }
    pos_ += len;
    return s;
}

std::string_view InputStream::read_string_view() {
    const std::uint32_t len = read_ulong();
    if (len == 0) {
        throw MarshalError("CDR string with zero length (must include NUL)");
    }
    require(len);
    if (data_[pos_ + len - 1] != 0) {
        throw MarshalError("CDR string missing NUL terminator");
    }
    std::string_view s(reinterpret_cast<const char*>(data_ + pos_), len - 1);
    pos_ += len;
    return s;
}

std::pair<const std::uint8_t*, std::size_t> InputStream::read_octet_seq_view() {
    const std::uint32_t len = read_ulong();
    require(len);
    const std::uint8_t* p = data_ + pos_;
    pos_ += len;
    return {p, len};
}

void InputStream::read_raw(void* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
}

} // namespace compadres::cdr
