#include "cdr/giop.hpp"

namespace compadres::cdr {

namespace {

constexpr std::size_t kSizeFieldOffset = 8;

void encode_giop_header(OutputStream& out, GiopMsgType type) {
    out.write_raw(GiopHeader::kMagic, 4);
    out.write_octet(1); // major
    out.write_octet(0); // minor
    out.write_octet(static_cast<std::uint8_t>(out.order()));
    out.write_octet(static_cast<std::uint8_t>(type));
    out.write_ulong(0); // message_size, patched after the body is written
}

void finish_frame(OutputStream& out) {
    out.patch_ulong(kSizeFieldOffset,
                    static_cast<std::uint32_t>(out.size() - GiopHeader::kSize));
}

} // namespace

std::vector<std::uint8_t> encode_request(const RequestHeader& req,
                                         const std::uint8_t* payload,
                                         std::size_t payload_len) {
    OutputStream out;
    encode_giop_header(out, GiopMsgType::kRequest);
    out.write_ulong(req.request_id);
    out.write_boolean(req.response_expected);
    out.write_octet_seq(reinterpret_cast<const std::uint8_t*>(req.object_key.data()),
                        req.object_key.size());
    out.write_string(req.operation);
    out.write_octet_seq(payload, payload_len);
    finish_frame(out);
    return out.take_buffer();
}

std::vector<std::uint8_t> encode_reply(const ReplyHeader& rep,
                                       const std::uint8_t* payload,
                                       std::size_t payload_len) {
    OutputStream out;
    encode_giop_header(out, GiopMsgType::kReply);
    out.write_ulong(rep.request_id);
    out.write_ulong(static_cast<std::uint32_t>(rep.status));
    out.write_octet_seq(payload, payload_len);
    finish_frame(out);
    return out.take_buffer();
}

GiopHeader decode_header(const std::uint8_t* data, std::size_t size) {
    if (size < GiopHeader::kSize) {
        throw MarshalError("GIOP frame shorter than header");
    }
    if (std::memcmp(data, GiopHeader::kMagic, 4) != 0) {
        throw MarshalError("bad GIOP magic");
    }
    GiopHeader h;
    h.version_major = data[4];
    h.version_minor = data[5];
    if (h.version_major != 1) {
        throw MarshalError("unsupported GIOP major version " +
                           std::to_string(h.version_major));
    }
    // Flags octet: bit 0 = byte order, bit 3 = trace-context trailer,
    // bits 4-6 = priority band (our extensions; zero on stock GIOP 1.0
    // frames). Bits 1-2 and 7 stay reserved-must-be-zero so genuinely
    // corrupt octets still fail.
    if ((data[GiopHeader::kFlagsOffset] &
         ~static_cast<std::uint8_t>(
             0x01 | GiopHeader::kTraceFlag |
             (GiopHeader::kBandMask << GiopHeader::kBandShift))) != 0) {
        throw MarshalError("bad GIOP flags octet");
    }
    h.byte_order = static_cast<ByteOrder>(data[GiopHeader::kFlagsOffset] & 0x01);
    h.band = frame_band(data);
    h.has_trace_context = frame_has_trace_context(data);
    h.msg_type = static_cast<GiopMsgType>(data[7]);
    InputStream in(data + 8, 4, h.byte_order);
    h.message_size = in.read_ulong();
    return h;
}

DecodedRequest decode_request(const std::uint8_t* frame, std::size_t size) {
    const GiopHeader h = decode_header(frame, size);
    if (h.msg_type != GiopMsgType::kRequest) {
        throw MarshalError("expected GIOP Request");
    }
    if (GiopHeader::kSize + h.message_size > size) {
        throw MarshalError("truncated GIOP Request body");
    }
    // Offsets in the body stream are relative to the start of the body,
    // which in GIOP 1.0 begins 8-aligned (header is 12 bytes; we keep the
    // stream's own origin, matching our encoder).
    InputStream in(frame + GiopHeader::kSize, h.message_size, h.byte_order);
    DecodedRequest out;
    out.header.request_id = in.read_ulong();
    out.header.response_expected = in.read_boolean();
    const auto [key, key_len] = in.read_octet_seq_view();
    out.header.object_key.assign(reinterpret_cast<const char*>(key), key_len);
    out.header.operation = in.read_string();
    const auto [payload, payload_len] = in.read_octet_seq_view();
    out.payload = payload;
    out.payload_len = payload_len;
    return out;
}

DecodedRequestView decode_request_view(const std::uint8_t* frame,
                                       std::size_t size) {
    const GiopHeader h = decode_header(frame, size);
    if (h.msg_type != GiopMsgType::kRequest) {
        throw MarshalError("expected GIOP Request");
    }
    if (GiopHeader::kSize + h.message_size > size) {
        throw MarshalError("truncated GIOP Request body");
    }
    InputStream in(frame + GiopHeader::kSize, h.message_size, h.byte_order);
    DecodedRequestView out;
    out.byte_order = h.byte_order;
    out.header.request_id = in.read_ulong();
    out.header.response_expected = in.read_boolean();
    const auto [key, key_len] = in.read_octet_seq_view();
    out.header.object_key =
        std::string_view(reinterpret_cast<const char*>(key), key_len);
    out.header.operation = in.read_string_view();
    const auto [payload, payload_len] = in.read_octet_seq_view();
    out.payload = payload;
    out.payload_len = payload_len;
    return out;
}

std::size_t begin_request_payload(OutputStream& out, std::uint32_t request_id,
                                  bool response_expected,
                                  std::string_view object_key,
                                  std::string_view operation) {
    encode_giop_header(out, GiopMsgType::kRequest);
    out.write_ulong(request_id);
    out.write_boolean(response_expected);
    out.write_octet_seq(reinterpret_cast<const std::uint8_t*>(object_key.data()),
                        object_key.size());
    out.write_string(operation);
    out.write_ulong(0); // payload length, patched by finish_payload()
    const std::size_t len_offset = out.size() - 4;
    out.rebase(); // body alignment relative to the payload start
    return len_offset;
}

std::size_t begin_reply_payload(OutputStream& out, std::uint32_t request_id,
                                ReplyStatus status) {
    encode_giop_header(out, GiopMsgType::kReply);
    out.write_ulong(request_id);
    out.write_ulong(static_cast<std::uint32_t>(status));
    out.write_ulong(0); // payload length, patched by finish_payload()
    const std::size_t len_offset = out.size() - 4;
    out.rebase();
    return len_offset;
}

void finish_payload(OutputStream& out, std::size_t payload_len_offset) {
    out.patch_ulong(payload_len_offset,
                    static_cast<std::uint32_t>(out.size() -
                                               (payload_len_offset + 4)));
    finish_frame(out);
}

void append_trace_trailer(OutputStream& out, std::uint64_t trace_id,
                          std::uint32_t span_id) {
    // Trailer bytes are defined little-endian independent of the frame's
    // byte-order bit, so no alignment or swap bookkeeping leaks into the
    // payload encoding that precedes it.
    std::uint8_t trailer[kTraceTrailerSize] = {};
    for (std::size_t i = 0; i < 8; ++i) {
        trailer[i] = static_cast<std::uint8_t>(trace_id >> (8 * i));
    }
    for (std::size_t i = 0; i < 4; ++i) {
        trailer[8 + i] = static_cast<std::uint8_t>(span_id >> (8 * i));
    }
    out.write_raw(trailer, sizeof(trailer));
    out.patch_octet(GiopHeader::kFlagsOffset,
                    static_cast<std::uint8_t>(
                        out.octet_at(GiopHeader::kFlagsOffset) |
                        GiopHeader::kTraceFlag));
    finish_frame(out); // message_size now covers the trailer
}

bool read_trace_trailer(const std::uint8_t* frame, std::size_t size,
                        std::uint64_t& trace_id,
                        std::uint32_t& span_id) noexcept {
    if (size < GiopHeader::kSize + kTraceTrailerSize) return false;
    if (!frame_has_trace_context(frame)) return false;
    const std::uint8_t* t = frame + size - kTraceTrailerSize;
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        id |= std::uint64_t{t[i]} << (8 * i);
    }
    std::uint32_t span = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        span |= std::uint32_t{t[8 + i]} << (8 * i);
    }
    trace_id = id;
    span_id = span;
    return true;
}

std::vector<std::uint8_t> encode_locate_request(const LocateRequestHeader& req) {
    OutputStream out;
    encode_giop_header(out, GiopMsgType::kLocateRequest);
    out.write_ulong(req.request_id);
    out.write_octet_seq(
        reinterpret_cast<const std::uint8_t*>(req.object_key.data()),
        req.object_key.size());
    finish_frame(out);
    return out.take_buffer();
}

std::vector<std::uint8_t> encode_locate_reply(const LocateReplyHeader& rep) {
    OutputStream out;
    encode_giop_header(out, GiopMsgType::kLocateReply);
    out.write_ulong(rep.request_id);
    out.write_ulong(static_cast<std::uint32_t>(rep.status));
    finish_frame(out);
    return out.take_buffer();
}

LocateRequestHeader decode_locate_request(const std::uint8_t* frame,
                                          std::size_t size) {
    const GiopHeader h = decode_header(frame, size);
    if (h.msg_type != GiopMsgType::kLocateRequest) {
        throw MarshalError("expected GIOP LocateRequest");
    }
    if (GiopHeader::kSize + h.message_size > size) {
        throw MarshalError("truncated GIOP LocateRequest body");
    }
    InputStream in(frame + GiopHeader::kSize, h.message_size, h.byte_order);
    LocateRequestHeader out;
    out.request_id = in.read_ulong();
    const auto [key, key_len] = in.read_octet_seq_view();
    out.object_key.assign(reinterpret_cast<const char*>(key), key_len);
    return out;
}

LocateReplyHeader decode_locate_reply(const std::uint8_t* frame,
                                      std::size_t size) {
    const GiopHeader h = decode_header(frame, size);
    if (h.msg_type != GiopMsgType::kLocateReply) {
        throw MarshalError("expected GIOP LocateReply");
    }
    if (GiopHeader::kSize + h.message_size > size) {
        throw MarshalError("truncated GIOP LocateReply body");
    }
    InputStream in(frame + GiopHeader::kSize, h.message_size, h.byte_order);
    LocateReplyHeader out;
    out.request_id = in.read_ulong();
    out.status = static_cast<LocateStatus>(in.read_ulong());
    return out;
}

DecodedReply decode_reply(const std::uint8_t* frame, std::size_t size) {
    const GiopHeader h = decode_header(frame, size);
    if (h.msg_type != GiopMsgType::kReply) {
        throw MarshalError("expected GIOP Reply");
    }
    if (GiopHeader::kSize + h.message_size > size) {
        throw MarshalError("truncated GIOP Reply body");
    }
    InputStream in(frame + GiopHeader::kSize, h.message_size, h.byte_order);
    DecodedReply out;
    out.header.request_id = in.read_ulong();
    out.header.status = static_cast<ReplyStatus>(in.read_ulong());
    const auto [payload, payload_len] = in.read_octet_seq_view();
    out.payload = payload;
    out.payload_len = payload_len;
    return out;
}

} // namespace compadres::cdr
