// CORBA CDR (Common Data Representation) marshalling.
//
// The paper's ORB example "includes marshalling and demarshalling, the most
// computationally-intensive modules of CORBA" (§3.3, footnote 2), so this
// reproduction implements real CDR: natural alignment relative to the
// start of the stream, explicit byte order with reader-makes-right
// swapping, strings with length+NUL, and sequences with length prefixes.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace compadres::cdr {

class MarshalError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class ByteOrder : std::uint8_t { kBigEndian = 0, kLittleEndian = 1 };

inline ByteOrder native_order() noexcept {
    return std::endian::native == std::endian::little ? ByteOrder::kLittleEndian
                                                      : ByteOrder::kBigEndian;
}

namespace detail {
template <typename T>
T byteswap(T v) noexcept {
    T out;
    auto* src = reinterpret_cast<const std::uint8_t*>(&v);
    auto* dst = reinterpret_cast<std::uint8_t*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
}
} // namespace detail

/// Growable output stream. Primitive writes are aligned to their natural
/// size, as CDR requires; the encoder always writes in its declared byte
/// order (native by default — the GIOP flags byte tells the reader).
class OutputStream {
public:
    explicit OutputStream(ByteOrder order = native_order()) : order_(order) {}

    /// Adopt existing storage (cleared) so the stream writes into recycled
    /// capacity instead of allocating — the frame pool's encode path.
    explicit OutputStream(std::vector<std::uint8_t> storage,
                          ByteOrder order = native_order())
        : order_(order), buf_(std::move(storage)) {
        buf_.clear();
    }

    ByteOrder order() const noexcept { return order_; }
    const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
    std::vector<std::uint8_t> take_buffer() noexcept { return std::move(buf_); }
    std::size_t size() const noexcept { return buf_.size(); }

    /// Rewind to empty, keeping the capacity (scratch-stream reuse).
    void clear() noexcept {
        buf_.clear();
        origin_ = 0;
    }
    void reserve(std::size_t n) { buf_.reserve(n); }

    /// Make subsequent alignment relative to the current position. An
    /// encoder writing a message body directly after a frame header calls
    /// rebase() first, so the body's padding matches what a body-origin
    /// InputStream (and the old two-stream encode) expects.
    void rebase() noexcept { origin_ = buf_.size(); }
    std::size_t origin() const noexcept { return origin_; }

    void align(std::size_t boundary);

    void write_octet(std::uint8_t v) { buf_.push_back(v); }
    void write_boolean(bool v) { write_octet(v ? 1 : 0); }
    void write_char(char v) { write_octet(static_cast<std::uint8_t>(v)); }
    void write_short(std::int16_t v) { write_scalar(v); }
    void write_ushort(std::uint16_t v) { write_scalar(v); }
    void write_long(std::int32_t v) { write_scalar(v); }
    void write_ulong(std::uint32_t v) { write_scalar(v); }
    void write_longlong(std::int64_t v) { write_scalar(v); }
    void write_ulonglong(std::uint64_t v) { write_scalar(v); }
    void write_float(float v);
    void write_double(double v);

    /// CDR string: ulong length (including NUL), bytes, NUL.
    void write_string(std::string_view s);

    /// Octet sequence: ulong length, then raw bytes (no per-octet align).
    void write_octet_seq(const std::uint8_t* data, std::size_t n);

    void write_raw(const void* data, std::size_t n);

    /// Patch a previously written ulong (used for GIOP message size).
    void patch_ulong(std::size_t offset, std::uint32_t v);

    /// Patch a single previously written octet (used for GIOP flag bits
    /// that are only known after the body is encoded).
    void patch_octet(std::size_t offset, std::uint8_t v) {
        buf_.at(offset) = v;
    }
    std::uint8_t octet_at(std::size_t offset) const { return buf_.at(offset); }

private:
    template <typename T>
    void write_scalar(T v) {
        align(sizeof(T));
        if (order_ != native_order()) {
            v = detail::byteswap(v);
        }
        const std::size_t at = buf_.size();
        buf_.resize(at + sizeof(T));
        std::memcpy(buf_.data() + at, &v, sizeof(T));
    }

    ByteOrder order_;
    std::vector<std::uint8_t> buf_;
    std::size_t origin_ = 0; ///< alignment base (see rebase())
};

/// Bounds-checked input stream over an existing buffer (not owned).
/// Reader-makes-right: the stream swaps when its declared order differs
/// from the native one.
class InputStream {
public:
    InputStream(const std::uint8_t* data, std::size_t size,
                ByteOrder order = native_order())
        : data_(data), size_(size), order_(order) {}

    ByteOrder order() const noexcept { return order_; }
    void set_order(ByteOrder order) noexcept { order_ = order; }
    std::size_t position() const noexcept { return pos_; }
    std::size_t remaining() const noexcept { return size_ - pos_; }

    void align(std::size_t boundary);

    std::uint8_t read_octet() { return read_scalar<std::uint8_t>(); }
    bool read_boolean() { return read_octet() != 0; }
    char read_char() { return static_cast<char>(read_octet()); }
    std::int16_t read_short() { return read_scalar<std::int16_t>(); }
    std::uint16_t read_ushort() { return read_scalar<std::uint16_t>(); }
    std::int32_t read_long() { return read_scalar<std::int32_t>(); }
    std::uint32_t read_ulong() { return read_scalar<std::uint32_t>(); }
    std::int64_t read_longlong() { return read_scalar<std::int64_t>(); }
    std::uint64_t read_ulonglong() { return read_scalar<std::uint64_t>(); }
    float read_float();
    double read_double();

    std::string read_string();

    /// Like read_string(), but a view into the underlying buffer (no
    /// allocation). Valid only while the buffer outlives the view.
    std::string_view read_string_view();

    /// Reads the length prefix, checks bounds, and returns a view into the
    /// underlying buffer (zero copy).
    std::pair<const std::uint8_t*, std::size_t> read_octet_seq_view();

    void read_raw(void* dst, std::size_t n);

private:
    template <typename T>
    T read_scalar() {
        if constexpr (sizeof(T) > 1) align(sizeof(T));
        require(sizeof(T));
        T v;
        std::memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        if constexpr (sizeof(T) > 1) {
            if (order_ != native_order()) v = detail::byteswap(v);
        }
        return v;
    }

    void require(std::size_t n) const {
        if (pos_ + n > size_) {
            throw MarshalError("CDR underflow: need " + std::to_string(n) +
                               " bytes at offset " + std::to_string(pos_) +
                               " of " + std::to_string(size_));
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    ByteOrder order_;
    std::size_t pos_ = 0;
};

} // namespace compadres::cdr
