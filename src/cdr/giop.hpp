// GIOP 1.0-style message framing over CDR.
//
// Both ORBs in this repository (the Compadres component ORB and the
// hand-coded RTZen-style baseline) speak this wire format, so the Fig. 11
// comparison measures framework overhead, never protocol differences.
// Relative to full GIOP 1.0 the service-context list is omitted (neither
// ORB under test used it on the benchmarked path).
#pragma once

#include "cdr/cdr.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace compadres::cdr {

enum class GiopMsgType : std::uint8_t {
    kRequest = 0,
    kReply = 1,
    kLocateRequest = 3,
    kLocateReply = 4,
    kCloseConnection = 5,
};

/// Values of the locate_status field (subset of CORBA's).
enum class LocateStatus : std::uint32_t {
    kUnknownObject = 0,
    kObjectHere = 1,
};

/// Values of the reply_status field (subset of CORBA's).
enum class ReplyStatus : std::uint32_t {
    kNoException = 0,
    kUserException = 1,
    kSystemException = 2,
};

struct GiopHeader {
    static constexpr std::size_t kSize = 12;
    static constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
    /// Offset of the flags octet within the header. GIOP 1.0 defines only
    /// bit 0 (byte order); this repository carries the frame's priority
    /// band in bits 4-6 (see frame_band/set_frame_band) and a trace-
    /// context-present flag in bit 3 (see append_trace_trailer) — the
    /// octet's reserved bits, which stock GIOP 1.0 requires to be zero, so
    /// a band-0 frame without a trace context stays byte-identical to a
    /// stock frame.
    static constexpr std::size_t kFlagsOffset = 6;
    static constexpr std::uint8_t kBandShift = 4;
    static constexpr std::uint8_t kBandMask = 0x07;
    /// Flags-octet bit 3: the last kTraceTrailerSize bytes of the body are
    /// a trace-context trailer (service-context stand-in; GIOP 1.0 has no
    /// context list on this path).
    static constexpr std::uint8_t kTraceFlag = 0x08;
    std::uint8_t version_major = 1;
    std::uint8_t version_minor = 0;
    ByteOrder byte_order = native_order();
    GiopMsgType msg_type = GiopMsgType::kRequest;
    std::uint8_t band = 0; ///< priority band carried in the flags octet
    bool has_trace_context = false; ///< flags bit 3 (trace trailer present)
    std::uint32_t message_size = 0; ///< body bytes following the header
};

/// Trace-context trailer: appended after the payload octet sequence,
/// counted inside message_size so frame assembly and trailer-unaware
/// decoders (which stop after the payload) are untouched. Fixed 16 bytes,
/// always little-endian regardless of the frame's byte-order bit:
/// u64 trace id, u32 span id, u32 reserved (zero).
inline constexpr std::size_t kTraceTrailerSize = 16;

/// Priority band (0-7) carried in a frame's flags octet. `frame` must be
/// at least GiopHeader::kSize bytes.
inline std::uint8_t frame_band(const std::uint8_t* frame) noexcept {
    return static_cast<std::uint8_t>(
        (frame[GiopHeader::kFlagsOffset] >> GiopHeader::kBandShift) &
        GiopHeader::kBandMask);
}

/// Stamp a priority band into an already-encoded frame's flags octet.
inline void set_frame_band(std::uint8_t* frame, std::uint8_t band) noexcept {
    frame[GiopHeader::kFlagsOffset] = static_cast<std::uint8_t>(
        (frame[GiopHeader::kFlagsOffset] &
         ~(GiopHeader::kBandMask << GiopHeader::kBandShift)) |
        ((band & GiopHeader::kBandMask) << GiopHeader::kBandShift));
}

/// Whether a frame's flags octet announces a trace-context trailer.
inline bool frame_has_trace_context(const std::uint8_t* frame) noexcept {
    return (frame[GiopHeader::kFlagsOffset] & GiopHeader::kTraceFlag) != 0;
}

/// Append a trace-context trailer to a frame already completed by
/// finish_payload(): writes the 16 trailer bytes, sets the flags-octet
/// trace bit, and re-patches message_size to cover the trailer. The
/// payload length field is untouched, so trailer-unaware decoders read
/// the frame exactly as before.
void append_trace_trailer(OutputStream& out, std::uint64_t trace_id,
                          std::uint32_t span_id);

/// Read the trace-context trailer off a complete frame. Returns false (and
/// leaves the outputs untouched) when the frame carries no trailer or is
/// too short to hold one.
bool read_trace_trailer(const std::uint8_t* frame, std::size_t size,
                        std::uint64_t& trace_id,
                        std::uint32_t& span_id) noexcept;

struct RequestHeader {
    std::uint32_t request_id = 0;
    bool response_expected = true;
    std::string object_key;
    std::string operation;
};

struct ReplyHeader {
    std::uint32_t request_id = 0;
    ReplyStatus status = ReplyStatus::kNoException;
};

/// Serialize a complete Request message: GIOP header + request header +
/// `payload` as an octet sequence. Returns the full frame.
std::vector<std::uint8_t> encode_request(const RequestHeader& req,
                                         const std::uint8_t* payload,
                                         std::size_t payload_len);

/// Serialize a complete Reply message.
std::vector<std::uint8_t> encode_reply(const ReplyHeader& rep,
                                       const std::uint8_t* payload,
                                       std::size_t payload_len);

/// Parse and validate the 12-byte GIOP header.
GiopHeader decode_header(const std::uint8_t* data, std::size_t size);

/// Decoded view of a request/reply body. `payload` points into the frame.
struct DecodedRequest {
    RequestHeader header;
    const std::uint8_t* payload = nullptr;
    std::size_t payload_len = 0;
};
struct DecodedReply {
    ReplyHeader header;
    const std::uint8_t* payload = nullptr;
    std::size_t payload_len = 0;
};

/// Decode a full frame (header + body). Throws MarshalError on any
/// malformation (bad magic, wrong type, truncated body, ...).
DecodedRequest decode_request(const std::uint8_t* frame, std::size_t size);
DecodedReply decode_reply(const std::uint8_t* frame, std::size_t size);

// ---- Allocation-free fast path ----
// View decode reads the request header without copying the key/operation
// strings out of the frame, and the begin/finish pair encodes a message
// body directly into the frame stream (no intermediate payload buffer).

/// Request header fields as views into the frame. Valid only while the
/// frame bytes stay alive and unmodified.
struct RequestHeaderView {
    std::uint32_t request_id = 0;
    bool response_expected = true;
    std::string_view object_key;
    std::string_view operation;
};

struct DecodedRequestView {
    RequestHeaderView header;
    ByteOrder byte_order = native_order(); ///< order the payload was encoded in
    const std::uint8_t* payload = nullptr;
    std::size_t payload_len = 0;
};

/// decode_request without the header-string copies.
DecodedRequestView decode_request_view(const std::uint8_t* frame,
                                       std::size_t size);

/// Write GIOP + request headers and open the payload octet-sequence.
/// Returns the offset of the payload length field. The caller encodes the
/// payload body directly into `out` — alignment is rebased to the payload
/// start, so the body's padding is identical to an encode into a separate
/// payload stream — then calls finish_payload().
std::size_t begin_request_payload(OutputStream& out, std::uint32_t request_id,
                                  bool response_expected,
                                  std::string_view object_key,
                                  std::string_view operation);

/// Same, for a Reply message.
std::size_t begin_reply_payload(OutputStream& out, std::uint32_t request_id,
                                ReplyStatus status);

/// Patch the payload length and GIOP message_size once the body is
/// in place. `payload_len_offset` is the value begin_*_payload returned.
void finish_payload(OutputStream& out, std::size_t payload_len_offset);

// ---- LocateRequest / LocateReply (GIOP 1.0 §15.4.5-6) ----
// Used to probe whether an object key is served here without invoking it.

struct LocateRequestHeader {
    std::uint32_t request_id = 0;
    std::string object_key;
};
struct LocateReplyHeader {
    std::uint32_t request_id = 0;
    LocateStatus status = LocateStatus::kUnknownObject;
};

std::vector<std::uint8_t> encode_locate_request(const LocateRequestHeader& req);
std::vector<std::uint8_t> encode_locate_reply(const LocateReplyHeader& rep);
LocateRequestHeader decode_locate_request(const std::uint8_t* frame,
                                          std::size_t size);
LocateReplyHeader decode_locate_reply(const std::uint8_t* frame,
                                      std::size_t size);

} // namespace compadres::cdr
