// LTScopedMemory — linear-time scoped memory with entry counting.
//
// Semantics reproduced from the RTSJ (paper §2.2, "RTSJ Memory Structure"):
//   * a scope's lifetime ends when no more threads execute in it; we count
//     "entries" (thread executions and wedge handles) and reclaim at zero;
//   * the single-parent rule: the first entry binds the parent; any attempt
//     to enter from a region whose scope stack would give the scope a
//     second parent throws ScopeViolation;
//   * reclaim runs finalizers and resets the arena so the scope (and its
//     backing memory) can be reused — this is what ScopePool exploits.
#pragma once

#include "memory/region.hpp"

#include <atomic>

namespace compadres::memory {

class LTScopedMemory final : public MemoryRegion {
public:
    explicit LTScopedMemory(std::size_t capacity,
                            std::string name = "scoped")
        : MemoryRegion(std::move(name), RegionKind::kScoped, capacity) {}

    /// Enter this scope from `from` (the region the entering thread is
    /// currently executing in). First entry binds `from` as the parent;
    /// subsequent entries must come from the same parent or from the scope
    /// itself (re-entry), else the single-parent rule is violated.
    void enter(MemoryRegion& from);

    /// Leave the scope. When the entry count drops to zero the scope is
    /// reclaimed: finalizers run, the arena resets, and the parent binding
    /// is cleared so the scope can be re-entered under a new parent.
    void exit();

    int entry_count() const noexcept { return entries_.load(); }

    /// Number of times this scope has been reclaimed — exposed so tests and
    /// the scope-pool ablation can observe reuse.
    std::uint64_t reclaim_count() const noexcept { return reclaims_.load(); }

private:
    std::atomic<int> entries_{0};
    std::atomic<std::uint64_t> reclaims_{0};
};

/// RAII scope entry (the wedge-thread pattern's effect without the thread):
/// holding a ScopeHandle keeps the scope alive exactly as the paper's
/// generated wedge threads keep child components alive between messages.
class ScopeHandle {
public:
    ScopeHandle() = default;
    ScopeHandle(LTScopedMemory& scope, MemoryRegion& from) : scope_(&scope) {
        scope.enter(from);
    }
    ScopeHandle(const ScopeHandle&) = delete;
    ScopeHandle& operator=(const ScopeHandle&) = delete;
    ScopeHandle(ScopeHandle&& o) noexcept : scope_(o.scope_) { o.scope_ = nullptr; }
    ScopeHandle& operator=(ScopeHandle&& o) noexcept {
        if (this != &o) {
            release();
            scope_ = o.scope_;
            o.scope_ = nullptr;
        }
        return *this;
    }
    ~ScopeHandle() { release(); }

    void release() {
        if (scope_ != nullptr) {
            scope_->exit();
            scope_ = nullptr;
        }
    }

    LTScopedMemory* scope() const noexcept { return scope_; }
    explicit operator bool() const noexcept { return scope_ != nullptr; }

private:
    LTScopedMemory* scope_ = nullptr;
};

} // namespace compadres::memory
