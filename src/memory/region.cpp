#include "memory/region.hpp"

#include <cstring>

namespace compadres::memory {

const char* to_string(RegionKind kind) noexcept {
    switch (kind) {
        case RegionKind::kHeap: return "heap";
        case RegionKind::kImmortal: return "immortal";
        case RegionKind::kScoped: return "scoped";
    }
    return "?";
}

MemoryRegion::MemoryRegion(std::string name, RegionKind kind, std::size_t capacity)
    : name_(std::move(name)), kind_(kind), capacity_(capacity),
      storage_(std::make_unique<std::byte[]>(capacity)) {
    // Touch the whole arena up front. This is what makes creation cost
    // linear in the region size — the defining property of the RTSJ
    // LTMemory the paper's components use — and it also pre-faults the
    // pages so allocation never takes a page fault on the hot path.
    std::memset(storage_.get(), 0, capacity_);
}

MemoryRegion::~MemoryRegion() {
    reset_arena();
}

void* MemoryRegion::allocate(std::size_t bytes, std::size_t align) {
    std::lock_guard lk(mu_);
    return allocate_locked(bytes, align);
}

void* MemoryRegion::allocate_locked(std::size_t bytes, std::size_t align) {
    // Align the actual address: the backing buffer itself is only
    // max_align_t-aligned, so aligning the offset alone is not enough for
    // over-aligned requests.
    const auto base = reinterpret_cast<std::uintptr_t>(storage_.get());
    const std::uintptr_t current = base + offset_;
    const std::uintptr_t target = (current + align - 1) & ~(align - 1);
    const std::size_t aligned = target - base;
    if (aligned + bytes > capacity_) {
        throw RegionExhausted("region '" + name_ + "' exhausted: need " +
                              std::to_string(bytes) + "B at offset " +
                              std::to_string(aligned) + " of " +
                              std::to_string(capacity_) + "B");
    }
    void* p = storage_.get() + aligned;
    offset_ = aligned + bytes;
    ++alloc_count_;
    return p;
}

void MemoryRegion::register_finalizer(void* obj, void (*fn)(void*)) {
    std::lock_guard lk(mu_);
    void* mem = allocate_locked(sizeof(FinalizerNode), alignof(FinalizerNode));
    auto* node = new (mem) FinalizerNode{fn, obj, finalizers_};
    finalizers_ = node;
}

std::size_t MemoryRegion::used() const noexcept {
    std::lock_guard lk(mu_);
    return offset_;
}

std::size_t MemoryRegion::allocation_count() const noexcept {
    std::lock_guard lk(mu_);
    return alloc_count_;
}

int MemoryRegion::depth() const noexcept {
    // Scope-stack depth: immortal/heap are level 0; a scoped region is one
    // deeper than its (scoped) parent chain.
    int d = 0;
    for (const MemoryRegion* r = this;
         r != nullptr && r->kind_ == RegionKind::kScoped; r = r->parent_) {
        ++d;
    }
    return d;
}

bool MemoryRegion::has_ancestor(const MemoryRegion* ancestor) const noexcept {
    for (const MemoryRegion* r = parent_; r != nullptr; r = r->parent()) {
        if (r == ancestor) return true;
    }
    return false;
}

void MemoryRegion::reset_arena() {
    FinalizerNode* pending = nullptr;
    {
        std::lock_guard lk(mu_);
        pending = finalizers_;
        finalizers_ = nullptr;
    }
    // LIFO finalization: objects die in reverse allocation order, matching
    // both C++ stack semantics and RTSJ scope teardown. Finalizers run
    // without the region lock held — destructors are free to take their own
    // locks (SMMs, dispatchers, pools) with no ordering against allocation.
    // The nodes live in the arena storage, which stays mapped until the
    // offsets are reset below.
    for (FinalizerNode* n = pending; n != nullptr; n = n->next) {
        n->fn(n->obj);
    }
    std::lock_guard lk(mu_);
    offset_ = 0;
    alloc_count_ = 0;
}

bool can_reference(const MemoryRegion& from, const MemoryRegion& to,
                   bool no_heap) noexcept {
    // A no-heap real-time thread may never hold heap references, not even
    // heap-to-heap, so this check precedes the same-region shortcut.
    if (to.kind() == RegionKind::kHeap) return !no_heap;
    if (&from == &to) return true;
    switch (to.kind()) {
        case RegionKind::kHeap:
            return !no_heap; // unreachable; kept for switch completeness
        case RegionKind::kImmortal:
            return true;
        case RegionKind::kScoped:
            // Legal only if `to` outlives `from`, i.e. `to` is a proper
            // ancestor of `from` on the scope stack.
            return from.has_ancestor(&to);
    }
    return false;
}

void assert_can_reference(const MemoryRegion& from, const MemoryRegion& to,
                          bool no_heap) {
    if (!can_reference(from, to, no_heap)) {
        throw ScopeViolation("illegal reference from region '" + from.name() +
                             "' (" + to_string(from.kind()) + ") into '" +
                             to.name() + "' (" + to_string(to.kind()) + ")");
    }
}

} // namespace compadres::memory
