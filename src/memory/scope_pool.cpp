#include "memory/scope_pool.hpp"

#include <algorithm>

namespace compadres::memory {

ScopePool::ScopePool(ImmortalMemory& immortal, int level,
                     std::size_t scope_size, std::size_t count)
    : level_(level), scope_size_(scope_size) {
    all_.reserve(count);
    free_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto* scope = immortal.make<LTScopedMemory>(
            scope_size, "pool-L" + std::to_string(level) + "-" + std::to_string(i));
        all_.push_back(scope);
        free_.push_back(scope);
    }
}

LTScopedMemory& ScopePool::acquire() {
    std::lock_guard lk(mu_);
    if (free_.empty()) {
        throw RegionExhausted("scope pool for level " + std::to_string(level_) +
                              " exhausted (" + std::to_string(all_.size()) +
                              " scopes all in use)");
    }
    LTScopedMemory* s = free_.back();
    free_.pop_back();
    return *s;
}

void ScopePool::release(LTScopedMemory& scope) {
    std::lock_guard lk(mu_);
    if (scope.entry_count() != 0) {
        throw ScopeViolation("releasing scope '" + scope.name() +
                             "' while still entered (" +
                             std::to_string(scope.entry_count()) + " entries)");
    }
    if (std::find(all_.begin(), all_.end(), &scope) == all_.end()) {
        throw ScopeViolation("scope '" + scope.name() +
                             "' does not belong to this pool");
    }
    if (std::find(free_.begin(), free_.end(), &scope) != free_.end()) {
        throw ScopeViolation("double release of scope '" + scope.name() + "'");
    }
    free_.push_back(&scope);
}

std::size_t ScopePool::available() const {
    std::lock_guard lk(mu_);
    return free_.size();
}

} // namespace compadres::memory
