#include "memory/vt_scoped.hpp"

#include <cstring>

namespace compadres::memory {

VTScopedMemory::VTScopedMemory(std::size_t capacity, std::string name)
    : name_(std::move(name)),
      capacity_(capacity < kHeaderSize + kMinPayload ? kHeaderSize + kMinPayload
                                                     : capacity),
      storage_(std::make_unique<std::byte[]>(capacity_)) {
    std::lock_guard lk(mu_);
    reset_locked();
}

void VTScopedMemory::reset_locked() {
    std::memset(storage_.get(), 0, capacity_);
    head_ = reinterpret_cast<BlockHeader*>(storage_.get());
    head_->size = capacity_ - kHeaderSize;
    head_->free = true;
    head_->next = nullptr;
    head_->prev = nullptr;
    head_->next_free = nullptr;
    head_->prev_free = nullptr;
    free_head_ = head_;
    used_ = 0;
}

void VTScopedMemory::push_free(BlockHeader* b) noexcept {
    b->next_free = free_head_;
    b->prev_free = nullptr;
    if (free_head_ != nullptr) free_head_->prev_free = b;
    free_head_ = b;
}

void VTScopedMemory::remove_free(BlockHeader* b) noexcept {
    if (b->prev_free != nullptr) {
        b->prev_free->next_free = b->next_free;
    } else {
        free_head_ = b->next_free;
    }
    if (b->next_free != nullptr) b->next_free->prev_free = b->prev_free;
    b->next_free = nullptr;
    b->prev_free = nullptr;
}

void* VTScopedMemory::allocate(std::size_t bytes, std::size_t align) {
    if (align > kAlign) {
        // Headers keep every payload max_align_t-aligned; over-alignment
        // would need padding bookkeeping this comparison substrate does
        // not carry.
        throw RegionExhausted("VT region '" + name_ +
                              "': over-aligned allocation unsupported");
    }
    if (bytes < kMinPayload) bytes = kMinPayload;
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);

    std::lock_guard lk(mu_);
    // First fit over the free list — time varies with its length, which is
    // exactly the VT behaviour under study.
    for (BlockHeader* b = free_head_; b != nullptr; b = b->next_free) {
        if (b->size < bytes) continue;
        remove_free(b);
        // Split when the remainder can hold another block.
        if (b->size >= bytes + kHeaderSize + kMinPayload) {
            auto* rest = reinterpret_cast<BlockHeader*>(payload_of(b) + bytes);
            rest->size = b->size - bytes - kHeaderSize;
            rest->free = true;
            rest->next = b->next;
            rest->prev = b;
            rest->next_free = nullptr;
            rest->prev_free = nullptr;
            if (rest->next != nullptr) rest->next->prev = rest;
            b->next = rest;
            b->size = bytes;
            push_free(rest);
        }
        b->free = false;
        used_ += b->size;
        return payload_of(b);
    }
    throw RegionExhausted("VT region '" + name_ + "' cannot fit " +
                          std::to_string(bytes) + "B (fragmented or full)");
}

void VTScopedMemory::free(void* p) {
    if (p == nullptr) return;
    std::lock_guard lk(mu_);
    BlockHeader* b = header_of(p);
    if (b->free) {
        throw ScopeViolation("double free in VT region '" + name_ + "'");
    }
    used_ -= b->size;
    b->free = true;
    // Coalesce with the next block (absorbing it into b).
    if (b->next != nullptr && b->next->free) {
        remove_free(b->next);
        b->size += kHeaderSize + b->next->size;
        b->next = b->next->next;
        if (b->next != nullptr) b->next->prev = b;
    }
    // Coalesce with the previous block (b dissolves into prev, which is
    // already on the free list).
    if (b->prev != nullptr && b->prev->free) {
        BlockHeader* prev = b->prev;
        prev->size += kHeaderSize + b->size;
        prev->next = b->next;
        if (prev->next != nullptr) prev->next->prev = prev;
        return;
    }
    push_free(b);
}

void VTScopedMemory::enter() { entries_.fetch_add(1); }

void VTScopedMemory::exit() {
    const int prev = entries_.fetch_sub(1);
    if (prev <= 0) {
        entries_.fetch_add(1);
        throw ScopeViolation("exit() without matching enter() on VT region '" +
                             name_ + "'");
    }
    if (prev == 1) {
        std::lock_guard lk(mu_);
        reset_locked();
    }
}

std::size_t VTScopedMemory::used() const {
    std::lock_guard lk(mu_);
    return used_;
}

std::size_t VTScopedMemory::free_block_count() const {
    std::lock_guard lk(mu_);
    std::size_t count = 0;
    for (BlockHeader* b = free_head_; b != nullptr; b = b->next_free) ++count;
    return count;
}

std::size_t VTScopedMemory::largest_free_block() const {
    std::lock_guard lk(mu_);
    std::size_t largest = 0;
    for (BlockHeader* b = free_head_; b != nullptr; b = b->next_free) {
        if (b->size > largest) largest = b->size;
    }
    return largest;
}

} // namespace compadres::memory
