#include "memory/scoped.hpp"

namespace compadres::memory {

void LTScopedMemory::enter(MemoryRegion& from) {
    std::lock_guard lk(mu_);
    if (&from == this) {
        // Re-entry from code already running in this scope.
        entries_.fetch_add(1);
        return;
    }
    if (entries_.load() == 0) {
        // First entry binds the parent (scope joins the scope stack here).
        set_parent(&from);
    } else if (parent() != &from) {
        throw ScopeViolation(
            "single-parent rule violated: scope '" + name() +
            "' already has parent '" +
            (parent() != nullptr ? parent()->name() : std::string("<none>")) +
            "', cannot be entered from '" + from.name() + "'");
    }
    entries_.fetch_add(1);
}

void LTScopedMemory::exit() {
    bool reclaim = false;
    {
        std::lock_guard lk(mu_);
        const int prev = entries_.fetch_sub(1);
        if (prev <= 0) {
            entries_.fetch_add(1);
            throw ScopeViolation("exit() without matching enter() on scope '" +
                                 name() + "'");
        }
        if (prev == 1) {
            set_parent(nullptr);
            reclaim = true;
            reclaims_.fetch_add(1);
        }
    }
    if (reclaim) {
        // Finalize outside mu_ — finalizers may allocate/deallocate in other
        // regions but must not touch this scope again.
        reset_arena();
    }
}

} // namespace compadres::memory
