// VTScopedMemory — variable-time scoped memory.
//
// RTSJ offers two scoped-memory flavours: LTMemory (linear-time creation,
// allocation in predictable time) and VTMemory (allocation may take
// variable time). The paper's model "only uses linear-time or
// LTScopedMemory, which is allocated in a time proportional to its size
// and therefore predictable" (§2.2). This class implements the road not
// taken — a first-fit free-list allocator with per-object free() and
// coalescing — so that design choice can be *measured* instead of
// asserted: bench/ablation_ltmemory compares allocation-time
// predictability of the two allocators under fragmentation, and the unit
// tests pin the allocator's correctness.
//
// Compadres components never live in VT memory (matching the paper);
// this is a comparison substrate, so it carries only the entry-counting
// lifecycle, not the full scope-stack integration.
#pragma once

#include "memory/region.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

namespace compadres::memory {

class VTScopedMemory {
public:
    explicit VTScopedMemory(std::size_t capacity,
                            std::string name = "vt-scoped");

    VTScopedMemory(const VTScopedMemory&) = delete;
    VTScopedMemory& operator=(const VTScopedMemory&) = delete;

    /// First-fit allocation from the free list. O(number of free blocks) —
    /// the "variable time" that makes VTMemory unsuitable where the paper
    /// needs predictability. Throws RegionExhausted when no block fits
    /// (which, unlike the bump allocator, can happen from fragmentation
    /// even when enough total bytes are free).
    void* allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t));

    /// Return a block to the free list, coalescing with address-adjacent
    /// free neighbours.
    void free(void* p);

    /// Entry counting with LTScopedMemory-like semantics: the last exit
    /// resets the whole arena (bulk reclaim).
    void enter();
    void exit();
    int entry_count() const noexcept { return entries_.load(); }

    const std::string& name() const noexcept { return name_; }
    std::size_t capacity() const noexcept { return capacity_; }
    /// Bytes currently handed out (payload only, headers excluded).
    std::size_t used() const;

    /// Free-list introspection for tests and the ablation bench.
    std::size_t free_block_count() const;
    std::size_t largest_free_block() const;

private:
    // Header preceding every block (allocated or free). Blocks form an
    // address-ordered doubly linked list covering the whole arena (for
    // coalescing); free blocks are additionally threaded through a
    // doubly-linked free list so allocation walks only free blocks.
    struct BlockHeader {
        std::size_t size; ///< payload bytes following the header
        bool free;
        BlockHeader* next;      ///< address order
        BlockHeader* prev;      ///< address order
        BlockHeader* next_free; ///< free list
        BlockHeader* prev_free; ///< free list
    };

    static constexpr std::size_t kAlign = alignof(std::max_align_t);
    static constexpr std::size_t kHeaderSize =
        (sizeof(BlockHeader) + kAlign - 1) & ~(kAlign - 1);
    static constexpr std::size_t kMinPayload = kAlign;

    void reset_locked();
    void push_free(BlockHeader* b) noexcept;
    void remove_free(BlockHeader* b) noexcept;
    static std::byte* payload_of(BlockHeader* b) noexcept {
        return reinterpret_cast<std::byte*>(b) + kHeaderSize;
    }
    static BlockHeader* header_of(void* payload) noexcept {
        return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(payload) -
                                              kHeaderSize);
    }

    std::string name_;
    std::size_t capacity_;
    std::unique_ptr<std::byte[]> storage_;
    BlockHeader* head_ = nullptr;      ///< first block by address
    BlockHeader* free_head_ = nullptr; ///< free-list head
    std::size_t used_ = 0;
    mutable std::mutex mu_;
    std::atomic<int> entries_{0};
};

} // namespace compadres::memory
