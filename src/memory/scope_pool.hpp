// ScopePool — pre-created scoped memory regions, reused at runtime.
//
// Paper §2.2: "Further optimization of component instantiation can be
// achieved by creating pools of scoped memory areas in immortal memory and
// reusing these areas at runtime. The size and number of scopes in the pools
// can be assigned in the CCL file under the RTSJAttributes tag."
//
// A ScopePool owns `count` LTScopedMemory areas of `scope_size` bytes for a
// given scope level. The pool's bookkeeping (the LTScopedMemory control
// objects) is allocated inside the immortal region, mirroring the paper.
#pragma once

#include "memory/immortal.hpp"
#include "memory/scoped.hpp"

#include <cstddef>
#include <mutex>
#include <vector>

namespace compadres::memory {

class ScopePool {
public:
    /// Creates `count` scoped areas of `scope_size` bytes each. Control
    /// blocks live in `immortal`; backing arenas are created eagerly so the
    /// linear-time creation cost is paid at startup, never on the hot path.
    ScopePool(ImmortalMemory& immortal, int level, std::size_t scope_size,
              std::size_t count);

    ScopePool(const ScopePool&) = delete;
    ScopePool& operator=(const ScopePool&) = delete;

    /// Take a free scope from the pool. Throws RegionExhausted if none is
    /// available — CCL misconfiguration, as in the paper.
    LTScopedMemory& acquire();

    /// Return a scope. The scope must have been fully exited (entry count
    /// zero, i.e. already reclaimed); returning a live scope throws.
    void release(LTScopedMemory& scope);

    int level() const noexcept { return level_; }
    std::size_t scope_size() const noexcept { return scope_size_; }
    std::size_t total() const noexcept { return all_.size(); }
    std::size_t available() const;

private:
    int level_;
    std::size_t scope_size_;
    std::vector<LTScopedMemory*> all_;   // non-owning; objects live in immortal
    std::vector<LTScopedMemory*> free_;
    mutable std::mutex mu_;
};

} // namespace compadres::memory
