// ImmortalMemory — fixed-size arena whose lifetime equals the process.
//
// RTSJ immortal memory is never garbage collected; objects allocated there
// persist until the VM exits. The CCL <ImmortalSize> attribute sizes it.
#pragma once

#include "memory/region.hpp"

namespace compadres::memory {

class ImmortalMemory final : public MemoryRegion {
public:
    explicit ImmortalMemory(std::size_t capacity,
                            std::string name = "immortal")
        : MemoryRegion(std::move(name), RegionKind::kImmortal, capacity) {}
};

/// A modelled garbage-collected heap region. Components never live here
/// (the paper supports only scoped and immortal components); it exists so
/// the Table-1 access-rule matrix — which includes heap rows/columns — can
/// be represented and tested, and so the simulated JDK 1.4 platform has a
/// region for its GC-managed allocations.
class HeapMemory final : public MemoryRegion {
public:
    explicit HeapMemory(std::size_t capacity, std::string name = "heap")
        : MemoryRegion(std::move(name), RegionKind::kHeap, capacity) {}

    /// The JDK-profile simulation "collects" by resetting the arena once
    /// no application objects are live (our benches only allocate
    /// transient messages there).
    void collect() { reset_arena(); }
};

} // namespace compadres::memory
