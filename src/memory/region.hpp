// RTSJ-style memory regions.
//
// The RTSJ defines three region kinds — heap (garbage collected), immortal
// (lives until VM shutdown) and scoped (reclaimed when the last thread
// leaves). Compadres components are each placed in an immortal or scoped
// region (paper §2.2). This module reproduces those regions as bump-pointer
// arenas with the same observable semantics:
//
//   * allocation is O(1) (LT-scoped memory is "linear time" in the RTSJ
//     sense: creation cost proportional to size, allocation predictable);
//   * scoped regions are reclaimed in bulk when their entry count drops to
//     zero, running finalizers (C++ destructors) in reverse allocation order;
//   * immortal regions never free until the process ends.
//
// Cross-region reference legality (the paper's Table 1) is checked by
// ScopeGraph at assembly time and, in debug builds, by assert_can_reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace compadres::memory {

enum class RegionKind : std::uint8_t {
    kHeap,      ///< garbage-collected heap (modelled, not used by components)
    kImmortal,  ///< lives until process teardown
    kScoped,    ///< LT scoped memory, reclaimed on last exit
};

const char* to_string(RegionKind kind) noexcept;

/// Thrown when a region runs out of backing store. The paper's CCL fixes
/// region sizes up front (<ImmortalSize>, <ScopeSize>); exhaustion is a
/// configuration error, not something to handle at allocation sites.
class RegionExhausted : public std::bad_alloc {
public:
    explicit RegionExhausted(std::string what) : what_(std::move(what)) {}
    const char* what() const noexcept override { return what_.c_str(); }

private:
    std::string what_;
};

/// Thrown on violations of the RTSJ scoping rules (single-parent rule,
/// illegal cross-scope reference, re-entering a reclaimed scope, ...).
class ScopeViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// A bump-pointer arena with finalizer support.
///
/// Finalizer records are themselves allocated from the arena (an intrusive
/// LIFO list), so registering a destructor costs O(1) region bytes and no
/// process-heap traffic — allocation stays predictable.
class MemoryRegion {
public:
    MemoryRegion(std::string name, RegionKind kind, std::size_t capacity);
    virtual ~MemoryRegion();

    MemoryRegion(const MemoryRegion&) = delete;
    MemoryRegion& operator=(const MemoryRegion&) = delete;

    /// Raw allocation. O(1); throws RegionExhausted when the arena is full.
    void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

    /// Construct a T inside the region. Registers the destructor as a
    /// finalizer when T is not trivially destructible.
    template <typename T, typename... Args>
    T* make(Args&&... args) {
        void* mem = allocate(sizeof(T), alignof(T));
        T* obj = new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            register_finalizer(obj, [](void* p) { static_cast<T*>(p)->~T(); });
        }
        return obj;
    }

    /// Register an explicit finalizer; runs (LIFO) when the region is
    /// reclaimed or destroyed.
    void register_finalizer(void* obj, void (*fn)(void*));

    const std::string& name() const noexcept { return name_; }
    RegionKind kind() const noexcept { return kind_; }
    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t used() const noexcept;
    std::size_t allocation_count() const noexcept;

    /// Parent region in the scope stack; nullptr for immortal/heap and for
    /// scoped regions that have not been entered yet.
    MemoryRegion* parent() const noexcept { return parent_; }

    /// Nesting depth: 0 for immortal/heap, parent depth + 1 for scopes.
    int depth() const noexcept;

    /// True if `ancestor` is reachable by following parent links (a region
    /// is not its own ancestor).
    bool has_ancestor(const MemoryRegion* ancestor) const noexcept;

protected:
    /// Run finalizers LIFO and reset the bump pointer. Used by scoped
    /// regions on reclaim and by destructors.
    void reset_arena();

    void set_parent(MemoryRegion* p) noexcept { parent_ = p; }

    mutable std::mutex mu_;

private:
    struct FinalizerNode {
        void (*fn)(void*);
        void* obj;
        FinalizerNode* next;
    };

    std::string name_;
    RegionKind kind_;
    std::size_t capacity_;
    std::unique_ptr<std::byte[]> storage_;
    std::size_t offset_ = 0;
    std::size_t alloc_count_ = 0;
    FinalizerNode* finalizers_ = nullptr;
    MemoryRegion* parent_ = nullptr;

    void* allocate_locked(std::size_t bytes, std::size_t align);
};

/// The paper's Table 1: a reference stored in `from` may point into `to`
/// iff `to`'s lifetime is at least as long — i.e. same region, heap,
/// immortal, or a proper ancestor scope of `from`. When `no_heap` is set
/// (RTSJ NoHeapRealtimeThread semantics), references into the heap are
/// additionally forbidden.
bool can_reference(const MemoryRegion& from, const MemoryRegion& to,
                   bool no_heap = false) noexcept;

/// Debug-build guard for cross-region stores; throws ScopeViolation when
/// the reference would be illegal under RTSJ rules.
void assert_can_reference(const MemoryRegion& from, const MemoryRegion& to,
                          bool no_heap = false);

} // namespace compadres::memory
