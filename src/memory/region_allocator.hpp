// Standard-library allocator adaptor over a MemoryRegion.
//
// Lets components use std::vector/std::string/etc. whose storage lives in
// their own region — the C++ analogue of "the user may allocate objects
// using new ... without having to determine which RTSJ memory region to
// use" (paper §2.1). Deallocation is a no-op: bump arenas reclaim in bulk.
#pragma once

#include "memory/region.hpp"

#include <cstddef>

namespace compadres::memory {

template <typename T>
class RegionAllocator {
public:
    using value_type = T;

    explicit RegionAllocator(MemoryRegion& region) noexcept : region_(&region) {}

    template <typename U>
    RegionAllocator(const RegionAllocator<U>& other) noexcept
        : region_(other.region_) {}

    T* allocate(std::size_t n) {
        return static_cast<T*>(region_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T*, std::size_t) noexcept {
        // Bulk reclaim only — individual frees are no-ops in a bump arena.
    }

    MemoryRegion& region() const noexcept { return *region_; }

    template <typename U>
    bool operator==(const RegionAllocator<U>& o) const noexcept {
        return region_ == o.region_;
    }

private:
    template <typename U> friend class RegionAllocator;
    MemoryRegion* region_;
};

} // namespace compadres::memory
