// Simulated execution platforms for the Table 2 / Fig. 9 experiment.
//
// The paper measured its co-located client/server example on three
// platforms it had in the lab in 2007:
//   1. TimeSys RTSJ RI on TimeSys RT-Linux   — RT VM on an RT OS,
//   2. Sun Mackinac on SunOS 5.10            — RT VM on a *non*-RT OS,
//   3. Sun JDK 1.4 (default GC) on Linux     — non-RT VM with a GC.
//
// None of those VMs can run here, so we reproduce the *causal mechanisms*
// that produced their jitter profiles (see DESIGN.md §2):
//   * TimesysRI  — quiet: no injected noise, message pooling on.
//   * Mackinac   — RT allocation behaviour, plus low-rate "system thread"
//     preemption slices injected at dispatch points (a non-RT OS lets
//     system threads preempt the application; paper §3.1 attributes
//     Mackinac's larger jitter to exactly this).
//   * Jdk14      — message pooling charged as fresh heap allocation, and a
//     stop-the-world pause injected once allocation volume crosses a
//     threshold (a young-gen collection preempting the application).
//
// The injectors are deterministic given a seed, so benches are repeatable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace compadres::simenv {

enum class Platform { kTimesysRI, kMackinac, kJdk14, kRtgc };

const char* to_string(Platform p) noexcept;

/// Tunable description of one simulated platform.
struct PlatformProfile {
    std::string name;
    /// False = every message acquisition is charged to the GC accountant
    /// as a fresh allocation (plain-Java behaviour).
    bool pooled_messages = true;
    /// GC: a stop-the-world pause fires when this many bytes have been
    /// "allocated" since the last pause. 0 disables the collector.
    std::int64_t gc_threshold_bytes = 0;
    std::int64_t gc_pause_min_ns = 0;
    std::int64_t gc_pause_max_ns = 0;
    /// OS noise: probability per dispatch point that a system thread
    /// preempts the application for a slice in [min, max] ns.
    double os_noise_probability = 0.0;
    std::int64_t os_noise_min_ns = 0;
    std::int64_t os_noise_max_ns = 0;
    /// Garbage generated per message hop on a non-RTSJ VM (envelopes,
    /// boxed arguments, stack-escaped temporaries). Charged to the GC
    /// accountant from on_dispatch(); 0 for pooled/RTSJ platforms.
    std::int64_t alloc_bytes_per_dispatch = 0;

    static PlatformProfile timesys_ri();
    static PlatformProfile mackinac();
    static PlatformProfile jdk14();
    /// A real-time garbage collector (Metronome-style, Bacon et al. —
    /// paper §1's alternative to the RTSJ): collection work is chopped
    /// into frequent, small, bounded increments. Latency inflates by a
    /// bounded "minimum latency and large execution overhead" instead of
    /// the rare long pauses of a stop-the-world collector.
    static PlatformProfile rtgc();
    static PlatformProfile for_platform(Platform p);
};

/// Runtime state of a simulated platform: deterministic RNG + GC accountant.
/// Hook methods are called from the middleware's allocation and dispatch
/// points (wired through core::hooks by the benches).
class PlatformRuntime {
public:
    explicit PlatformRuntime(PlatformProfile profile, std::uint64_t seed = 42);

    /// Allocation hook: charge `bytes` to the collector; possibly pause
    /// (stop-the-world) right here, exactly where a JVM would.
    void on_allocate(std::size_t bytes);

    /// Dispatch hook: a message hop — the window where a non-RT OS may
    /// schedule a system thread over us.
    void on_dispatch();

    const PlatformProfile& profile() const noexcept { return profile_; }
    std::int64_t gc_pause_count() const noexcept { return gc_pauses_.load(); }
    std::int64_t noise_event_count() const noexcept { return noise_events_.load(); }

private:
    PlatformProfile profile_;
    std::atomic<std::uint64_t> rng_state_;
    std::atomic<std::int64_t> allocated_since_gc_{0};
    std::atomic<std::int64_t> gc_pauses_{0};
    std::atomic<std::int64_t> noise_events_{0};

    std::uint64_t next_random() noexcept;
    /// Uniform in [lo, hi].
    std::int64_t random_in(std::int64_t lo, std::int64_t hi) noexcept;
};

} // namespace compadres::simenv
