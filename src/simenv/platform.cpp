#include "simenv/platform.hpp"

#include "rt/clock.hpp"

namespace compadres::simenv {

const char* to_string(Platform p) noexcept {
    switch (p) {
        case Platform::kTimesysRI: return "TimesysRI";
        case Platform::kMackinac: return "Mackinac";
        case Platform::kJdk14: return "JDK1.4";
        case Platform::kRtgc: return "RTGC";
    }
    return "?";
}

PlatformProfile PlatformProfile::timesys_ri() {
    PlatformProfile p;
    p.name = "TimesysRI";
    // RT VM on an RT OS: pooled allocation, no collector, no OS noise.
    return p;
}

PlatformProfile PlatformProfile::mackinac() {
    PlatformProfile p;
    p.name = "Mackinac";
    p.pooled_messages = true;
    // Non-RT OS under an RT VM: occasional system-thread preemption slices.
    // The paper measured 92 us jitter vs 55 us on TimeSys RI. This harness
    // itself runs on a non-RT host whose scheduler contributes hundreds of
    // microseconds of background jitter to EVERY platform, so the injected
    // slices are scaled up (0.8-2 ms at ~2% of hops) to keep the paper's
    // ordering — Mackinac > TimeSys — observable above that noise floor.
    // The medians stay untouched either way, exactly as in the paper.
    p.os_noise_probability = 0.02;
    p.os_noise_min_ns = 800'000;
    p.os_noise_max_ns = 2'000'000;
    return p;
}

PlatformProfile PlatformProfile::jdk14() {
    PlatformProfile p;
    p.name = "JDK1.4";
    // Plain Java: every message is a fresh heap allocation and the default
    // (non-incremental, stop-the-world) collector preempts the application.
    // JDK 1.4 young-gen pauses on ~2000-era hardware were hundreds of us to
    // milliseconds; the paper's Fig. 9 shows maxima in the hundreds of us
    // over 10k samples on an 865 MHz PIII.
    p.pooled_messages = false;
    p.gc_threshold_bytes = 256 * 1024;
    // Stop-the-world young-gen pauses, scaled (like the Mackinac slices)
    // to dominate the non-RT host's own scheduler noise: JDK jitter must
    // sit clearly above both RT platforms, as in the paper's Fig. 9.
    p.gc_pause_min_ns = 3'000'000;
    p.gc_pause_max_ns = 8'000'000;
    // Each message hop on plain Java allocates envelopes and temporaries
    // that the collector must eventually reclaim.
    p.alloc_bytes_per_dispatch = 2048;
    return p;
}

PlatformProfile PlatformProfile::rtgc() {
    PlatformProfile p;
    p.name = "RTGC";
    // Metronome-style incremental collection: messages are fresh heap
    // allocations (no pools needed — the point of an RTGC), and the
    // collector runs in small, bounded, FREQUENT increments. The same
    // total collection work as JDK1.4 is spread out: low threshold, short
    // pauses. Result: bounded jitter (no long tail) but a visible uplift
    // on many samples — "an inherent minimum latency and large execution
    // overhead" (paper §1).
    p.pooled_messages = false;
    p.gc_threshold_bytes = 16 * 1024;
    p.gc_pause_min_ns = 150'000;
    p.gc_pause_max_ns = 400'000;
    p.alloc_bytes_per_dispatch = 2048;
    return p;
}

PlatformProfile PlatformProfile::for_platform(Platform p) {
    switch (p) {
        case Platform::kTimesysRI: return timesys_ri();
        case Platform::kMackinac: return mackinac();
        case Platform::kJdk14: return jdk14();
        case Platform::kRtgc: return rtgc();
    }
    return timesys_ri();
}

PlatformRuntime::PlatformRuntime(PlatformProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_state_(seed ? seed : 1) {}

std::uint64_t PlatformRuntime::next_random() noexcept {
    // xorshift64*: race-tolerant (atomic load/store, occasional lost update
    // is harmless for noise injection) and deterministic single-threaded.
    std::uint64_t x = rng_state_.load(std::memory_order_relaxed);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state_.store(x, std::memory_order_relaxed);
    return x * 0x2545F4914F6CDD1DULL;
}

std::int64_t PlatformRuntime::random_in(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<std::int64_t>(next_random() % span);
}

void PlatformRuntime::on_allocate(std::size_t bytes) {
    if (profile_.gc_threshold_bytes <= 0) return;
    const auto total = allocated_since_gc_.fetch_add(
                           static_cast<std::int64_t>(bytes)) +
                       static_cast<std::int64_t>(bytes);
    if (total >= profile_.gc_threshold_bytes) {
        allocated_since_gc_.store(0);
        gc_pauses_.fetch_add(1);
        rt::busy_wait_ns(random_in(profile_.gc_pause_min_ns,
                                   profile_.gc_pause_max_ns));
    }
}

void PlatformRuntime::on_dispatch() {
    if (profile_.alloc_bytes_per_dispatch > 0) {
        on_allocate(static_cast<std::size_t>(profile_.alloc_bytes_per_dispatch));
    }
    if (profile_.os_noise_probability <= 0.0) return;
    const double u = static_cast<double>(next_random() >> 11) *
                     (1.0 / 9007199254740992.0); // 2^53
    if (u < profile_.os_noise_probability) {
        noise_events_.fetch_add(1);
        rt::busy_wait_ns(random_in(profile_.os_noise_min_ns,
                                   profile_.os_noise_max_ns));
    }
}

} // namespace compadres::simenv
