// Flight recorder — per-thread lock-free rings of fixed-size binary events.
//
// Every hot-path subsystem drops 32-byte events here: hop lifecycle
// (enqueue / dequeue / handler bracket), wire traffic (frame send/recv,
// coalesced flushes, writer park/resume), lane failovers, credit stalls,
// and trace-context spans crossing the wire. The write path is a single
// relaxed flag load when disabled, and when enabled it is one thread-local
// pointer read, a TSC read, and four relaxed atomic stores into the
// calling thread's own ring — no locks, no allocation, no cross-thread
// cache traffic (the only allocation is the ring itself, once per thread
// on its first event, which a deployment absorbs during warm-up). Rings
// store raw tick counts; dumps convert to nanoseconds with a rate
// calibrated over the run, so consumers always see ns.
//
// Hop-lifecycle events (enqueue / dequeue / handler brackets) are
// span-scoped: they fire only for envelopes carrying a sampled trace
// context, so their steady-state cost scales with the <SampleShift>
// sampling rate rather than the message rate (shift 0 records every hop).
// Wire, stall, and failover events are always-on — they are the black box.
//
// Rings are registered in a fixed lock-free table so a dump — on demand,
// at shutdown, or from a fatal-signal handler (install_fatal_dump) — can
// walk them without taking any lock. Each ring keeps the newest `depth`
// events per thread; older ones are overwritten, which is exactly the
// black-box semantics the name promises. Slot words are relaxed atomics,
// so a dump racing a writer is data-race-free; the worst outcome is one
// event decoded from the newer generation at the wrap point.
//
// `tools/compadres-trace` (and chrome_trace_json below) turn a binary dump
// into Chrome trace-event JSON loadable in Perfetto.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace compadres::obs {

enum class EventType : std::uint16_t {
    kNone = 0,
    kHopEnqueue = 1,      ///< a = In-port pointer, b = priority (span-scoped)
    kHopDequeue = 2,      ///< a = In-port pointer, b = priority (span-scoped)
    kHopHandlerStart = 3, ///< a = trace id, b = span id (span-scoped)
    kHopHandlerEnd = 4,   ///< a = trace id, b = span id (span-scoped)
    kFrameSend = 5,       ///< a = frame bytes, b = priority band
    kFrameRecv = 6,       ///< a = frame bytes (0 if unknown), b = band
    kCoalesceFlush = 7,   ///< a = frames in the flushed batch
    kWriterPark = 8,      ///< a = frames parked on EAGAIN
    kWriterResume = 9,    ///< a = frames resumed
    kLaneFailover = 10,   ///< a = lane index
    kCreditStall = 11,    ///< a = In-port pointer
    kSpanSend = 12,       ///< a = trace id, b = span id (wire trailer out)
    kSpanRecv = 13,       ///< a = trace id, b = span id (wire trailer in)
    kRecomposeBegin = 14, ///< a = plan operation count
    kRecomposeApply = 15, ///< a = quiesce->resume pause ns, b = route index
    kRecomposeAbort = 16, ///< a = operations applied before the failure
    kShmWakeup = 17,      ///< a = frame bytes, b = 0 data-wake / 1 space-wake
    kShmFailover = 18,    ///< a = 0 peer-bye / 1 local-abandon / 2 peer-death
};

/// Stable short name ("hop-enqueue", "span-send", ...) for decoders.
const char* event_name(EventType type) noexcept;

/// Decoded event. The on-wire/in-ring layout is four little-endian 64-bit
/// words: {ts_ns, a, (b << 32) | tid, type}.
struct Event {
    std::int64_t ts_ns = 0;
    std::uint64_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t tid = 0;
    EventType type = EventType::kNone;
};

namespace fr_detail {

inline constexpr std::size_t kWordsPerEvent = 4;

/// One thread's ring. Single writer (the owning thread); any reader. The
/// slot words are relaxed atomics so concurrent dumps are race-free.
struct Ring {
    Ring(std::size_t depth_pow2, std::uint32_t thread_id);
    const std::size_t mask;
    const std::uint32_t tid;
    std::atomic<std::uint64_t> head{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
};

inline std::atomic<bool> g_enabled{false};

/// The calling thread's ring, registering it on first use. Returns nullptr
/// when the process-wide ring table is full (events are then dropped).
Ring* tls_ring() noexcept;

} // namespace fr_detail

class FlightRecorder {
public:
    /// Turn recording on. `ring_depth` (rounded up to a power of two)
    /// applies to rings created after this call; existing rings keep their
    /// depth. Idempotent.
    static void enable(std::size_t ring_depth = 4096) noexcept;
    static void disable() noexcept;
    static bool enabled() noexcept {
        return fr_detail::g_enabled.load(std::memory_order_relaxed);
    }

    /// Record one event on the calling thread's ring. The disabled path is
    /// one relaxed load and a not-taken branch.
    static void emit(EventType type, std::uint64_t a = 0,
                     std::uint32_t b = 0) noexcept {
        if (!enabled()) return;
        emit_always(type, a, b);
    }

    /// emit() without the enabled check (for sites that hoisted it).
    static void emit_always(EventType type, std::uint64_t a,
                            std::uint32_t b) noexcept;

    /// Serialize every ring (binary format: "CFR1" magic, then per ring a
    /// {tid, count} header and count 32-byte events, oldest first).
    /// Returns the number of events written.
    static std::size_t dump(std::ostream& out);
    static bool dump_file(const std::string& path);

    /// Rewind all rings (bench/test reuse). Not safe against concurrent
    /// emits — quiesce traffic first.
    static void clear() noexcept;

    /// Number of per-thread rings registered so far.
    static std::size_t ring_count() noexcept;
    /// Events dropped because the ring table was full.
    static std::uint64_t dropped() noexcept;

    /// Arrange for a binary dump to `path` on SIGSEGV/SIGBUS/SIGABRT. The
    /// handler is async-signal-safe (open/write/close on pre-stored state)
    /// and re-raises the signal after dumping.
    static void install_fatal_dump(const char* path) noexcept;
};

// ---- decoding (shared by tools/compadres-trace, benches, and tests) ----

/// Parse a binary dump produced by FlightRecorder::dump. Throws
/// std::runtime_error on malformed input.
std::vector<Event> decode_events(const std::uint8_t* data, std::size_t size);
std::vector<Event> decode_events_file(const std::string& path);

/// Render events as Chrome trace-event JSON (Perfetto-loadable): handler
/// brackets become duration ("B"/"E") slices, everything else instant
/// events, with trace/span ids in args for cross-process correlation.
std::string chrome_trace_json(const std::vector<Event>& events);

} // namespace compadres::obs
