// Trace-context propagation — the id half of the observability plane.
//
// A trace context is a 64-bit trace id plus a 32-bit span id. The trace id
// is minted once, at the first sampled send of a flow, and then rides every
// hop of that flow — across dispatcher queues inside a process (stamped
// into the Envelope) and across the wire between processes (a GIOP
// trailer, see cdr/giop.hpp append_trace_trailer) — so one sensor→actuator
// path renders as a single spanning trace in the flight-recorder timeline.
// The span id distinguishes the individual hops of one trace.
//
// Cost discipline mirrors core/hooks.hpp: Tracer::active() is one relaxed
// atomic load, and every instrumentation site checks it (or an Envelope
// field) before touching thread-local state, so a build with tracing off
// pays a predictable not-taken branch per site and nothing else. No code
// in this header allocates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace compadres::obs {

struct TraceContext {
    std::uint64_t trace_id = 0; ///< 0 = no context
    std::uint32_t span_id = 0;
    explicit operator bool() const noexcept { return trace_id != 0; }
};

/// CCL <Trace> block (parse→validate→plan→emit→compadresc). apply() turns
/// the declarative knobs into Tracer / FlightRecorder configuration; a
/// default-constructed config is a no-op, so applications without a
/// <Trace> block never disturb process-global observability state.
struct TraceConfig {
    /// <Trace> present: wire trace-context propagation is on.
    bool enabled = false;
    /// <SampleShift>: sample 1 in 2^shift sends that carry no inherited
    /// context. 0 traces every flow.
    unsigned sample_shift = 10;
    /// <Recorder>: the flight recorder (obs/flight_recorder.hpp).
    bool recorder = false;
    /// <RingDepth>: per-thread flight-recorder ring depth (events; rounded
    /// up to a power of two).
    std::size_t ring_depth = 4096;
};
void apply(const TraceConfig& config);

namespace trace_detail {
/// Sampling shift; < 0 means tracing is off. One relaxed load on the hot
/// path, exactly like hooks::detail::g_sink.
inline std::atomic<int> g_sample_shift{-1};
} // namespace trace_detail

class Tracer {
public:
    /// Enable with a sampling shift (0 = every flow, n = 1 in 2^n), or
    /// disable with a negative shift. Safe to call at any time; sites
    /// observe the change at their next relaxed load.
    static void configure(int sample_shift) noexcept;

    static bool active() noexcept {
        return trace_detail::g_sample_shift.load(std::memory_order_relaxed) >=
               0;
    }

    /// The calling thread's current context ({0,0} when none).
    static TraceContext current() noexcept;
    static void set_current(TraceContext ctx) noexcept;
    static void clear_current() noexcept;

    /// Decide the context an outbound wire message carries. An active
    /// current context continues (same trace id, fresh span); with no
    /// context the sampler decides whether this send starts a new trace.
    /// Returns {0,0} when the send goes out untraced.
    static TraceContext on_send() noexcept;

    /// Fresh span id for the calling thread (never 0).
    static std::uint32_t next_span() noexcept;
};

/// RAII installer: sets the thread's context for the scope of a delivery
/// (a decoded wire frame, a dispatched envelope) and restores the previous
/// one on exit. An empty context installs nothing, so untraced traffic
/// never touches thread-local state.
class ScopedTraceContext {
public:
    explicit ScopedTraceContext(TraceContext ctx) noexcept {
        if (ctx) {
            prev_ = Tracer::current();
            installed_ = true;
            Tracer::set_current(ctx);
        }
    }
    ~ScopedTraceContext() {
        if (installed_) Tracer::set_current(prev_);
    }
    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

private:
    TraceContext prev_;
    bool installed_ = false;
};

} // namespace compadres::obs
