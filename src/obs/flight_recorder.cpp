#include "obs/flight_recorder.hpp"

#include "rt/clock.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace compadres::obs {

namespace fr_detail {

namespace {

constexpr std::size_t kMaxRings = 512;
constexpr char kMagic[4] = {'C', 'F', 'R', '1'};

// ---- timestamps ----
//
// The ring stores raw tick counts, not nanoseconds: on x86 a clock_gettime
// (even via vDSO) costs ~25 ns, several times the rest of the emit path,
// so emit reads the invariant TSC (~half that) and the dump converts ticks
// to wall nanoseconds with a rate calibrated between enable() and the dump
// itself. Off x86 the "ticks" are rt::now_ns() and the rate calibrates to
// ~1. The dump format is unchanged — consumers always see nanoseconds.

std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(rt::now_ns());
#endif
}

/// (ticks, ns) anchor captured the first time anyone asks — enable() asks,
/// so the anchor predates every recorded event.
struct CalibrationAnchor {
    std::uint64_t tsc0;
    std::int64_t ns0;
};

const CalibrationAnchor& calibration_anchor() noexcept {
    static const CalibrationAnchor anchor = [] {
        CalibrationAnchor a;
        a.tsc0 = now_ticks();
        a.ns0 = rt::now_ns();
        return a;
    }();
    return anchor;
}

/// ns-per-tick rate over the anchor..now interval. When the dump runs
/// right after enable() the interval is stretched to ~200 us first so the
/// rate has enough baseline to be stable. Only dumps pay this; emit never
/// calls it.
double ticks_to_ns_rate() noexcept {
    const CalibrationAnchor& a = calibration_anchor();
    std::uint64_t t1 = now_ticks();
    std::int64_t n1 = rt::now_ns();
    while (n1 - a.ns0 < 200'000) {
        t1 = now_ticks();
        n1 = rt::now_ns();
    }
    const std::int64_t dt = static_cast<std::int64_t>(t1 - a.tsc0);
    if (dt <= 0) return 1.0;
    return static_cast<double>(n1 - a.ns0) / static_cast<double>(dt);
}

std::int64_t ticks_to_ns(std::uint64_t ticks, double rate) noexcept {
    const CalibrationAnchor& a = calibration_anchor();
    return a.ns0 +
           static_cast<std::int64_t>(
               static_cast<double>(static_cast<std::int64_t>(ticks - a.tsc0)) *
               rate);
}

/// Lock-free ring table: slots are published once with a release store and
/// never recycled, so readers — including a fatal-signal handler — walk it
/// with acquire loads and no lock. Rings are intentionally leaked (bounded
/// by thread count x depth x 32 B): a dump may run after their owning
/// threads exited.
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::size_t> g_depth{4096};

std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 16;
    while (p < v && p < (std::size_t{1} << 24)) p <<= 1;
    return p;
}

std::uint32_t current_tid() noexcept {
    return static_cast<std::uint32_t>(::syscall(SYS_gettid));
}

} // namespace

Ring::Ring(std::size_t depth_pow2, std::uint32_t thread_id)
    : mask(depth_pow2 - 1), tid(thread_id),
      words(new std::atomic<std::uint64_t>[depth_pow2 * kWordsPerEvent]()) {}

Ring* tls_ring() noexcept {
    thread_local Ring* ring = [] {
        const std::size_t idx =
            g_ring_count.fetch_add(1, std::memory_order_relaxed);
        if (idx >= kMaxRings) {
            g_ring_count.store(kMaxRings, std::memory_order_relaxed);
            return static_cast<Ring*>(nullptr);
        }
        auto* r = new Ring(round_up_pow2(
                               g_depth.load(std::memory_order_relaxed)),
                           current_tid());
        g_rings[idx].store(r, std::memory_order_release);
        return r;
    }();
    return ring;
}

} // namespace fr_detail

namespace {

using fr_detail::kWordsPerEvent;
using fr_detail::Ring;

/// Snapshot bounds of one ring: the newest min(head, depth) events.
struct RingView {
    std::uint64_t begin;
    std::uint64_t end;
};

RingView ring_view(const Ring& r) noexcept {
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t depth = r.mask + 1;
    return {head > depth ? head - depth : 0, head};
}

/// Serialize every ring through a writer callable (ostream for dump(),
/// a raw fd for the async-signal-safe fatal dump) so both paths share one
/// format. Writer signature: bool(const void*, size_t).
template <typename Writer>
std::size_t dump_with(Writer&& write) {
    if (!write(fr_detail::kMagic, sizeof(fr_detail::kMagic))) return 0;
    const std::uint32_t version = 1;
    if (!write(&version, sizeof(version))) return 0;
    // Rings hold raw ticks; the dump is nanoseconds (see "timestamps").
    const double rate = fr_detail::ticks_to_ns_rate();
    std::size_t total = 0;
    const std::size_t n = std::min(
        fr_detail::g_ring_count.load(std::memory_order_relaxed),
        std::size_t{512});
    for (std::size_t i = 0; i < n; ++i) {
        const Ring* r = fr_detail::g_rings[i].load(std::memory_order_acquire);
        if (r == nullptr) continue;
        const RingView view = ring_view(*r);
        const std::uint32_t tid = r->tid;
        const std::uint32_t count =
            static_cast<std::uint32_t>(view.end - view.begin);
        if (!write(&tid, sizeof(tid))) return total;
        if (!write(&count, sizeof(count))) return total;
        for (std::uint64_t seq = view.begin; seq != view.end; ++seq) {
            std::uint64_t ev[kWordsPerEvent];
            const std::size_t base = (seq & r->mask) * kWordsPerEvent;
            for (std::size_t w = 0; w < kWordsPerEvent; ++w) {
                ev[w] = r->words[base + w].load(std::memory_order_relaxed);
            }
            ev[0] = static_cast<std::uint64_t>(
                fr_detail::ticks_to_ns(ev[0], rate));
            if (!write(ev, sizeof(ev))) return total;
            ++total;
        }
    }
    return total;
}

// ---- fatal-signal dump ----

char g_fatal_path[256];
std::atomic<bool> g_fatal_installed{false};

void fatal_dump_handler(int sig) {
    const int fd =
        ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
        dump_with([fd](const void* p, std::size_t len) {
            const auto* bytes = static_cast<const std::uint8_t*>(p);
            while (len > 0) {
                const ::ssize_t n = ::write(fd, bytes, len);
                if (n <= 0) return errno == EINTR;
                bytes += n;
                len -= static_cast<std::size_t>(n);
            }
            return true;
        });
        ::close(fd);
    }
    // Handlers were installed with SA_RESETHAND: re-raising runs the
    // default disposition (core dump / termination).
    ::raise(sig);
}

} // namespace

void FlightRecorder::enable(std::size_t ring_depth) noexcept {
    if (ring_depth > 0) {
        fr_detail::g_depth.store(ring_depth, std::memory_order_relaxed);
    }
    // Pin the tick->ns anchor before the first event can be recorded.
    fr_detail::calibration_anchor();
    fr_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
    fr_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void FlightRecorder::emit_always(EventType type, std::uint64_t a,
                                 std::uint32_t b) noexcept {
    Ring* r = fr_detail::tls_ring();
    if (r == nullptr) {
        fr_detail::g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const std::uint64_t h = r->head.load(std::memory_order_relaxed);
    const std::size_t base = (h & r->mask) * kWordsPerEvent;
    r->words[base + 0].store(fr_detail::now_ticks(),
                             std::memory_order_relaxed);
    r->words[base + 1].store(a, std::memory_order_relaxed);
    r->words[base + 2].store((std::uint64_t{b} << 32) | r->tid,
                             std::memory_order_relaxed);
    r->words[base + 3].store(static_cast<std::uint64_t>(type),
                             std::memory_order_relaxed);
    r->head.store(h + 1, std::memory_order_release);
}

std::size_t FlightRecorder::dump(std::ostream& out) {
    return dump_with([&out](const void* p, std::size_t len) {
        out.write(static_cast<const char*>(p),
                  static_cast<std::streamsize>(len));
        return static_cast<bool>(out);
    });
}

bool FlightRecorder::dump_file(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    dump(out);
    return static_cast<bool>(out);
}

void FlightRecorder::clear() noexcept {
    const std::size_t n = std::min(
        fr_detail::g_ring_count.load(std::memory_order_relaxed),
        std::size_t{512});
    for (std::size_t i = 0; i < n; ++i) {
        if (Ring* r = fr_detail::g_rings[i].load(std::memory_order_acquire)) {
            r->head.store(0, std::memory_order_relaxed);
        }
    }
}

std::size_t FlightRecorder::ring_count() noexcept {
    std::size_t live = 0;
    const std::size_t n = std::min(
        fr_detail::g_ring_count.load(std::memory_order_relaxed),
        std::size_t{512});
    for (std::size_t i = 0; i < n; ++i) {
        if (fr_detail::g_rings[i].load(std::memory_order_acquire) != nullptr) {
            ++live;
        }
    }
    return live;
}

std::uint64_t FlightRecorder::dropped() noexcept {
    return fr_detail::g_dropped.load(std::memory_order_relaxed);
}

void FlightRecorder::install_fatal_dump(const char* path) noexcept {
    std::snprintf(g_fatal_path, sizeof(g_fatal_path), "%s", path);
    if (g_fatal_installed.exchange(true)) return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatal_dump_handler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
}

const char* event_name(EventType type) noexcept {
    switch (type) {
    case EventType::kNone: return "none";
    case EventType::kHopEnqueue: return "hop-enqueue";
    case EventType::kHopDequeue: return "hop-dequeue";
    case EventType::kHopHandlerStart: return "hop-handler";
    case EventType::kHopHandlerEnd: return "hop-handler-end";
    case EventType::kFrameSend: return "frame-send";
    case EventType::kFrameRecv: return "frame-recv";
    case EventType::kCoalesceFlush: return "coalesce-flush";
    case EventType::kWriterPark: return "writer-park";
    case EventType::kWriterResume: return "writer-resume";
    case EventType::kLaneFailover: return "lane-failover";
    case EventType::kCreditStall: return "credit-stall";
    case EventType::kSpanSend: return "span-send";
    case EventType::kSpanRecv: return "span-recv";
    case EventType::kRecomposeBegin: return "recompose-begin";
    case EventType::kRecomposeApply: return "recompose-apply";
    case EventType::kRecomposeAbort: return "recompose-abort";
    case EventType::kShmWakeup: return "shm-wakeup";
    case EventType::kShmFailover: return "shm-failover";
    }
    return "unknown";
}

// ---- decoding ----

std::vector<Event> decode_events(const std::uint8_t* data, std::size_t size) {
    if (size < 8 || std::memcmp(data, fr_detail::kMagic, 4) != 0) {
        throw std::runtime_error("not a compadres flight-recorder dump");
    }
    std::size_t at = 8; // magic + version
    std::vector<Event> out;
    while (at + 8 <= size) {
        std::uint32_t tid = 0;
        std::uint32_t count = 0;
        std::memcpy(&tid, data + at, 4);
        std::memcpy(&count, data + at + 4, 4);
        at += 8;
        if (at + std::uint64_t{count} * 32 > size) {
            throw std::runtime_error("truncated flight-recorder dump");
        }
        for (std::uint32_t i = 0; i < count; ++i) {
            std::uint64_t w[kWordsPerEvent];
            std::memcpy(w, data + at, sizeof(w));
            at += sizeof(w);
            Event e;
            e.ts_ns = static_cast<std::int64_t>(w[0]);
            e.a = w[1];
            e.b = static_cast<std::uint32_t>(w[2] >> 32);
            e.tid = static_cast<std::uint32_t>(w[2]);
            e.type = static_cast<EventType>(w[3]);
            if (e.type != EventType::kNone) out.push_back(e);
        }
    }
    return out;
}

std::vector<Event> decode_events_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    return decode_events(bytes.data(), bytes.size());
}

std::string chrome_trace_json(const std::vector<Event>& events) {
    std::vector<Event> sorted(events);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event& x, const Event& y) {
                         return x.ts_ns < y.ts_ns;
                     });
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    char line[256];
    bool first = true;
    for (const Event& e : sorted) {
        const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
        const char* ph = "i";
        const char* name = event_name(e.type);
        if (e.type == EventType::kHopHandlerStart) {
            ph = "B";
            name = "hop-handler";
        } else if (e.type == EventType::kHopHandlerEnd) {
            ph = "E";
            name = "hop-handler";
        }
        std::snprintf(
            line, sizeof(line),
            "%s{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,"
            "\"tid\":%" PRIu32 "%s,\"args\":{\"a\":\"0x%" PRIx64
            "\",\"b\":%" PRIu32 "}}",
            first ? "" : ",\n", name, ph, ts_us, e.tid,
            std::strcmp(ph, "i") == 0 ? ",\"s\":\"t\"" : "", e.a, e.b);
        out += line;
        first = false;
    }
    out += "\n]}\n";
    return out;
}

} // namespace compadres::obs
