#include "obs/trace_context.hpp"

#include "obs/flight_recorder.hpp"
#include "rt/clock.hpp"

namespace compadres::obs {

namespace {

thread_local TraceContext t_ctx;

/// splitmix64 — cheap, allocation-free id mixing.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Per-thread send counter / id seed. Seeded from the monotonic clock and
/// a process-wide thread ordinal so two threads (or two processes started
/// the same nanosecond) never mint colliding trace ids in practice.
struct ThreadTraceState {
    std::uint64_t sends = 0;
    std::uint64_t seed;
    std::uint32_t next_span;
    ThreadTraceState() {
        static std::atomic<std::uint64_t> ordinal{1};
        seed = mix64(static_cast<std::uint64_t>(rt::now_ns()) ^
                     (ordinal.fetch_add(1, std::memory_order_relaxed) << 48));
        next_span = static_cast<std::uint32_t>(seed >> 32) | 1u;
    }
};

ThreadTraceState& thread_state() noexcept {
    thread_local ThreadTraceState state;
    return state;
}

} // namespace

void Tracer::configure(int sample_shift) noexcept {
    trace_detail::g_sample_shift.store(sample_shift < 0 ? -1 : sample_shift,
                                       std::memory_order_relaxed);
}

TraceContext Tracer::current() noexcept { return t_ctx; }

void Tracer::set_current(TraceContext ctx) noexcept { t_ctx = ctx; }

void Tracer::clear_current() noexcept { t_ctx = TraceContext{}; }

std::uint32_t Tracer::next_span() noexcept {
    ThreadTraceState& s = thread_state();
    if (++s.next_span == 0) ++s.next_span;
    return s.next_span;
}

TraceContext Tracer::on_send() noexcept {
    const int shift =
        trace_detail::g_sample_shift.load(std::memory_order_relaxed);
    if (shift < 0) return {};
    if (t_ctx) {
        // Mid-flow: continue the inherited trace with a fresh span.
        return {t_ctx.trace_id, next_span()};
    }
    ThreadTraceState& s = thread_state();
    ++s.sends;
    if (shift > 0 &&
        (s.sends & ((std::uint64_t{1} << (shift < 63 ? shift : 63)) - 1)) !=
            0) {
        return {};
    }
    std::uint64_t id = mix64(s.seed ^ s.sends);
    if (id == 0) id = 1;
    return {id, next_span()};
}

void apply(const TraceConfig& config) {
    if (config.recorder) {
        FlightRecorder::enable(config.ring_depth);
    }
    if (config.enabled) {
        Tracer::configure(static_cast<int>(
            config.sample_shift > 62u ? 62u : config.sample_shift));
    }
}

} // namespace compadres::obs
