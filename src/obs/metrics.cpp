#include "obs/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace compadres::obs {

namespace metrics_detail {

std::size_t thread_stripe() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

} // namespace metrics_detail

// ---- Histogram ----

Histogram::Histogram() : stripes_(std::make_unique<Stripe[]>(kHistStripes)) {}

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
    if (v < 4) return static_cast<std::size_t>(v);
    const int e = std::bit_width(v) - 1; // 2 <= e <= 63
    const std::size_t sub =
        static_cast<std::size_t>((v >> (e - 2)) & 0x03); // linear quarter
    const std::size_t idx = static_cast<std::size_t>(e - 1) * 4 + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
    if (index < 4) return index;
    const std::uint64_t e = index / 4 + 1;
    const std::uint64_t sub = index % 4;
    // Bucket covers [2^e + sub*2^(e-2), 2^e + (sub+1)*2^(e-2)).
    return (std::uint64_t{1} << e) + (sub + 1) * (std::uint64_t{1} << (e - 2)) -
           1;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
    Snapshot s;
    for (std::size_t i = 0; i < kHistStripes; ++i) {
        s.sum += stripes_[i].sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const std::uint64_t n =
                stripes_[i].buckets[b].load(std::memory_order_relaxed);
            s.buckets[b] += n;
            s.count += n;
        }
    }
    return s;
}

std::uint64_t Histogram::Snapshot::percentile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen > rank) return bucket_upper_bound(b);
    }
    return bucket_upper_bound(kBuckets - 1);
}

// ---- MetricsRegistry ----

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   Kind kind,
                                                   const std::string& help) {
    auto [it, inserted] = entries_.try_emplace(name);
    Entry& e = it->second;
    if (inserted) {
        e.kind = kind;
        e.help = help;
        switch (kind) {
        case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
        case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
        case Kind::kHistogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
    } else if (e.kind != kind) {
        throw std::invalid_argument("metric '" + name +
                                    "' already registered as a different "
                                    "instrument kind");
    }
    return e;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
    std::lock_guard lk(mu_);
    return *entry_for(name, Kind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
    std::lock_guard lk(mu_);
    return *entry_for(name, Kind::kGauge, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
    std::lock_guard lk(mu_);
    return *entry_for(name, Kind::kHistogram, help).histogram;
}

std::uint64_t MetricsRegistry::add_source(const std::string& prefix,
                                          Source sample) {
    std::lock_guard lk(mu_);
    const std::uint64_t token = next_token_++;
    sources_.emplace(token, std::make_pair(prefix, std::move(sample)));
    return token;
}

void MetricsRegistry::remove_source(std::uint64_t token) {
    // Taking mu_ serializes against the exposition writers, so by the time
    // this returns no snapshot can still be inside the callback.
    std::lock_guard lk(mu_);
    sources_.erase(token);
}

std::string sanitize_metric_name(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string MetricsRegistry::prometheus_text() const {
    std::lock_guard lk(mu_);
    std::ostringstream out;
    for (const auto& [name, e] : entries_) {
        const std::string pname = sanitize_metric_name(name);
        if (!e.help.empty()) {
            out << "# HELP " << pname << " " << e.help << "\n";
        }
        switch (e.kind) {
        case Kind::kCounter:
            out << "# TYPE " << pname << " counter\n";
            out << pname << " " << e.counter->value() << "\n";
            break;
        case Kind::kGauge:
            out << "# TYPE " << pname << " gauge\n";
            out << pname << " " << e.gauge->value() << "\n";
            break;
        case Kind::kHistogram: {
            out << "# TYPE " << pname << " histogram\n";
            const Histogram::Snapshot s = e.histogram->snapshot();
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
                if (s.buckets[b] == 0) continue;
                cumulative += s.buckets[b];
                out << pname << "_bucket{le=\""
                    << Histogram::bucket_upper_bound(b) << "\"} " << cumulative
                    << "\n";
            }
            out << pname << "_bucket{le=\"+Inf\"} " << s.count << "\n";
            out << pname << "_sum " << s.sum << "\n";
            out << pname << "_count " << s.count << "\n";
            break;
        }
        }
    }
    for (const auto& [token, src] : sources_) {
        (void)token;
        for (const SourceSample& sample : src.second()) {
            out << sanitize_metric_name(src.first + "_" + sample.name) << " "
                << sample.value << "\n";
        }
    }
    return out.str();
}

std::string MetricsRegistry::json_snapshot() const {
    std::lock_guard lk(mu_);
    std::ostringstream out;
    out << "{\n  \"benchmark\": \"metrics_snapshot\",\n";
    out << "  \"counters\": {";
    bool first = true;
    for (const auto& [name, e] : entries_) {
        if (e.kind != Kind::kCounter) continue;
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << e.counter->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, e] : entries_) {
        if (e.kind != Kind::kGauge) continue;
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << e.gauge->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, e] : entries_) {
        if (e.kind != Kind::kHistogram) continue;
        const Histogram::Snapshot s = e.histogram->snapshot();
        out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
            << s.count << ", \"sum\": " << s.sum
            << ", \"p50\": " << s.percentile(0.50)
            << ", \"p90\": " << s.percentile(0.90)
            << ", \"p99\": " << s.percentile(0.99) << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"sources\": {";
    first = true;
    for (const auto& [token, src] : sources_) {
        (void)token;
        for (const SourceSample& sample : src.second()) {
            out << (first ? "" : ",") << "\n    \"" << src.first << "_"
                << sample.name << "\": " << sample.value;
            first = false;
        }
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << json_snapshot();
    return static_cast<bool>(out);
}

void MetricsRegistry::reset() {
    std::lock_guard lk(mu_);
    entries_.clear();
    sources_.clear();
}

} // namespace compadres::obs
