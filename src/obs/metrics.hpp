// MetricsRegistry — the unified counter/gauge/histogram surface of the
// observability plane.
//
// Increment paths are lock-free and wait-free: a Counter is striped across
// cache-line-sized shards indexed by a per-thread ordinal, so concurrent
// writers touch distinct lines and a snapshot reconciles the stripes with
// relaxed loads; a Histogram has log-bucketed fixed storage (no allocation
// ever, any value maps to one of 256 buckets spanning [0, 2^63)) striped
// the same way. Registration and snapshotting take the registry mutex —
// cold paths by construction.
//
// The registry absorbs the framework's ad-hoc counter surfaces (port
// counters, frame-pool hit rates, reactor/lane stats) through snapshot
// sources: a source is a callback returning {name, value} samples, the
// same shape Application::add_counter_source feeds trace_report, exposed
// uniformly in the Prometheus text and JSON snapshot writers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compadres::obs {

namespace metrics_detail {
/// Stable per-thread stripe index in [0, kStripes).
std::size_t thread_stripe() noexcept;
inline constexpr std::size_t kStripes = 16;
} // namespace metrics_detail

/// Monotonic counter. add() is a relaxed fetch_add on the calling
/// thread's stripe — wait-free, and contention-free up to kStripes
/// concurrent writer threads.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        stripes_[metrics_detail::thread_stripe()].v.fetch_add(
            n, std::memory_order_relaxed);
    }
    void inc() noexcept { add(1); }
    std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const Stripe& s : stripes_) {
            sum += s.v.load(std::memory_order_relaxed);
        }
        return sum;
    }

private:
    struct alignas(64) Stripe {
        std::atomic<std::uint64_t> v{0};
    };
    Stripe stripes_[metrics_detail::kStripes];
};

/// Last-writer-wins instantaneous value.
class Gauge {
public:
    void set(std::int64_t v) noexcept {
        v_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t d) noexcept {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram: 4 linear sub-buckets per power of two, 256
/// buckets total (exact below 4, ~12% relative bucket width above).
/// observe() is two relaxed fetch_adds on the calling thread's stripe.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 256;

    Histogram();

    void observe(std::uint64_t v) noexcept {
        Stripe& s = stripes_[metrics_detail::thread_stripe() % kHistStripes];
        s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
    }

    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t buckets[kBuckets] = {};
        /// Upper bound of the bucket holding quantile q (0..1).
        std::uint64_t percentile(double q) const noexcept;
    };
    Snapshot snapshot() const noexcept;

    static std::size_t bucket_index(std::uint64_t v) noexcept;
    /// Inclusive upper bound of a bucket's value range.
    static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

private:
    static constexpr std::size_t kHistStripes = 4;
    struct alignas(64) Stripe {
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> buckets[kBuckets]{};
    };
    std::unique_ptr<Stripe[]> stripes_;
};

/// One sample from a snapshot source.
struct SourceSample {
    std::string name;
    std::uint64_t value = 0;
};

class MetricsRegistry {
public:
    /// Process-wide registry (benches/examples share it; tests may build
    /// their own).
    static MetricsRegistry& global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Find-or-create by name. Returned references stay valid for the
    /// registry's lifetime. Throws std::invalid_argument when the name is
    /// already registered as a different instrument kind.
    Counter& counter(const std::string& name, const std::string& help = "");
    Gauge& gauge(const std::string& name, const std::string& help = "");
    Histogram& histogram(const std::string& name,
                         const std::string& help = "");

    /// Register a snapshot source: `sample` is called (under the registry
    /// mutex) by the exposition writers, its samples appearing as
    /// "<prefix>_<name>" untyped values. Returns a removal token.
    /// remove_source blocks until any in-flight exposition is done with
    /// the callback, so the owner may free captured state right after.
    using Source = std::function<std::vector<SourceSample>()>;
    std::uint64_t add_source(const std::string& prefix, Source sample);
    void remove_source(std::uint64_t token);

    /// Prometheus text exposition (metric names sanitized to the
    /// [a-zA-Z0-9_:] charset).
    std::string prometheus_text() const;

    /// JSON snapshot in the shape tools/bench_trend.py ingests
    /// ({"benchmark": "metrics_snapshot", ...}).
    std::string json_snapshot() const;
    bool write_json(const std::string& path) const;

    /// Drop every instrument and source (testing).
    void reset();

private:
    enum class Kind { kCounter, kGauge, kHistogram };
    struct Entry {
        Kind kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    Entry& entry_for(const std::string& name, Kind kind,
                     const std::string& help);

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    std::map<std::uint64_t, std::pair<std::string, Source>> sources_;
    std::uint64_t next_token_ = 1;
};

/// Sanitize a metric name for Prometheus exposition.
std::string sanitize_metric_name(const std::string& name);

} // namespace compadres::obs
