// RTZen-style baseline ORB — the paper's comparison point (§3.3).
//
// RTZen (Raman et al., Middleware 2005) is a hand-coded RT-CORBA ORB for
// RTSJ: the same scoped-memory architecture as the Compadres ORB, but with
// direct method calls between the ORB/Transport/MessageProcessing layers
// instead of ports, message pools, SMMs, and per-port thread pools. The
// original is not available, so this module reproduces its *relevant
// difference*: identical GIOP/CDR wire format and identical region layout,
// with the layers invoked as plain function calls on the caller's thread.
// Whatever Fig. 11 measures between the two ORBs is therefore exactly the
// component framework's overhead.
#pragma once

#include "memory/immortal.hpp"
#include "memory/scope_pool.hpp"
#include "net/transport.hpp"
#include "orb/servant.hpp"
#include "rt/thread.hpp"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compadres::rtzen {

class RtzenError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Hand-coded client ORB: invoke() marshals, sends, receives, and
/// demarshals directly on the calling thread.
class RtzenClientOrb {
public:
    explicit RtzenClientOrb(std::unique_ptr<net::Transport> wire);
    ~RtzenClientOrb();

    RtzenClientOrb(const RtzenClientOrb&) = delete;
    RtzenClientOrb& operator=(const RtzenClientOrb&) = delete;

    std::vector<std::uint8_t> invoke(const std::string& object_key,
                                     const std::string& operation,
                                     const std::uint8_t* payload,
                                     std::size_t payload_len,
                                     int priority = rt::Priority::kDefault);

    /// Oneway invocation: send and return, no reply expected.
    void invoke_oneway(const std::string& object_key,
                       const std::string& operation,
                       const std::uint8_t* payload, std::size_t payload_len,
                       int priority = rt::Priority::kDefault);

    /// GIOP LocateRequest probe: true iff the server hosts `object_key`.
    bool ping(const std::string& object_key,
              int priority = rt::Priority::kDefault);

private:
    // Region layout mirroring the Compadres client ORB (immortal ORB,
    // scoped transport, scoped message processing) so memory behaviour is
    // comparable; the layers just call each other directly.
    memory::ImmortalMemory immortal_;
    memory::LTScopedMemory transport_scope_;
    memory::LTScopedMemory processing_scope_;
    memory::ScopeHandle transport_entry_;
    memory::ScopeHandle processing_entry_;
    std::unique_ptr<net::Transport> wire_;
    std::mutex invoke_mu_;
    std::uint32_t next_request_id_ = 1;
};

/// Hand-coded server ORB: one reader thread per connection runs the whole
/// POA -> Transport -> RequestProcessing chain as direct calls.
class RtzenServerOrb {
public:
    RtzenServerOrb();
    ~RtzenServerOrb();

    RtzenServerOrb(const RtzenServerOrb&) = delete;
    RtzenServerOrb& operator=(const RtzenServerOrb&) = delete;

    void register_servant(const std::string& object_key, orb::Servant servant);
    void attach(std::unique_ptr<net::Transport> wire);
    void shutdown();

private:
    void reader_loop(net::Transport& wire);

    memory::ImmortalMemory immortal_;
    memory::LTScopedMemory poa_scope_;
    memory::LTScopedMemory transport_scope_;
    memory::LTScopedMemory processing_scope_;
    memory::ScopeHandle poa_entry_;
    memory::ScopeHandle transport_entry_;
    memory::ScopeHandle processing_entry_;
    orb::ServantRegistry servants_;
    std::mutex mu_;
    bool stopping_ = false;
    std::vector<std::unique_ptr<net::Transport>> wires_;
    std::vector<std::unique_ptr<rt::RtThread>> readers_;
};

} // namespace compadres::rtzen
