#include "rtzen/rtzen.hpp"

#include "cdr/giop.hpp"

namespace compadres::rtzen {

// ---------------------------------------------------------------- client

RtzenClientOrb::RtzenClientOrb(std::unique_ptr<net::Transport> wire)
    : immortal_(1024 * 1024, "rtzen-client-immortal"),
      transport_scope_(256 * 1024, "rtzen-client-transport"),
      processing_scope_(256 * 1024, "rtzen-client-processing"),
      transport_entry_(transport_scope_, immortal_),
      processing_entry_(processing_scope_, transport_scope_),
      wire_(std::move(wire)) {}

RtzenClientOrb::~RtzenClientOrb() {
    if (wire_ != nullptr) wire_->close();
}

std::vector<std::uint8_t> RtzenClientOrb::invoke(const std::string& object_key,
                                                 const std::string& operation,
                                                 const std::uint8_t* payload,
                                                 std::size_t payload_len,
                                                 int priority) {
    std::lock_guard lk(invoke_mu_);
    rt::try_set_current_thread_priority(rt::Priority::clamped(priority));

    // "MessageProcessing layer", inlined: marshal the request.
    cdr::RequestHeader header;
    header.request_id = next_request_id_++;
    header.response_expected = true;
    header.object_key = object_key;
    header.operation = operation;
    const auto frame = cdr::encode_request(header, payload, payload_len);

    // "Transport layer": blocking exchange on the wire.
    wire_->send_frame(frame);
    const auto reply_frame = wire_->recv_frame();
    if (!reply_frame.has_value()) {
        throw RtzenError("connection closed awaiting reply");
    }

    // Demarshal the reply.
    const cdr::DecodedReply reply =
        cdr::decode_reply(reply_frame->data(), reply_frame->size());
    if (reply.header.request_id != header.request_id) {
        throw RtzenError("reply correlation mismatch");
    }
    if (reply.header.status != cdr::ReplyStatus::kNoException) {
        throw RtzenError("invocation '" + operation + "' failed with status " +
                         std::to_string(static_cast<int>(reply.header.status)));
    }
    return {reply.payload, reply.payload + reply.payload_len};
}

void RtzenClientOrb::invoke_oneway(const std::string& object_key,
                                   const std::string& operation,
                                   const std::uint8_t* payload,
                                   std::size_t payload_len, int priority) {
    std::lock_guard lk(invoke_mu_);
    rt::try_set_current_thread_priority(rt::Priority::clamped(priority));
    cdr::RequestHeader header;
    header.request_id = next_request_id_++;
    header.response_expected = false;
    header.object_key = object_key;
    header.operation = operation;
    wire_->send_frame(cdr::encode_request(header, payload, payload_len));
}

bool RtzenClientOrb::ping(const std::string& object_key, int priority) {
    std::lock_guard lk(invoke_mu_);
    rt::try_set_current_thread_priority(rt::Priority::clamped(priority));
    cdr::LocateRequestHeader header;
    header.request_id = next_request_id_++;
    header.object_key = object_key;
    wire_->send_frame(cdr::encode_locate_request(header));
    const auto reply_frame = wire_->recv_frame();
    if (!reply_frame.has_value()) {
        throw RtzenError("connection closed awaiting LocateReply");
    }
    const cdr::LocateReplyHeader reply =
        cdr::decode_locate_reply(reply_frame->data(), reply_frame->size());
    if (reply.request_id != header.request_id) {
        throw RtzenError("LocateReply correlation mismatch");
    }
    return reply.status == cdr::LocateStatus::kObjectHere;
}

// ---------------------------------------------------------------- server

RtzenServerOrb::RtzenServerOrb()
    : immortal_(1024 * 1024, "rtzen-server-immortal"),
      poa_scope_(256 * 1024, "rtzen-server-poa"),
      transport_scope_(256 * 1024, "rtzen-server-transport"),
      processing_scope_(256 * 1024, "rtzen-server-processing"),
      poa_entry_(poa_scope_, immortal_),
      transport_entry_(transport_scope_, poa_scope_),
      processing_entry_(processing_scope_, transport_scope_) {}

RtzenServerOrb::~RtzenServerOrb() { shutdown(); }

void RtzenServerOrb::register_servant(const std::string& object_key,
                                      orb::Servant servant) {
    servants_.register_servant(object_key, std::move(servant));
}

void RtzenServerOrb::attach(std::unique_ptr<net::Transport> wire) {
    std::lock_guard lk(mu_);
    if (stopping_) throw RtzenError("server is shut down");
    net::Transport* raw = wire.get();
    wires_.push_back(std::move(wire));
    readers_.push_back(std::make_unique<rt::RtThread>(
        "rtzen-reader-" + std::to_string(readers_.size()), rt::Priority{},
        [this, raw] { reader_loop(*raw); }));
}

void RtzenServerOrb::reader_loop(net::Transport& wire) {
    for (;;) {
        std::optional<net::FrameBuffer> frame;
        try {
            frame = wire.recv_frame();
        } catch (const std::exception&) {
            return;
        }
        if (!frame.has_value()) return;

        // The whole POA -> Transport -> RequestProcessing chain runs as
        // direct calls on this thread — the hand-coded structure the paper
        // compares against.
        try {
            const cdr::GiopHeader header =
                cdr::decode_header(frame->data(), frame->size());
            if (header.msg_type == cdr::GiopMsgType::kLocateRequest) {
                const cdr::LocateRequestHeader locate =
                    cdr::decode_locate_request(frame->data(), frame->size());
                cdr::LocateReplyHeader reply;
                reply.request_id = locate.request_id;
                reply.status = servants_.find(locate.object_key) != nullptr
                                   ? cdr::LocateStatus::kObjectHere
                                   : cdr::LocateStatus::kUnknownObject;
                wire.send_frame(cdr::encode_locate_reply(reply));
                continue;
            }
        } catch (const cdr::MarshalError&) {
            continue; // unparseable header
        } catch (const std::exception&) {
            return; // transport failure
        }
        cdr::ReplyHeader reply_header;
        std::vector<std::uint8_t> reply_payload;
        try {
            const cdr::DecodedRequest req =
                cdr::decode_request(frame->data(), frame->size());
            reply_header.request_id = req.header.request_id;
            const orb::Servant* servant = servants_.find(req.header.object_key);
            if (servant == nullptr) {
                reply_header.status = cdr::ReplyStatus::kSystemException;
            } else {
                const bool ok = (*servant)(req.header.operation, req.payload,
                                           req.payload_len, reply_payload);
                reply_header.status = ok ? cdr::ReplyStatus::kNoException
                                         : cdr::ReplyStatus::kUserException;
            }
            if (!req.header.response_expected) continue;
        } catch (const cdr::MarshalError&) {
            reply_header.status = cdr::ReplyStatus::kSystemException;
        }
        try {
            wire.send_frame(cdr::encode_reply(reply_header, reply_payload.data(),
                                              reply_payload.size()));
        } catch (const std::exception&) {
            return;
        }
    }
}

void RtzenServerOrb::shutdown() {
    std::vector<std::unique_ptr<rt::RtThread>> readers;
    {
        std::lock_guard lk(mu_);
        if (stopping_) return;
        stopping_ = true;
        for (auto& w : wires_) w->close();
        readers.swap(readers_);
    }
    for (auto& r : readers) r->join();
}

} // namespace compadres::rtzen
