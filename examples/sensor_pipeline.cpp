// sensor_pipeline: a DRE-style avionics-flavoured dataflow showing the
// features the paper motivates — hierarchical composition, per-port
// priorities, bounded buffers, and a shadow port for urgent alarms.
//
//   FusionCenter (immortal)
//     +- SensorBank (L1 scope)
//     |    +- Probe (L2 scope)  --alarm--> FusionCenter   [shadow port]
//     |    `--samples--> Filter                            [siblings]
//     +- Filter (L1 scope) --clean--> FusionCenter         [child->parent]
//
// Run:  ./sensor_pipeline [samples]
#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace compadres;

namespace {

std::atomic<int> g_fused{0};
std::atomic<int> g_alarms{0};
std::atomic<double> g_last_fused{0.0};
std::mutex g_mu;
std::condition_variable g_cv;

core::InPortConfig rt_port(std::size_t buffer, std::size_t max_threads) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = 1;
    cfg.max_threads = max_threads;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const int samples = argc > 1 ? std::atoi(argv[1]) : 10'000;

    core::register_builtin_message_types();

    core::RtsjAttributes attrs;
    attrs.immortal_size = 8 * 1024 * 1024;
    attrs.scoped_pools = {{1, 512 * 1024, 4}, {2, 256 * 1024, 4}};
    core::Application app("sensor-pipeline", attrs);

    auto& fusion = app.create_immortal<core::Component>("FusionCenter");
    auto& bank = app.create_scoped<core::Component>("SensorBank", fusion, 1);
    auto& probe = app.create_scoped<core::Component>("Probe", bank, 2);
    auto& filter = app.create_scoped<core::Component>("Filter", fusion, 1);

    bank.add_out_port<core::SensorSample>("samples", "SensorSample");

    // Filter: drops implausible readings, smooths the rest, forwards at a
    // medium priority.
    filter.add_in_port<core::SensorSample>(
        "raw", "SensorSample", rt_port(32, 2),
        [&filter](core::SensorSample& s, core::Smm&) {
            if (s.value < -50.0 || s.value > 150.0) return; // implausible
            auto& out = filter.out_port_t<core::SensorSample>("clean");
            core::SensorSample* fwd = out.get_message();
            *fwd = s;
            fwd->value = 0.8 * s.value + 5.0; // toy calibration
            out.send(fwd, 20);
        });
    filter.add_out_port<core::SensorSample>("clean", "SensorSample");

    fusion.add_in_port<core::SensorSample>(
        "fused", "SensorSample", rt_port(32, 2),
        [](core::SensorSample& s, core::Smm&) {
            g_last_fused.store(s.value);
            g_fused.fetch_add(1);
            g_cv.notify_all();
        });

    // Urgent alarms skip SensorBank entirely: the compiler-placed shadow
    // port hosts the alarm pool directly in FusionCenter's region and the
    // message rides at the highest priority.
    probe.add_out_port<core::MyInteger>("alarm", "MyInteger");
    fusion.add_in_port<core::MyInteger>(
        "alarms", "MyInteger", rt_port(8, 1),
        [](core::MyInteger& m, core::Smm&) {
            std::printf("  !! alarm %d handled at FusionCenter\n", m.value);
            g_alarms.fetch_add(1);
            g_cv.notify_all();
        });

    app.connect(bank, "samples", filter, "raw");
    app.connect(filter, "clean", fusion, "fused");
    app.connect(probe, "alarm", fusion, "alarms"); // shadow: skips the bank
    app.start();

    std::printf("sensor_pipeline: streaming %d samples through "
                "Bank -> Filter -> Fusion\n",
                samples);
    const auto t0 = rt::now_ns();

    auto& out = bank.out_port_t<core::SensorSample>("samples");
    auto& alarm = probe.out_port_t<core::MyInteger>("alarm");
    int expected_fused = 0;
    int expected_alarms = 0;
    for (int i = 0; i < samples; ++i) {
        core::SensorSample* s = out.get_message();
        s->timestamp_ns = rt::now_ns();
        s->sensor_id = i % 8;
        // Every 97th reading is garbage the filter must drop.
        s->value = (i % 97 == 0) ? 1e6 : 20.0 + (i % 10);
        if (i % 97 != 0) ++expected_fused;
        out.send(s, 10);

        if (i % 2500 == 1249) { // occasional urgent alarm
            core::MyInteger* m = alarm.get_message();
            m->value = ++expected_alarms;
            alarm.send(m, 90);
        }
    }

    {
        std::unique_lock lk(g_mu);
        g_cv.wait(lk, [&] {
            return g_fused.load() >= expected_fused &&
                   g_alarms.load() >= expected_alarms;
        });
    }
    const double elapsed_ms =
        static_cast<double>(rt::now_ns() - t0) / 1'000'000.0;

    std::printf("done: %d fused (expected %d), %d alarms, %d dropped, "
                "%.1f ms total (%.1f k samples/s)\n",
                g_fused.load(), expected_fused, g_alarms.load(),
                samples - expected_fused, elapsed_ms,
                static_cast<double>(samples) / elapsed_ms);
    std::printf("last fused value: %.2f\n", g_last_fused.load());

    app.shutdown();
    return 0;
}
