// remote_pipeline: two Compadres applications on "different hosts"
// (two TCP endpoints on localhost) joined by RemoteBridges — the paper's
// future-work feature ("transparently handling remote communication over
// a network") in action.
//
//   field node                      control node
//   SensorBank ──samples──▶ (bridge ~~~ TCP ~~~ bridge) ──▶ Monitor
//   Commander ◀──commands── (bridge ~~~ TCP ~~~ bridge) ◀── Monitor
//
// Neither the sensor, the monitor, nor the commander knows the network
// exists: they talk through ordinary ports.
//
// The example also exercises the observability plane end to end: the
// flight recorder and trace sampler run for the whole session, both
// applications publish their fabric counters into the process-wide
// MetricsRegistry, and shutdown drops three artifacts next to the binary —
// a metrics JSON snapshot, the Prometheus text exposition, and a binary
// flight-recorder dump ready for `compadres-trace`.
//
// Run:  ./remote_pipeline [samples]
#include "core/application.hpp"
#include "core/messages.hpp"
#include "net/tcp.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "remote/bridge.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

std::atomic<int> g_monitored{0};
std::atomic<int> g_commands{0};
std::mutex g_mu;
std::condition_variable g_cv;

core::InPortConfig pooled_port() {
    core::InPortConfig cfg;
    cfg.buffer_size = 32;
    cfg.min_threads = 1;
    cfg.max_threads = 2;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const int samples = argc > 1 ? std::atoi(argv[1]) : 500;

    core::register_builtin_message_types();
    remote::register_builtin_serializers();

    // Observability plane: record hop/wire events in per-thread rings and
    // trace 1-in-4 of the flows crossing the TCP wire. This is what a CCL
    // <Trace> block with <SampleShift>2</SampleShift> configures.
    obs::TraceConfig trace_cfg;
    trace_cfg.enabled = true;
    trace_cfg.sample_shift = 2;
    trace_cfg.recorder = true;
    obs::apply(trace_cfg);

    // Wire the two "hosts" together over real TCP on localhost.
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> control_wire;
    std::thread accept_thread([&] { control_wire = acceptor.accept(); });
    auto field_wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    // ---- field node ----
    core::Application field("field-node");
    remote::RemoteBridge field_bridge(field, std::move(field_wire));
    auto& bank = field.create_immortal<core::Component>("SensorBank");
    auto& commander = field.create_immortal<core::Component>("Commander");
    auto& samples_out =
        bank.add_out_port<core::SensorSample>("samples", "SensorSample");
    commander.add_in_port<core::MyInteger>(
        "commands", "MyInteger", pooled_port(),
        [](core::MyInteger& cmd, core::Smm&) {
            std::printf("  field: executing command %d\n", cmd.value);
            g_commands.fetch_add(1);
            g_cv.notify_all();
        });
    field_bridge.export_route(samples_out, "telemetry");
    field_bridge.import_route("commands", commander.in_port("commands"));
    field_bridge.start();
    field.start();

    // ---- control node ----
    core::Application control("control-node");
    remote::RemoteBridge control_bridge(control, std::move(control_wire));
    auto& monitor = control.create_immortal<core::Component>("Monitor");
    auto& commands_out =
        monitor.add_out_port<core::MyInteger>("commands", "MyInteger");
    monitor.add_in_port<core::SensorSample>(
        "telemetry", "SensorSample", pooled_port(),
        [&](core::SensorSample&, core::Smm&) {
            const int n = g_monitored.fetch_add(1) + 1;
            // Every 100th sample above threshold triggers a command back.
            if (n % 100 == 0) {
                core::MyInteger* cmd = commands_out.get_message();
                cmd->value = n / 100;
                commands_out.send(cmd, 50);
            }
            g_cv.notify_all();
        });
    control_bridge.import_route("telemetry", monitor.in_port("telemetry"));
    control_bridge.export_route(commands_out, "commands");
    control_bridge.start();
    control.start();

    // ---- drive ----
    std::printf("remote_pipeline: %d samples field -> control over TCP, "
                "commands flowing back\n",
                samples);
    for (int i = 0; i < samples; ++i) {
        core::SensorSample* s = samples_out.get_message();
        s->sensor_id = i % 4;
        s->value = 20.0 + (i % 7);
        samples_out.send(s, 10);
    }
    const int expected_commands = samples / 100;
    {
        std::unique_lock lk(g_mu);
        g_cv.wait(lk, [&] {
            return g_monitored.load() >= samples &&
                   g_commands.load() >= expected_commands;
        });
    }
    std::printf("done: %d samples monitored remotely, %d commands executed, "
                "%llu frames shipped / %llu received / %llu dropped\n",
                g_monitored.load(), g_commands.load(),
                static_cast<unsigned long long>(field_bridge.frames_sent() +
                                                control_bridge.frames_sent()),
                static_cast<unsigned long long>(
                    field_bridge.frames_received() +
                    control_bridge.frames_received()),
                static_cast<unsigned long long>(
                    field_bridge.frames_dropped() +
                    control_bridge.frames_dropped()));

    field_bridge.shutdown();
    control_bridge.shutdown();

    // ---- observability artifacts ----
    // Both nodes' fabric counters (per-port delivery counts, credit
    // stalls, bridge frame counters) land in one registry, exported in
    // both formats the plane speaks.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    field.publish_metrics(registry);
    control.publish_metrics(registry);
    if (registry.write_json("remote_pipeline_metrics.json")) {
        std::printf("wrote remote_pipeline_metrics.json (bench_trend.py "
                    "ingests it)\n");
    }
    if (std::FILE* f = std::fopen("remote_pipeline_metrics.prom", "w")) {
        const std::string text = registry.prometheus_text();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote remote_pipeline_metrics.prom (Prometheus text "
                    "exposition)\n");
    }
    if (obs::FlightRecorder::dump_file("remote_pipeline_flight.bin")) {
        std::printf("wrote remote_pipeline_flight.bin — decode with:\n"
                    "  compadres-trace remote_pipeline_flight.bin "
                    "-o trace.json   # then open in ui.perfetto.dev\n");
    }
    return 0;
}
