// remote_pipeline: two Compadres applications on "different hosts"
// (two TCP endpoints on localhost) joined by RemoteBridges — the paper's
// future-work feature ("transparently handling remote communication over
// a network") in action.
//
//   field node                      control node
//   SensorBank ──samples──▶ (bridge ~~~ TCP ~~~ bridge) ──▶ Monitor
//   Commander ◀──commands── (bridge ~~~ TCP ~~~ bridge) ◀── Monitor
//
// Neither the sensor, the monitor, nor the commander knows the network
// exists: they talk through ordinary ports.
//
// Run:  ./remote_pipeline [samples]
#include "core/application.hpp"
#include "core/messages.hpp"
#include "net/tcp.hpp"
#include "remote/bridge.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

std::atomic<int> g_monitored{0};
std::atomic<int> g_commands{0};
std::mutex g_mu;
std::condition_variable g_cv;

core::InPortConfig pooled_port() {
    core::InPortConfig cfg;
    cfg.buffer_size = 32;
    cfg.min_threads = 1;
    cfg.max_threads = 2;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const int samples = argc > 1 ? std::atoi(argv[1]) : 500;

    core::register_builtin_message_types();
    remote::register_builtin_serializers();

    // Wire the two "hosts" together over real TCP on localhost.
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> control_wire;
    std::thread accept_thread([&] { control_wire = acceptor.accept(); });
    auto field_wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    // ---- field node ----
    core::Application field("field-node");
    remote::RemoteBridge field_bridge(field, std::move(field_wire));
    auto& bank = field.create_immortal<core::Component>("SensorBank");
    auto& commander = field.create_immortal<core::Component>("Commander");
    auto& samples_out =
        bank.add_out_port<core::SensorSample>("samples", "SensorSample");
    commander.add_in_port<core::MyInteger>(
        "commands", "MyInteger", pooled_port(),
        [](core::MyInteger& cmd, core::Smm&) {
            std::printf("  field: executing command %d\n", cmd.value);
            g_commands.fetch_add(1);
            g_cv.notify_all();
        });
    field_bridge.export_route(samples_out, "telemetry");
    field_bridge.import_route("commands", commander.in_port("commands"));
    field_bridge.start();
    field.start();

    // ---- control node ----
    core::Application control("control-node");
    remote::RemoteBridge control_bridge(control, std::move(control_wire));
    auto& monitor = control.create_immortal<core::Component>("Monitor");
    auto& commands_out =
        monitor.add_out_port<core::MyInteger>("commands", "MyInteger");
    monitor.add_in_port<core::SensorSample>(
        "telemetry", "SensorSample", pooled_port(),
        [&](core::SensorSample&, core::Smm&) {
            const int n = g_monitored.fetch_add(1) + 1;
            // Every 100th sample above threshold triggers a command back.
            if (n % 100 == 0) {
                core::MyInteger* cmd = commands_out.get_message();
                cmd->value = n / 100;
                commands_out.send(cmd, 50);
            }
            g_cv.notify_all();
        });
    control_bridge.import_route("telemetry", monitor.in_port("telemetry"));
    control_bridge.export_route(commands_out, "commands");
    control_bridge.start();
    control.start();

    // ---- drive ----
    std::printf("remote_pipeline: %d samples field -> control over TCP, "
                "commands flowing back\n",
                samples);
    for (int i = 0; i < samples; ++i) {
        core::SensorSample* s = samples_out.get_message();
        s->sensor_id = i % 4;
        s->value = 20.0 + (i % 7);
        samples_out.send(s, 10);
    }
    const int expected_commands = samples / 100;
    {
        std::unique_lock lk(g_mu);
        g_cv.wait(lk, [&] {
            return g_monitored.load() >= samples &&
                   g_commands.load() >= expected_commands;
        });
    }
    std::printf("done: %d samples monitored remotely, %d commands executed, "
                "%llu frames shipped / %llu received / %llu dropped\n",
                g_monitored.load(), g_commands.load(),
                static_cast<unsigned long long>(field_bridge.frames_sent() +
                                                control_bridge.frames_sent()),
                static_cast<unsigned long long>(
                    field_bridge.frames_received() +
                    control_bridge.frames_received()),
                static_cast<unsigned long long>(
                    field_bridge.frames_dropped() +
                    control_bridge.frames_dropped()));

    field_bridge.shutdown();
    control_bridge.shutdown();
    return 0;
}
