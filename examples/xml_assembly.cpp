// xml_assembly: the paper's full two-phase toolchain driven end to end —
// parse a CDL and a CCL document, validate, print the derived plan (SMM
// placement, shadow ports, pools), generate the component skeletons, then
// assemble and run the application.
//
// Run:  ./xml_assembly [path/to.cdl.xml path/to.ccl.xml]
#include "compiler/assembler.hpp"
#include "compiler/codegen.hpp"
#include "core/messages.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>

using namespace compadres;

#ifndef EXAMPLES_ASSET_DIR
#define EXAMPLES_ASSET_DIR "examples/assets"
#endif

namespace {

std::atomic<int> g_done{0};
std::mutex g_mu;
std::condition_variable g_cv;

/// The user-implemented component classes that match the CDL.
class Trigger : public core::Component {
public:
    explicit Trigger(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_out_port<core::MyInteger>("fire", "MyInteger");
        add_in_port<core::MyInteger>("done", "MyInteger", port_config("done"),
                                     [](core::MyInteger& m, core::Smm&) {
                                         std::printf("  reply: %d\n", m.value);
                                         g_done.fetch_add(1);
                                         g_cv.notify_all();
                                     });
    }
};

class Doubler : public core::Component {
public:
    explicit Doubler(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_in_port<core::MyInteger>(
            "in", "MyInteger", port_config("in"),
            [this](core::MyInteger& m, core::Smm&) {
                auto& out = out_port_t<core::MyInteger>("out");
                core::MyInteger* reply = out.get_message();
                reply->value = m.value * 2;
                out.send(reply, 5);
            });
        add_out_port<core::MyInteger>("out", "MyInteger");
    }
};

} // namespace

int main(int argc, char** argv) {
    const std::string cdl_path =
        argc > 2 ? argv[1] : std::string(EXAMPLES_ASSET_DIR) + "/pingpong.cdl.xml";
    const std::string ccl_path =
        argc > 2 ? argv[2] : std::string(EXAMPLES_ASSET_DIR) + "/pingpong.ccl.xml";

    core::register_builtin_message_types();
    auto& registry = core::ComponentRegistry::global();
    registry.register_class<Trigger>("Trigger");
    registry.register_class<Doubler>("Doubler");

    // Phase 1: CDL -> skeletons (shown, not written to disk).
    const auto cdl = compiler::parse_cdl_file(cdl_path);
    const auto skeletons = compiler::generate_skeletons(cdl);
    std::printf("phase 1: %zu component classes in %s; generated skeletons:\n",
                cdl.components.size(), cdl_path.c_str());
    for (const auto& [file, text] : skeletons) {
        std::printf("  %-28s (%zu bytes)\n", file.c_str(), text.size());
    }

    // Phase 2: CCL -> validate -> plan.
    const auto ccl = compiler::parse_ccl_file(ccl_path);
    const auto plan = compiler::validate_and_plan(cdl, ccl);
    std::printf("\nphase 2: application '%s'\n", plan.application_name.c_str());
    for (const auto& comp : plan.components) {
        std::printf("  component %-12s class=%-10s %s level=%d parent=%s\n",
                    comp.instance_name.c_str(), comp.class_name.c_str(),
                    comp.type == core::ComponentType::kImmortal ? "immortal"
                                                                : "scoped  ",
                    comp.scope_level,
                    comp.parent_instance.empty() ? "<root>"
                                                 : comp.parent_instance.c_str());
    }
    for (const auto& conn : plan.connections) {
        std::printf("  link %s.%s -> %s.%s  [%s, SMM host: %s, pool=%zu]\n",
                    conn.from_instance.c_str(), conn.from_port.c_str(),
                    conn.to_instance.c_str(), conn.to_port.c_str(),
                    conn.shadow ? "shadow" : "regular",
                    conn.host_instance.empty() ? "<root>"
                                               : conn.host_instance.c_str(),
                    conn.pool_capacity);
    }

    // Assemble and run.
    auto app = compiler::assemble(plan);
    app->start();
    std::printf("\nrunning: firing 5 messages through the assembly\n");
    auto& fire = app->component("MyTrigger").out_port_t<core::MyInteger>("fire");
    for (int i = 1; i <= 5; ++i) {
        core::MyInteger* m = fire.get_message();
        m->value = i * 10;
        fire.send(m, 3);
    }
    {
        std::unique_lock lk(g_mu);
        g_cv.wait(lk, [] { return g_done.load() >= 5; });
    }
    app->shutdown();
    std::printf("done: all 5 replies received\n");
    return 0;
}
