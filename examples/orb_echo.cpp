// orb_echo: a remote method invocation through the Compadres RT-CORBA ORB
// (paper §3.2) — servant registration, GIOP over TCP on localhost, and a
// latency report comparing against the hand-coded RTZen-style baseline.
//
// Run:  ./orb_echo [requests] [payload_bytes]
#include "net/tcp.hpp"
#include "orb/client_orb.hpp"
#include "orb/server_orb.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"
#include "rtzen/rtzen.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace compadres;

namespace {

orb::Servant make_echo_servant() {
    return [](const std::string&, const std::uint8_t* payload, std::size_t len,
              std::vector<std::uint8_t>& reply) {
        reply.assign(payload, payload + len);
        return true;
    };
}

template <typename Client>
rt::StatsSummary drive(Client& client, int requests, std::size_t payload_size) {
    std::vector<std::uint8_t> payload(payload_size);
    for (std::size_t i = 0; i < payload_size; ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    rt::StatsRecorder recorder(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        const auto t0 = rt::now_ns();
        const auto reply =
            client.invoke("Echo", "echo", payload.data(), payload.size());
        recorder.record(rt::now_ns() - t0);
        if (reply.size() != payload.size()) {
            std::fprintf(stderr, "echo mismatch!\n");
            std::exit(1);
        }
    }
    recorder.discard_warmup(static_cast<std::size_t>(requests) / 5);
    return recorder.summarize();
}

} // namespace

int main(int argc, char** argv) {
    const int requests = argc > 1 ? std::atoi(argv[1]) : 2000;
    const std::size_t payload = argc > 2
                                    ? static_cast<std::size_t>(std::atoi(argv[2]))
                                    : 128;

    std::printf("orb_echo: %d requests, %zu-byte payload, TCP on 127.0.0.1\n\n",
                requests, payload);

    // --- Compadres component ORB ---
    {
        net::TcpAcceptor acceptor(0);
        orb::ServerOrb server;
        server.register_servant("Echo", make_echo_servant());
        std::thread accept_thread([&] {
            auto conn = acceptor.accept();
            if (conn != nullptr) server.attach(std::move(conn));
        });
        auto wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
        accept_thread.join();
        orb::ClientOrb client(std::move(wire));
        const auto s = drive(client, requests, payload);
        std::printf("%s\n",
                    rt::StatsRecorder::format_row_us("Compadres ORB", s).c_str());
    }

    // --- RTZen-style hand-coded baseline, same wire format ---
    {
        net::TcpAcceptor acceptor(0);
        rtzen::RtzenServerOrb server;
        server.register_servant("Echo", make_echo_servant());
        std::thread accept_thread([&] {
            auto conn = acceptor.accept();
            if (conn != nullptr) server.attach(std::move(conn));
        });
        auto wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
        accept_thread.join();
        rtzen::RtzenClientOrb client(std::move(wire));
        const auto s = drive(client, requests, payload);
        std::printf("%s\n",
                    rt::StatsRecorder::format_row_us("RTZen baseline", s).c_str());
    }

    std::printf("\nThe Compadres ORB pays a small premium for ports, pools and\n"
                "SMM hops; both stay well inside the 10 ms bound the paper\n"
                "calls typically acceptable for distributed real-time systems.\n");
    return 0;
}
