// Quickstart: the paper's co-located client/server example (Fig. 6),
// built programmatically against the public API.
//
//   IMC (immortal) --P1--> Client.P2
//   Client --P3--> Server.P4        (siblings in level-1 scopes)
//   Server --P5--> Client.P6
//
// Run:  ./quickstart [round_trips]
#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace compadres;

namespace {

std::mutex g_mu;
std::condition_variable g_cv;
int g_replies = 0;

void reply_arrived() {
    {
        std::lock_guard lk(g_mu);
        ++g_replies;
    }
    g_cv.notify_all();
}

void wait_replies(int n) {
    std::unique_lock lk(g_mu);
    g_cv.wait(lk, [&] { return g_replies >= n; });
}

core::InPortConfig pooled_port() {
    core::InPortConfig cfg;
    cfg.buffer_size = 10;
    cfg.min_threads = 1;
    cfg.max_threads = 5;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 1000;

    core::register_builtin_message_types();

    // 1. Memory layout (the CCL <RTSJAttributes> equivalent): one immortal
    //    region plus a pool of level-1 scoped regions.
    core::RtsjAttributes attrs;
    attrs.immortal_size = 4 * 1024 * 1024;
    attrs.scoped_pools = {{1, 200 * 1024, 3}};
    core::Application app("quickstart", attrs);

    // 2. Components: an immortal trigger component and two scoped siblings.
    auto& imc = app.create_immortal<core::Component>("IMC");
    auto& client = app.create_scoped<core::Component>("MyClient", imc, 1);
    auto& server = app.create_scoped<core::Component>("MyServer", imc, 1);

    // 3. Ports and handlers (the generated-skeleton part of the paper's
    //    flow, written by hand here).
    imc.add_out_port<core::MyInteger>("P1", "MyInteger");
    client.add_in_port<core::MyInteger>(
        "P2", "MyInteger", pooled_port(),
        [](core::MyInteger&, core::Smm& smm) {
            auto& p3 = static_cast<core::OutPort<core::MyInteger>&>(
                smm.get_out_port("P3"));
            core::MyInteger* request = p3.get_message();
            request->value = 3;
            p3.send(request, 3);
        });
    client.add_out_port<core::MyInteger>("P3", "MyInteger");
    server.add_in_port<core::MyInteger>(
        "P4", "MyInteger", pooled_port(),
        [](core::MyInteger&, core::Smm& smm) {
            auto& p5 = static_cast<core::OutPort<core::MyInteger>&>(
                smm.get_out_port("P5"));
            core::MyInteger* reply = p5.get_message();
            reply->value = 4;
            p5.send(reply, 3);
        });
    server.add_out_port<core::MyInteger>("P5", "MyInteger");
    client.add_in_port<core::MyInteger>(
        "P6", "MyInteger", pooled_port(),
        [](core::MyInteger&, core::Smm&) { reply_arrived(); });

    // 4. Composition (the CCL equivalent). The framework places the pools
    //    and buffers in IMC's SMM automatically.
    app.connect(imc, "P1", client, "P2");
    app.connect(client, "P3", server, "P4");
    app.connect(server, "P5", client, "P6");
    app.start();

    // 5. Drive round trips and report the paper's statistics.
    auto& p1 = imc.out_port_t<core::MyInteger>("P1");
    rt::StatsRecorder recorder(static_cast<std::size_t>(rounds));
    for (int i = 0; i < rounds; ++i) {
        const auto t0 = rt::now_ns();
        core::MyInteger* trigger = p1.get_message();
        p1.send(trigger, 2);
        wait_replies(i + 1);
        recorder.record(rt::now_ns() - t0);
    }
    recorder.discard_warmup(static_cast<std::size_t>(rounds) / 5);

    const auto s = recorder.summarize();
    std::printf("quickstart: %d round trips through the Fig. 6 topology\n",
                rounds);
    std::printf("%s\n",
                rt::StatsRecorder::format_row_us("co-located ping-pong", s).c_str());

    app.shutdown();
    return 0;
}
