// recompose_pipeline: live re-deploy — apply a new CCL to a RUNNING
// application without dropping a frame.
//
// The paper composes an application once, at startup, from its CCL. This
// example runs the full live-recomposition loop on top of that toolchain:
//
//   1. assemble and start deployment v1 (Source -> Filter, Block policy),
//   2. keep a sender bursting messages the whole time,
//   3. diff v1's CCL against v2's (same app, Filter's port repoliced
//      Block -> Ring, plus a new Auditor tap on the same stream) exactly
//      like `compadresc diff old.ccl new.ccl`,
//   4. apply the delta to the live application under quiesce-reroute-
//      resume, printing the per-route pause,
//   5. diff v2 -> v1 and apply THAT, shrinking back (route removed,
//      Auditor retired) — still without stopping.
//
// Nothing is lost in either direction: every message sent is counted by
// the Filter, and the recompose_* counters + pause histogram land in the
// MetricsRegistry like any other fabric metric.
//
// Run:  ./recompose_pipeline [messages]
#include "compiler/assembler.hpp"
#include "compiler/diff.hpp"
#include "core/messages.hpp"
#include "core/recompose.hpp"
#include "obs/metrics.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace compadres;

namespace {

std::atomic<int> g_filtered{0};
std::atomic<int> g_audited{0};

const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Source</ComponentName>
  <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Filter</ComponentName>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Auditor</ComponentName>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

// Deployment v1: Source -> Filter, Block overflow.
const char* kDeployV1 = R"(
<Application>
 <ApplicationName>LiveDemo</ApplicationName>
 <Component>
  <InstanceName>source</InstanceName><ClassName>Source</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>filter</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>filter</InstanceName><ClassName>Filter</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>32</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

// Deployment v2: the Filter's intake goes lossy-latest (Ring) and an
// Auditor taps the same stream. Everything else is unchanged — and must
// be, for the transition to be applicable live.
const char* kDeployV2 = R"(
<Application>
 <ApplicationName>LiveDemo</ApplicationName>
 <Component>
  <InstanceName>source</InstanceName><ClassName>Source</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>filter</ToComponent><ToPort>in</ToPort></Link>
   <Link><PortType>External</PortType><ToComponent>auditor</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>filter</InstanceName><ClassName>Filter</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>32</BufferSize><Overflow>Ring</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>auditor</InstanceName><ClassName>Auditor</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>32</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

class Source : public core::Component {
public:
    explicit Source(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_out_port<core::MyInteger>("out", "MyInteger");
    }
};

class Filter : public core::Component {
public:
    explicit Filter(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_in_port<core::MyInteger>("in", "MyInteger", port_config("in"),
                                     [](core::MyInteger&, core::Smm&) {
                                         g_filtered.fetch_add(1);
                                     });
    }
};

class Auditor : public core::Component {
public:
    explicit Auditor(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_in_port<core::MyInteger>("in", "MyInteger", port_config("in"),
                                     [](core::MyInteger&, core::Smm&) {
                                         g_audited.fetch_add(1);
                                     });
    }
};

compiler::AssemblyPlan plan_of(const char* ccl) {
    return compiler::validate_and_plan(compiler::parse_cdl_string(kCdl),
                                       compiler::parse_ccl_string(ccl));
}

void apply(core::Application& app, const core::RecomposePlan& delta,
           const core::RecomposeOptions& opts) {
    std::printf("%s", core::describe(delta).c_str());
    const core::RecomposeStats stats = core::apply_recompose(app, delta, opts);
    for (std::uint64_t ns : stats.pause_ns) {
        std::printf("  route paused %.1f us\n",
                    static_cast<double>(ns) / 1000.0);
    }
}

} // namespace

int main(int argc, char** argv) {
    const int messages = argc > 1 ? std::atoi(argv[1]) : 2000;

    core::register_builtin_message_types();
    auto& reg = core::ComponentRegistry::global();
    reg.register_class<Source>("Source");
    reg.register_class<Filter>("Filter");
    reg.register_class<Auditor>("Auditor");

    const compiler::AssemblyPlan v1 = plan_of(kDeployV1);
    const compiler::AssemblyPlan v2 = plan_of(kDeployV2);

    std::printf("=== deployment v1: Source -> Filter [block] ===\n");
    auto app = compiler::assemble(v1);
    app->start();

    obs::MetricsRegistry metrics;
    core::RecomposeOptions opts;
    opts.metrics = &metrics;

    auto& typed =
        app->find("source")->out_port_t<core::MyInteger>("out");
    std::atomic<bool> done{false};
    std::thread sender([&] {
        for (int i = 0; i < messages; ++i) {
            core::MyInteger* msg = typed.get_message();
            msg->value = i;
            typed.send(msg, 5);
            if (i % 50 == 0) {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        }
        done.store(true);
    });

    // Let some traffic through v1, then re-deploy LIVE, mid-burst.
    while (g_filtered.load() < messages / 4 && !done.load()) {
        std::this_thread::yield();
    }
    std::printf("\n=== live re-deploy v1 -> v2 (at message %d) ===\n",
                g_filtered.load());
    apply(*app, compiler::diff_plans(v1, v2), opts);

    while (g_filtered.load() < messages / 2 && !done.load()) {
        std::this_thread::yield();
    }
    std::printf("\n=== live re-deploy v2 -> v1 (shrink back, at %d) ===\n",
                g_filtered.load());
    std::printf("auditor saw %d messages while deployed\n", g_audited.load());
    apply(*app, compiler::diff_plans(v2, v1), opts);

    sender.join();
    app->stop();

    std::printf("\nsent %d, filtered %d, audited %d (no loss on the "
                "surviving route)\n",
                messages, g_filtered.load(), g_audited.load());
    std::printf("recompositions applied: %llu, routes repoliced: %llu\n",
                static_cast<unsigned long long>(
                    metrics.counter("recompose_applied_total", "")
                        .value()),
                static_cast<unsigned long long>(
                    metrics
                        .counter("recompose_routes_repoliced_total", "")
                        .value()));

    const bool ok = g_filtered.load() == messages;
    std::printf("%s\n", ok ? "OK" : "LOST MESSAGES");
    return ok ? 0 : 1;
}
