// control_loop: a periodic hard-real-time control activity built on the
// framework — the classic DRE workload the paper's introduction motivates
// (sensing -> control law -> actuation at a fixed rate, with deadline
// accounting and release-jitter statistics).
//
//   PeriodicTask (5 ms)        Controller (L1)            Plant (L1)
//   sample plant state ──▶ in: PID control law ──cmd──▶ in: apply actuation
//                                              (urgent override port at
//                                               high priority, shadow-style)
//
// Run:  ./control_loop [iterations]
#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/periodic.hpp"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace compadres;

namespace {

std::atomic<int> g_actuations{0};
std::mutex g_mu;
std::condition_variable g_cv;

// The "plant": a first-order system the controller drives to a setpoint.
struct PlantState {
    double position = 0.0;
    std::mutex mu;

    double read() {
        std::lock_guard lk(mu);
        return position;
    }
    void actuate(double command) {
        std::lock_guard lk(mu);
        position += 0.08 * (command - position); // sluggish response
    }
};

core::InPortConfig rt_port() {
    core::InPortConfig cfg;
    cfg.buffer_size = 8;
    cfg.min_threads = 1;
    cfg.max_threads = 1; // control paths are single-threaded by design
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 400;
    constexpr double kSetpoint = 10.0;

    core::register_builtin_message_types();

    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, 256 * 1024, 4}};
    core::Application app("control-loop", attrs);
    PlantState plant;

    auto& sampler = app.create_immortal<core::Component>("Sampler");
    auto& controller = app.create_scoped<core::Component>("Controller",
                                                          sampler, 1);
    auto& actuator = app.create_scoped<core::Component>("Actuator", sampler, 1);

    sampler.add_out_port<core::SensorSample>("reading", "SensorSample");

    // Controller: proportional control with a modest integral term.
    static double integral = 0.0;
    controller.add_in_port<core::SensorSample>(
        "in", "SensorSample", rt_port(),
        [&controller](core::SensorSample& s, core::Smm&) {
            const double error = kSetpoint - s.value;
            integral = std::clamp(integral + 0.02 * error, -5.0, 5.0);
            auto& out = controller.out_port_t<core::SensorSample>("cmd");
            core::SensorSample* cmd = out.get_message();
            cmd->timestamp_ns = s.timestamp_ns;
            cmd->value = kSetpoint + 2.0 * error + integral;
            out.send(cmd, 30);
        });
    controller.add_out_port<core::SensorSample>("cmd", "SensorSample");

    actuator.add_in_port<core::SensorSample>(
        "in", "SensorSample", rt_port(), [&plant](core::SensorSample& cmd, core::Smm&) {
            plant.actuate(cmd.value);
            g_actuations.fetch_add(1);
            g_cv.notify_all();
        });

    app.connect(sampler, "reading", controller, "in");
    app.connect(controller, "cmd", actuator, "in");
    app.start();

    // The periodic release: sample the plant every 5 ms at high priority.
    auto& reading = sampler.out_port_t<core::SensorSample>("reading");
    rt::PeriodicTask sampling_task(
        "sampler", rt::Priority{80}, 5'000'000, [&] {
            core::SensorSample* s = reading.get_message();
            s->timestamp_ns = rt::now_ns();
            s->sensor_id = 0;
            s->value = plant.read();
            reading.send(s, 40);
        });

    std::printf("control_loop: driving the plant to %.1f over %d periods "
                "of 5 ms\n",
                kSetpoint, iterations);
    sampling_task.start();
    {
        std::unique_lock lk(g_mu);
        g_cv.wait(lk, [&] { return g_actuations.load() >= iterations; });
    }
    sampling_task.stop();

    const auto jitter = sampling_task.release_jitter();
    std::printf("plant position after %d cycles: %.3f (setpoint %.1f)\n",
                g_actuations.load(), plant.read(), kSetpoint);
    std::printf("sampling releases: %llu, overruns: %llu\n",
                static_cast<unsigned long long>(sampling_task.release_count()),
                static_cast<unsigned long long>(sampling_task.overrun_count()));
    std::printf("release jitter: median=%.1fus p99-ish(max)=%.1fus\n",
                static_cast<double>(jitter.median) / 1000.0,
                static_cast<double>(jitter.max) / 1000.0);
    if (std::abs(plant.read() - kSetpoint) > 1.0) {
        std::printf("WARNING: controller failed to converge\n");
        return 1;
    }
    std::printf("converged.\n");
    app.shutdown();
    return 0;
}
