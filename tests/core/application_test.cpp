// Application: region layout from RTSJAttributes, lookup, LCA, lifecycle,
// and the paper's Fig. 6 client/server example built programmatically.
#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

using namespace compadres;
using test::TestMsg;

namespace {

class ApplicationTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }

    static core::InPortConfig sync_port() {
        core::InPortConfig cfg;
        cfg.min_threads = cfg.max_threads = 0;
        return cfg;
    }
};

} // namespace

TEST_F(ApplicationTest, RtsjAttributesShapeRegions) {
    core::RtsjAttributes attrs;
    attrs.immortal_size = 1 * 1024 * 1024;
    attrs.scoped_pools = {{1, 200'000, 3}, {2, 100'000, 5}};
    core::Application app("MyApp", attrs);
    EXPECT_EQ(app.immortal().capacity(), 1024u * 1024u);
    EXPECT_EQ(app.pool_for_level(1).total(), 3u);
    EXPECT_EQ(app.pool_for_level(1).scope_size(), 200'000u);
    EXPECT_EQ(app.pool_for_level(2).total(), 5u);
}

TEST_F(ApplicationTest, DuplicatePoolLevelRejected) {
    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, 1000, 1}, {1, 2000, 2}};
    EXPECT_THROW(core::Application("bad", attrs), core::AssemblyError);
}

TEST_F(ApplicationTest, UndeclaredLevelGetsDefaultPool) {
    core::Application app("t");
    memory::ScopePool& pool = app.pool_for_level(7);
    EXPECT_GT(pool.total(), 0u);
    EXPECT_EQ(&pool, &app.pool_for_level(7)); // memoized
}

TEST_F(ApplicationTest, FindAndComponentLookup) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    EXPECT_EQ(app.find("A"), &a);
    EXPECT_EQ(app.find("Z"), nullptr);
    EXPECT_EQ(&app.component("A"), &a);
    EXPECT_THROW(app.component("Z"), core::AssemblyError);
    EXPECT_EQ(app.component_count(), 1u);
}

TEST_F(ApplicationTest, CommonAncestorComputation) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_scoped<core::Component>("B", a, 1);
    auto& c = app.create_scoped<core::Component>("C", a, 1);
    auto& d = app.create_scoped<core::Component>("D", c, 2);
    EXPECT_EQ(&app.common_ancestor(b, c), &a);
    EXPECT_EQ(&app.common_ancestor(b, d), &a);
    EXPECT_EQ(&app.common_ancestor(c, d), &c); // ancestor endpoint
    EXPECT_EQ(&app.common_ancestor(d, d), &d);
    auto& e = app.create_immortal<core::Component>("E");
    EXPECT_EQ(&app.common_ancestor(a, e), &app.root());
}

TEST_F(ApplicationTest, ShutdownIsIdempotent) {
    core::Application app("t");
    auto& p = app.create_immortal<core::Component>("P");
    app.create_scoped<core::Component>("C", p, 1);
    app.shutdown();
    app.shutdown();
    EXPECT_EQ(app.component_count(), 0u);
}

// ---- The paper's Fig. 6 example, built programmatically ----
//
// IMC (immortal) --P1--> Client.P2; Client --P3--> Server.P4 (siblings);
// Server --P5--> Client.P6. Handlers mirror Fig. 7/8: P2 sends the request,
// P4 replies, P6 records the round-trip completion.
namespace {

struct Fig6 {
    core::Application app{"Fig6", [] {
        core::RtsjAttributes attrs;
        attrs.scoped_pools = {{1, 256 * 1024, 4}};
        return attrs;
    }()};
    core::Component* imc = nullptr;
    core::Component* client = nullptr;
    core::Component* server = nullptr;
    test::Collector<int> replies;

    explicit Fig6(const core::InPortConfig& port_cfg) {
        imc = &app.create_immortal<core::Component>("IMC");
        client = &app.create_scoped<core::Component>("MyClient", *imc, 1);
        server = &app.create_scoped<core::Component>("MyServer", *imc, 1);

        imc->add_out_port<core::MyInteger>("P1", "MyInteger");
        client->add_in_port<core::MyInteger>(
            "P2", "MyInteger", port_cfg,
            [this](core::MyInteger&, core::Smm& smm) {
                // Fig. 7: P2's handler gets P3 from the SMM and sends the
                // request to the server.
                auto& p3 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P3"));
                core::MyInteger* req = p3.get_message();
                req->value = 3;
                p3.send(req, 3);
            });
        client->add_out_port<core::MyInteger>("P3", "MyInteger");
        server->add_in_port<core::MyInteger>(
            "P4", "MyInteger", port_cfg,
            [this](core::MyInteger&, core::Smm& smm) {
                auto& p5 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P5"));
                core::MyInteger* reply = p5.get_message();
                reply->value = 4;
                p5.send(reply, 3);
            });
        server->add_out_port<core::MyInteger>("P5", "MyInteger");
        client->add_in_port<core::MyInteger>(
            "P6", "MyInteger", port_cfg,
            [this](core::MyInteger& m, core::Smm&) { replies.add(m.value); });

        app.connect(*imc, "P1", *client, "P2");       // internal
        app.connect(*client, "P3", *server, "P4");    // external (siblings)
        app.connect(*server, "P5", *client, "P6");    // external (siblings)
        app.start();
    }

    void trigger() {
        auto& p1 = imc->out_port_t<core::MyInteger>("P1");
        core::MyInteger* m = p1.get_message();
        p1.send(m, 2);
    }
};

} // namespace

TEST_F(ApplicationTest, Fig6RoundTripSynchronous) {
    core::InPortConfig sync;
    sync.min_threads = sync.max_threads = 0;
    Fig6 fig(sync);
    fig.trigger();
    ASSERT_TRUE(fig.replies.wait_for(1));
    EXPECT_EQ(fig.replies.items().front(), 4);
}

TEST_F(ApplicationTest, Fig6RoundTripPooled) {
    core::InPortConfig pooled;
    pooled.buffer_size = 10;
    pooled.min_threads = 1;
    pooled.max_threads = 5;
    Fig6 fig(pooled);
    for (int i = 0; i < 50; ++i) fig.trigger();
    ASSERT_TRUE(fig.replies.wait_for(50));
    for (const int v : fig.replies.items()) EXPECT_EQ(v, 4);
}

TEST_F(ApplicationTest, Fig6PoolsHostedByImcSmm) {
    core::InPortConfig sync;
    sync.min_threads = sync.max_threads = 0;
    Fig6 fig(sync);
    // All three connections (IMC->Client internal, Client<->Server external)
    // are hosted by IMC: its SMM owns every pool, in IMC's region.
    auto& p3 = fig.client->out_port_t<core::MyInteger>("P3");
    EXPECT_EQ(&p3.smm()->owner(), fig.imc);
    EXPECT_EQ(&p3.pool()->region(), &fig.imc->region());
}

TEST_F(ApplicationTest, Fig6SteadyStateLatencyIsFinite) {
    // A smoke version of the §3.1 measurement loop: steady-state
    // round-trips complete and the recorder sees sane samples.
    core::InPortConfig sync;
    sync.min_threads = sync.max_threads = 0;
    Fig6 fig(sync);
    rt::StatsRecorder rec;
    for (int i = 0; i < 200; ++i) {
        const auto t0 = rt::now_ns();
        fig.trigger();
        ASSERT_TRUE(fig.replies.wait_for(i + 1));
        rec.record(rt::now_ns() - t0);
    }
    rec.discard_warmup(50);
    const auto s = rec.summarize();
    EXPECT_EQ(s.count, 150u);
    EXPECT_GT(s.median, 0);
    EXPECT_GE(s.max, s.median);
}

TEST_F(ApplicationTest, DescribeListsTopologyAndConnections) {
    core::Application app("desc");
    auto& a = app.create_immortal<core::Component>("Alpha");
    auto& b = app.create_scoped<core::Component>("Beta", a, 1);
    a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    const std::string text = app.describe();
    EXPECT_NE(text.find("application 'desc' (2 components)"), std::string::npos);
    EXPECT_NE(text.find("- Alpha [immortal"), std::string::npos);
    EXPECT_NE(text.find("  - Beta [scoped L1"), std::string::npos);
    EXPECT_NE(text.find("Alpha.out -> Beta.in <TestMsg> via SMM of Alpha"),
              std::string::npos);
}

// ---- counter sources and the observability plane ----

TEST_F(ApplicationTest, CounterSourceRemovalRacesTraceReport) {
    // remove_counter_source must block until any in-flight trace_report is
    // done with the callback, so an owner can free captured state right
    // after removal. Hammer report/remove/re-add from two threads while the
    // callbacks read through a pointer that removal invalidates.
    core::Application app("race");
    std::atomic<bool> stop{false};
    std::atomic<int> reports{0};

    std::thread reporter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const core::TraceReport report = app.trace_report();
            for (const core::CounterGroup& g : report.counters) {
                // Groups must always be fully formed — a torn callback
                // would surface here as a dead pointer dereference.
                EXPECT_FALSE(g.source.empty());
            }
            reports.fetch_add(1, std::memory_order_relaxed);
        }
    });

    for (int round = 0; round < 200; ++round) {
        auto counted = std::make_unique<std::uint64_t>(7);
        const std::uint64_t token =
            app.add_counter_source([raw = counted.get()] {
                core::CounterGroup g;
                g.source = "racy";
                g.counters = {{"value", *raw}};
                return g;
            });
        app.remove_counter_source(token);
        // Safe to free immediately: the contract says no in-flight
        // trace_report still holds the callback.
        counted.reset();
    }
    stop.store(true);
    reporter.join();
    EXPECT_GT(reports.load(), 0);
}

TEST_F(ApplicationTest, TraceReportToStringWithZeroHopPorts) {
    core::Application app("zero-hop");
    auto& a = app.create_immortal<core::Component>("Alpha");
    auto& b = app.create_immortal<core::Component>("Beta");
    a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    // No traffic at all: every counter zero, no latency series.
    const core::TraceReport report = app.trace_report();
    ASSERT_EQ(report.ports.size(), 1u);
    EXPECT_EQ(report.ports[0].delivered, 0u);
    EXPECT_FALSE(report.ports[0].traced);
    const std::string text = report.to_string();
    EXPECT_NE(text.find("1 port(s)"), std::string::npos);
    EXPECT_NE(text.find("Beta.in"), std::string::npos);
    EXPECT_NE(text.find("delivered=0"), std::string::npos);
    // Zero-hop ports must not print latency quantiles (nothing recorded).
    EXPECT_EQ(text.find("queue-wait"), std::string::npos);
}

TEST_F(ApplicationTest, PublishMetricsFlattensFabricIntoRegistry) {
    core::Application app("metrics");
    auto& a = app.create_immortal<core::Component>("Alpha");
    auto& b = app.create_immortal<core::Component>("Beta");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    app.add_counter_source([] {
        core::CounterGroup g;
        g.source = "wire";
        g.counters = {{"frames", 5}};
        return g;
    });
    app.start();
    for (int i = 0; i < 3; ++i) {
        TestMsg* msg = out.get_message();
        msg->value = i;
        out.send(msg, 2);
    }
    obs::MetricsRegistry reg;
    app.publish_metrics(reg);
    const std::string json = reg.json_snapshot();
    EXPECT_NE(json.find("\"compadres_metrics_port_Beta.in_delivered\": 3"),
              std::string::npos);
    EXPECT_NE(json.find("\"compadres_metrics_wire_frames\": 5"),
              std::string::npos);

    // The live-source variant re-samples on every exposition.
    obs::MetricsRegistry live;
    const std::uint64_t token = app.register_metrics_source(live);
    const std::string text = live.prometheus_text();
    EXPECT_NE(text.find("compadres_metrics_port_Beta_in_delivered 3"),
              std::string::npos);
    live.remove_source(token);
}
