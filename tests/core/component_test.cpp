// Component: construction in regions, port management, hierarchy, levels.
#include "core/application.hpp"
#include "core/messages.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

using namespace compadres;
using test::TestMsg;

namespace {

class ComponentTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }
};

/// A component class in the paper's style: ports declared in the
/// constructor, _start() implemented by the user.
class Producer : public core::Component {
public:
    explicit Producer(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_out_port<TestMsg>("out", "TestMsg");
    }

    void _start() override { started = true; }

    bool started = false;
};

} // namespace

TEST_F(ComponentTest, ImmortalComponentLivesInImmortalRegion) {
    core::Application app("t");
    auto& c = app.create_immortal<core::Component>("A");
    EXPECT_EQ(&c.region(), &app.immortal());
    EXPECT_EQ(c.level(), 0);
    EXPECT_EQ(c.parent(), &app.root());
}

TEST_F(ComponentTest, ScopedComponentLivesInPooledScope) {
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    auto& child = app.create_scoped<core::Component>("C", parent, 1);
    EXPECT_EQ(child.region().kind(), memory::RegionKind::kScoped);
    EXPECT_EQ(child.level(), 1);
    EXPECT_EQ(child.parent(), &parent);
    EXPECT_EQ(child.region().parent(), &parent.region());
}

TEST_F(ComponentTest, NestedScopedComponentsStackLevels) {
    // The paper's Fig. 2: A (level 1) contains B and C; C contains D and E.
    core::Application app("t");
    auto& a = app.create_scoped<core::Component>("A", app.root(), 1);
    auto& b = app.create_scoped<core::Component>("B", a, 2);
    auto& c = app.create_scoped<core::Component>("C", a, 2);
    auto& d = app.create_scoped<core::Component>("D", c, 3);
    auto& e = app.create_scoped<core::Component>("E", c, 3);
    EXPECT_EQ(a.level(), 1);
    EXPECT_EQ(b.level(), 2);
    EXPECT_EQ(d.level(), 3);
    EXPECT_EQ(e.level(), 3);
    EXPECT_EQ(a.children().size(), 2u);
    EXPECT_EQ(c.children().size(), 2u);
    EXPECT_TRUE(d.region().has_ancestor(&a.region()));
    EXPECT_FALSE(b.region().has_ancestor(&c.region()));
}

TEST_F(ComponentTest, StartHookRunsOnApplicationStart) {
    core::Application app("t");
    auto& p = app.create_immortal<Producer>("P");
    EXPECT_FALSE(p.started);
    app.start();
    EXPECT_TRUE(p.started);
}

TEST_F(ComponentTest, StartIsIdempotent) {
    core::Application app("t");
    auto& p = app.create_immortal<Producer>("P");
    app.start();
    p.started = false;
    app.start(); // second call must not re-run _start
    EXPECT_FALSE(p.started);
}

TEST_F(ComponentTest, PortLookupByName) {
    core::Application app("t");
    auto& c = app.create_immortal<core::Component>("A");
    c.add_out_port<TestMsg>("out", "TestMsg");
    core::InPortConfig sync{};
    sync.min_threads = sync.max_threads = 0;
    c.add_in_port<TestMsg>("in", "TestMsg", sync, [](TestMsg&, core::Smm&) {});
    EXPECT_NE(c.find_out_port("out"), nullptr);
    EXPECT_NE(c.find_in_port("in"), nullptr);
    EXPECT_EQ(c.find_out_port("in"), nullptr);
    EXPECT_EQ(c.find_in_port("missing"), nullptr);
    EXPECT_THROW(c.out_port("missing"), core::PortError);
    EXPECT_THROW(c.in_port("missing"), core::PortError);
}

TEST_F(ComponentTest, TypedPortAccessorChecksType) {
    core::Application app("t");
    auto& c = app.create_immortal<core::Component>("A");
    c.add_out_port<TestMsg>("out", "TestMsg");
    EXPECT_NO_THROW(c.out_port_t<TestMsg>("out"));
    EXPECT_THROW(c.out_port_t<core::MyInteger>("out"), core::PortError);
}

TEST_F(ComponentTest, PortConfigComesFromContext) {
    core::ComponentRegistry::global().register_class<core::Component>(
        "Component");
    core::Application app("t");
    core::InPortConfig custom;
    custom.buffer_size = 77;
    custom.min_threads = 3;
    custom.max_threads = 9;
    auto& c = app.create_by_name("Component", "A", nullptr,
                                 core::ComponentType::kImmortal, 0,
                                 {{"in", custom}});
    EXPECT_EQ(c.port_config("in").buffer_size, 77u);
    EXPECT_EQ(c.port_config("in").max_threads, 9u);
    // Fallback for ports the CCL did not configure.
    EXPECT_EQ(c.port_config("other").buffer_size,
              core::InPortConfig{}.buffer_size);
}

TEST_F(ComponentTest, ComponentObjectsAllocatedInsideTheirRegion) {
    core::Application app("t");
    const std::size_t imm_before = app.immortal().used();
    app.create_immortal<Producer>("P");
    EXPECT_GT(app.immortal().used(), imm_before);

    auto& parent = app.create_immortal<core::Component>("Parent");
    memory::ScopePool& pool = app.pool_for_level(1);
    const std::size_t avail_before = pool.available();
    auto& child = app.create_scoped<Producer>("Child", parent, 1);
    EXPECT_EQ(pool.available(), avail_before - 1);
    EXPECT_GT(child.region().used(), 0u);
}

TEST_F(ComponentTest, DuplicateInstanceNameRejected) {
    core::Application app("t");
    app.create_immortal<core::Component>("A");
    EXPECT_THROW(app.create_immortal<core::Component>("A"),
                 core::AssemblyError);
}

TEST_F(ComponentTest, ShutdownReturnsScopesToPools) {
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    memory::ScopePool& pool = app.pool_for_level(1);
    const std::size_t total = pool.available();
    app.create_scoped<core::Component>("C1", parent, 1);
    app.create_scoped<core::Component>("C2", parent, 1);
    EXPECT_EQ(pool.available(), total - 2);
    app.shutdown();
    EXPECT_EQ(pool.available(), total);
}

TEST_F(ComponentTest, ScopedComponentDestructorRunsOnShutdown) {
    static int destroyed = 0;
    destroyed = 0;
    struct Tracked : core::Component {
        explicit Tracked(const core::ComponentContext& ctx)
            : core::Component(ctx) {}
        ~Tracked() override { ++destroyed; }
    };
    {
        core::Application app("t");
        auto& parent = app.create_immortal<core::Component>("P");
        app.create_scoped<Tracked>("C", parent, 1);
        EXPECT_EQ(destroyed, 0);
        app.shutdown();
        EXPECT_EQ(destroyed, 1);
    }
    EXPECT_EQ(destroyed, 1); // not destroyed twice by the app destructor
}

TEST_F(ComponentTest, SmmIsCreatedLazilyInOwnRegion) {
    core::Application app("t");
    auto& c = app.create_immortal<core::Component>("A");
    EXPECT_EQ(c.smm_if_created(), nullptr);
    core::Smm& smm = c.smm();
    EXPECT_EQ(&smm, c.smm_if_created());
    EXPECT_EQ(&smm.region(), &c.region());
    EXPECT_EQ(&smm.owner(), &c);
}

TEST_F(ComponentTest, CreateByNameRequiresRegisteredClass) {
    core::Application app("t");
    EXPECT_THROW(app.create_by_name("NoSuchClass", "x", nullptr,
                                    core::ComponentType::kImmortal, 0),
                 core::RegistryError);
}

TEST_F(ComponentTest, RegisteredClassCreatableByName) {
    core::ComponentRegistry::global().register_class<Producer>("Producer");
    core::Application app("t");
    core::Component& c = app.create_by_name(
        "Producer", "MyProducer", nullptr, core::ComponentType::kImmortal, 0);
    EXPECT_NE(dynamic_cast<Producer*>(&c), nullptr);
    EXPECT_EQ(c.instance_name(), "MyProducer");
}
