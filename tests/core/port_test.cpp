// Ports: typed connections, getMessage()/send(), delivery, validation.
#include "core/application.hpp"
#include "core/messages.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

using namespace compadres;
using test::TestMsg;

namespace {

class PortTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }
};

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.buffer_size = 8;
    cfg.min_threads = 0;
    cfg.max_threads = 0; // synchronous: caller runs the handler
    return cfg;
}

core::InPortConfig pooled_port(std::size_t buffer = 8, std::size_t threads = 1) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = threads;
    cfg.max_threads = threads;
    return cfg;
}

} // namespace

TEST_F(PortTest, SendDeliversToConnectedInPort) {
    core::Application app("t");
    auto& sender = app.create_immortal<core::Component>("Sender");
    auto& receiver = app.create_immortal<core::Component>("Receiver");
    test::Collector<int> got;
    auto& out = sender.add_out_port<TestMsg>("out", "TestMsg");
    receiver.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                                  [&](TestMsg& m, core::Smm&) { got.add(m.value); });
    app.connect(sender, "out", receiver, "in");

    TestMsg* msg = out.get_message();
    msg->value = 99;
    out.send(msg, 5);
    ASSERT_TRUE(got.wait_for(1));
    EXPECT_EQ(got.items().front(), 99);
}

TEST_F(PortTest, SendOnUnconnectedPortThrows) {
    core::Application app("t");
    auto& sender = app.create_immortal<core::Component>("Sender");
    auto& out = sender.add_out_port<TestMsg>("out", "TestMsg");
    EXPECT_THROW(out.get_message(), core::PortError); // no pool yet
    TestMsg dummy;
    EXPECT_THROW(out.send(&dummy, 1), core::PortError);
}

TEST_F(PortTest, TypeMismatchRejectedAtWiring) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<core::MyInteger>("in", "MyInteger", sync_port(),
                                   [](core::MyInteger&, core::Smm&) {});
    EXPECT_THROW(app.connect(a, "out", b, "in"), core::PortError);
}

TEST_F(PortTest, DuplicateConnectionRejected) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    EXPECT_THROW(app.connect(a, "out", b, "in"), core::PortError);
}

TEST_F(PortTest, DuplicatePortNameRejected) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    a.add_out_port<TestMsg>("p", "TestMsg");
    EXPECT_THROW(a.add_out_port<TestMsg>("p", "TestMsg"), core::PortError);
    EXPECT_THROW(a.add_in_port<TestMsg>("p", "TestMsg", sync_port(),
                                        [](TestMsg&, core::Smm&) {}),
                 core::PortError);
}

TEST_F(PortTest, MessageReturnsToPoolAfterProcessing) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in", /*pool_capacity=*/2);
    ASSERT_NE(out.pool(), nullptr);
    const std::size_t before = out.pool()->available();
    for (int i = 0; i < 10; ++i) {
        TestMsg* m = out.get_message();
        m->value = i;
        out.send(m, 1);
    }
    // Synchronous path: all sends completed inline, pool fully recycled.
    EXPECT_EQ(out.pool()->available(), before);
    EXPECT_EQ(out.sent_count(), 10u);
}

TEST_F(PortTest, FanOutClonesToEveryTarget) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& c = app.create_immortal<core::Component>("C");
    test::Collector<std::string> got;
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg& m, core::Smm&) {
                               got.add("b" + std::to_string(m.value));
                           });
    c.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg& m, core::Smm&) {
                               got.add("c" + std::to_string(m.value));
                           });
    app.connect(a, "out", b, "in");
    app.connect(a, "out", c, "in");
    TestMsg* m = out.get_message();
    m->value = 3;
    out.send(m, 1);
    ASSERT_TRUE(got.wait_for(2));
    const auto items = got.items();
    EXPECT_EQ(items.size(), 2u);
    EXPECT_NE(std::find(items.begin(), items.end(), "b3"), items.end());
    EXPECT_NE(std::find(items.begin(), items.end(), "c3"), items.end());
}

TEST_F(PortTest, PooledDispatchRunsOnWorkerThread) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::atomic<bool> different_thread{false};
    test::Waiter done;
    const auto sender_id = std::this_thread::get_id();
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(),
                           [&](TestMsg&, core::Smm&) {
                               different_thread.store(
                                   std::this_thread::get_id() != sender_id);
                               done.notify();
                           });
    app.connect(a, "out", b, "in");
    TestMsg* m = out.get_message();
    out.send(m, 1);
    ASSERT_TRUE(done.wait_for(1));
    EXPECT_TRUE(different_thread.load());
    app.shutdown();
}

TEST_F(PortTest, SynchronousRunsOnCallerThread) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::thread::id handler_thread;
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg&, core::Smm&) {
                               handler_thread = std::this_thread::get_id();
                           });
    app.connect(a, "out", b, "in");
    out.send(out.get_message(), 1);
    EXPECT_EQ(handler_thread, std::this_thread::get_id());
}

TEST_F(PortTest, HigherPriorityMessagesProcessedFirst) {
    // Fill the buffer while the single worker is blocked, then check the
    // backlog drains highest-priority-first (the paper's dispatch rule).
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Waiter gate_entered;
    std::mutex gate;
    test::Collector<int> order;
    gate.lock();
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(8, 1),
                           [&](TestMsg& m, core::Smm&) {
                               if (m.tag == 0) {
                                   gate_entered.notify();
                                   std::lock_guard lk(gate); // block on first
                               } else {
                                   order.add(m.value);
                               }
                           });
    app.connect(a, "out", b, "in", /*pool_capacity=*/16);

    TestMsg* blocker = out.get_message();
    blocker->tag = 0;
    out.send(blocker, 50);
    ASSERT_TRUE(gate_entered.wait_for(1));

    for (const int prio : {2, 9, 5, 7, 1}) {
        TestMsg* m = out.get_message();
        m->tag = 1;
        m->value = prio;
        out.send(m, prio);
    }
    gate.unlock();
    ASSERT_TRUE(order.wait_for(5));
    EXPECT_EQ(order.items(), (std::vector<int>{9, 7, 5, 2, 1}));
    app.shutdown();
}

TEST_F(PortTest, HandlerExceptionContainedAndCounted) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Waiter done;
    auto& in = b.add_in_port<TestMsg>(
        "in", "TestMsg", pooled_port(), [&](TestMsg& m, core::Smm&) {
            done.notify();
            if (m.value == 13) throw std::runtime_error("unlucky");
        });
    app.connect(a, "out", b, "in");
    TestMsg* bad = out.get_message();
    bad->value = 13;
    out.send(bad, 1);
    TestMsg* good = out.get_message();
    good->value = 1;
    out.send(good, 1);
    ASSERT_TRUE(done.wait_for(2));
    app.shutdown();
    EXPECT_EQ(in.error_count(), 1u);
    EXPECT_EQ(in.delivered_count(), 2u);
    // Both messages returned to the pool despite the throw.
    EXPECT_EQ(out.pool()->available(), out.pool()->capacity());
}

TEST_F(PortTest, BufferBoundBlocksSender) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::mutex gate;
    test::Waiter entered;
    gate.lock();
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(/*buffer=*/2, 1),
                           [&](TestMsg&, core::Smm&) {
                               entered.notify();
                               std::lock_guard lk(gate);
                           });
    app.connect(a, "out", b, "in", /*pool_capacity=*/16);

    // One in the handler + buffer bound of 2 => a 4th send must block.
    std::atomic<int> sent{0};
    std::thread sender([&] {
        for (int i = 0; i < 4; ++i) {
            out.send(out.get_message(), 1);
            sent.fetch_add(1);
        }
    });
    ASSERT_TRUE(entered.wait_for(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_LT(sent.load(), 4);
    gate.unlock();
    sender.join();
    EXPECT_EQ(sent.load(), 4);
    app.shutdown();
}

TEST_F(PortTest, QualifiedNameCombinesInstanceAndPort) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("MyClient");
    auto& out = a.add_out_port<TestMsg>("P3", "TestMsg");
    EXPECT_EQ(out.qualified_name(), "MyClient.P3");
}

TEST_F(PortTest, DefaultPriorityAppliesWhenUnspecified) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Collector<int> prio_seen;
    // Synchronous port: handler runs inline; we capture delivered priority
    // via a second, pooled port? Simpler: set default and check the setter.
    out.set_default_priority(42);
    EXPECT_EQ(out.default_priority(), 42);
    out.set_default_priority(-7); // clamps
    EXPECT_EQ(out.default_priority(), rt::Priority::kMin);
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg&, core::Smm&) { prio_seen.add(0); });
    app.connect(a, "out", b, "in");
    out.send(out.get_message());
    EXPECT_TRUE(prio_seen.wait_for(1));
}
