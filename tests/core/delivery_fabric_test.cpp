// The credit-based delivery fabric: overflow policies, eager pool
// resolution, shared-dispatcher isolation, and hop-level tracing.
#include "core/application.hpp"
#include "core/hooks.hpp"
#include "core/hop_trace.hpp"
#include "core/messages.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace compadres;
using test::TestMsg;

namespace {

class DeliveryFabricTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }
};

core::InPortConfig pooled_port(std::size_t buffer = 8, std::size_t threads = 1) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = threads;
    cfg.max_threads = threads;
    return cfg;
}

core::InPortConfig ring_port(std::size_t buffer, std::size_t threads = 1) {
    core::InPortConfig cfg = pooled_port(buffer, threads);
    cfg.policy.overflow = core::OverflowPolicy::kRingOverwrite;
    return cfg;
}

core::InPortConfig shared_port(std::size_t buffer = 2) {
    core::InPortConfig cfg = pooled_port(buffer, 1);
    cfg.strategy = core::ThreadpoolStrategy::kShared;
    return cfg;
}

} // namespace

TEST_F(DeliveryFabricTest, PoolResolvedEagerlyAtWireTime) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    EXPECT_EQ(out.pool(), nullptr);
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in", /*pool_capacity=*/4);
    // No get_message() yet — the pool must already be resolved and sized.
    ASSERT_NE(out.pool(), nullptr);
    EXPECT_EQ(out.pool()->capacity(), 4u);
    app.shutdown();
}

TEST_F(DeliveryFabricTest, LateWiringGrowsSharedPoolNoExhaustionDeadlock) {
    // Regression: two connections of the same message type share the host
    // SMM's per-type pool. The second connection used to lose its capacity
    // reservation once the pool had materialized, so holding both
    // connections' worth of in-flight messages exhausted the pool and
    // deadlocked the pipeline.
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& c = app.create_immortal<core::Component>("C");
    auto& d = app.create_immortal<core::Component>("D");
    auto& out1 = a.add_out_port<TestMsg>("out1", "TestMsg");
    auto& out2 = c.add_out_port<TestMsg>("out2", "TestMsg");
    test::Collector<int> got;
    b.add_in_port<TestMsg>("in1", "TestMsg", pooled_port(4, 1),
                           [&](TestMsg& m, core::Smm&) { got.add(m.value); });
    d.add_in_port<TestMsg>("in2", "TestMsg", pooled_port(4, 1),
                           [&](TestMsg& m, core::Smm&) { got.add(m.value); });

    app.connect(a, "out1", b, "in1", /*pool_capacity=*/3);
    // Materialize the pool and start traffic on the first connection.
    TestMsg* warm = out1.get_message();
    warm->value = 0;
    out1.send(warm, 1);
    ASSERT_TRUE(got.wait_for(1));
    ASSERT_EQ(out1.pool()->capacity(), 3u);

    // Second connection wired after traffic started: the shared pool must
    // GROW by its reservation, not silently keep the old capacity.
    app.connect(c, "out2", d, "in2", /*pool_capacity=*/4);
    EXPECT_EQ(out2.pool(), out1.pool());
    EXPECT_EQ(out2.pool()->capacity(), 7u);

    // Both connections can now hold a full burst in flight concurrently.
    for (int i = 1; i <= 3; ++i) {
        TestMsg* m = out1.get_message();
        m->value = i;
        out1.send(m, 1);
    }
    for (int i = 4; i <= 7; ++i) {
        TestMsg* m = out2.get_message();
        m->value = i;
        out2.send(m, 1);
    }
    ASSERT_TRUE(got.wait_for(8));
    app.shutdown();
}

TEST_F(DeliveryFabricTest, RingOverwriteEvictsStalestQueuedMessage) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::mutex gate;
    test::Waiter entered;
    test::Collector<int> got;
    gate.lock();
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", ring_port(/*buffer=*/2),
                                      [&](TestMsg& m, core::Smm&) {
                                          if (m.tag == 0) {
                                              entered.notify();
                                              std::lock_guard lk(gate);
                                          } else {
                                              got.add(m.value);
                                          }
                                      });
    app.connect(a, "out", b, "in", /*pool_capacity=*/8);

    TestMsg* blocker = out.get_message();
    blocker->tag = 0;
    out.send(blocker, 1);
    ASSERT_TRUE(entered.wait_for(1));

    // Credit budget is 2: the blocker (mid-process) holds one, the first
    // queued message the other. Each further send evicts the stalest queued
    // message instead of blocking the sender — freshest value wins.
    for (int i = 1; i <= 3; ++i) {
        TestMsg* m = out.get_message();
        m->tag = 1;
        m->value = i;
        out.send(m, 1);
    }
    gate.unlock();
    ASSERT_TRUE(got.wait_for(1));
    app.shutdown();
    EXPECT_EQ(got.items(), (std::vector<int>{3})); // only the freshest
    EXPECT_EQ(in.overwritten_count(), 2u);
    EXPECT_EQ(in.dropped_count(), 0u);
    EXPECT_EQ(in.processed_count(), 2u); // blocker + freshest
    // Every message (including evicted ones) went back to the pool.
    EXPECT_EQ(out.pool()->available(), out.pool()->capacity());
}

TEST_F(DeliveryFabricTest, RingOverwriteDropsWhenNothingQueued) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::mutex gate;
    test::Waiter entered;
    gate.lock();
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", ring_port(/*buffer=*/1),
                                      [&](TestMsg&, core::Smm&) {
                                          entered.notify();
                                          std::lock_guard lk(gate);
                                      });
    app.connect(a, "out", b, "in", /*pool_capacity=*/4);

    out.send(out.get_message(), 1);
    ASSERT_TRUE(entered.wait_for(1));
    // The only credit is held by the handler and nothing is queued, so a
    // ring port sheds the incoming message rather than blocking the sender.
    const auto t0 = std::chrono::steady_clock::now();
    out.send(out.get_message(), 1);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::milliseconds(500)); // did not block
    EXPECT_EQ(in.dropped_count(), 1u);
    EXPECT_EQ(in.overwritten_count(), 0u);
    gate.unlock();
    app.shutdown();
    EXPECT_EQ(in.processed_count(), 1u);
    EXPECT_EQ(out.pool()->available(), out.pool()->capacity());
}

TEST_F(DeliveryFabricTest, SharedDispatcherIsolatesPortBudgets) {
    // Two ports on one shared dispatcher: port A saturating its credit
    // budget (handler blocked, buffer full) must not block senders of port
    // B — admission is per-port, and the shared queue never blocks a push.
    core::Application app("t");
    auto& sa = app.create_immortal<core::Component>("SA");
    auto& sb = app.create_immortal<core::Component>("SB");
    auto& ra = app.create_immortal<core::Component>("RA");
    auto& rb = app.create_immortal<core::Component>("RB");
    auto& out_a = sa.add_out_port<TestMsg>("outA", "TestMsg");
    auto& out_b = sb.add_out_port<TestMsg>("outB", "TestMsg");
    std::mutex gate;
    test::Waiter entered;
    test::Collector<int> got_b;
    gate.lock();
    auto& in_a = ra.add_in_port<TestMsg>("inA", "TestMsg", shared_port(2),
                                         [&](TestMsg&, core::Smm&) {
                                             entered.notify();
                                             std::lock_guard lk(gate);
                                         });
    auto& in_b = rb.add_in_port<TestMsg>("inB", "TestMsg", shared_port(4),
                                         [&](TestMsg& m, core::Smm&) {
                                             got_b.add(m.value);
                                         });
    app.connect(sa, "outA", ra, "inA", /*pool_capacity=*/8);
    app.connect(sb, "outB", rb, "inB", /*pool_capacity=*/8);
    ASSERT_EQ(in_a.dispatcher(), in_b.dispatcher()); // genuinely shared

    out_a.send(out_a.get_message(), 1); // occupies the only shared worker
    ASSERT_TRUE(entered.wait_for(1));
    out_a.send(out_a.get_message(), 1); // fills port A's remaining credit
    ASSERT_EQ(in_a.credits().available(), 0u);

    // Port B's senders must sail through while port A is saturated.
    test::Waiter b_sent;
    std::thread sender([&] {
        for (int i = 1; i <= 3; ++i) {
            TestMsg* m = out_b.get_message();
            m->value = i;
            out_b.send(m, 1);
            b_sent.notify();
        }
    });
    EXPECT_TRUE(b_sent.wait_for(3)); // would time out if B blocked on A
    sender.join();
    EXPECT_EQ(in_b.delivered_count(), 3u);

    gate.unlock();
    ASSERT_TRUE(got_b.wait_for(3));
    app.shutdown();
    EXPECT_EQ(in_a.processed_count(), 2u);
    EXPECT_EQ(in_b.processed_count(), 3u);
    EXPECT_EQ(in_a.credits().stall_count(), 0u); // A's senders never waited
}

TEST_F(DeliveryFabricTest, MultiProducerCreditStressStaysBalanced) {
    // TSan workload for the whole fabric: concurrent senders racing the
    // credit gates, the intake queue, and the pool.
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::atomic<int> processed{0};
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(4, 2),
                                      [&](TestMsg&, core::Smm&) {
                                          processed.fetch_add(1);
                                      });
    app.connect(a, "out", b, "in", /*pool_capacity=*/16);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> senders;
    for (int t = 0; t < kThreads; ++t) {
        senders.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                TestMsg* m = out.get_message();
                m->value = i;
                out.send(m, (t + i) % 10);
            }
        });
    }
    for (auto& s : senders) s.join();
    app.shutdown(); // drains the backlog before joining workers
    EXPECT_EQ(processed.load(), kThreads * kPerThread);
    EXPECT_EQ(in.delivered_count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(in.in_flight(), 0u);
    EXPECT_LE(in.credits().depth_high_water(), in.credits().limit());
    EXPECT_EQ(out.pool()->available(), out.pool()->capacity());
}

TEST_F(DeliveryFabricTest, UncontendedHopTakesExactlyOneLock) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Collector<int> got;
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(128, 1),
                                      [&](TestMsg& m, core::Smm&) {
                                          got.add(m.value);
                                      });
    app.connect(a, "out", b, "in", /*pool_capacity=*/256);
    ASSERT_NE(in.dispatcher(), nullptr);

    constexpr int kHops = 100;
    for (int i = 0; i < kHops; ++i) {
        TestMsg* m = out.get_message();
        m->value = i;
        out.send(m, 1);
    }
    ASSERT_TRUE(got.wait_for(kHops));
    // The budget (128) was never exhausted, so no sender stalled and every
    // hop cost exactly one lock acquisition: the intake-queue push.
    EXPECT_EQ(in.credits().stall_count(), 0u);
    EXPECT_EQ(in.dispatcher()->queue_lock_count(),
              static_cast<std::uint64_t>(kHops));
    app.shutdown();
}

TEST_F(DeliveryFabricTest, TraceReportCollectsCountersAndQuantiles) {
    // Tracing is off by default: the hot path sees a null sink.
    ASSERT_EQ(core::hooks::sink(), nullptr);
    core::HopTraceRecorder recorder;
    core::hooks::set_sink(&recorder);

    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Collector<int> got;
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(8, 1),
                           [&](TestMsg& m, core::Smm&) {
                               std::this_thread::sleep_for(
                                   std::chrono::microseconds(200));
                               got.add(m.value);
                           });
    app.connect(a, "out", b, "in");

    constexpr int kHops = 20;
    for (int i = 0; i < kHops; ++i) {
        TestMsg* m = out.get_message();
        m->value = i;
        out.send(m, 2);
    }
    ASSERT_TRUE(got.wait_for(kHops));

    const core::TraceReport report = app.trace_report();
    ASSERT_EQ(report.ports.size(), 1u);
    const core::PortTrace& row = report.ports[0];
    EXPECT_EQ(row.port, "B.in");
    EXPECT_EQ(row.delivered, static_cast<std::uint64_t>(kHops));
    EXPECT_EQ(row.processed, static_cast<std::uint64_t>(kHops));
    EXPECT_EQ(row.errors, 0u);
    EXPECT_EQ(row.buffer_limit, 8u);
    EXPECT_GE(row.depth_high_water, 1u);
    EXPECT_LE(row.depth_high_water, 8u);
    EXPECT_FALSE(row.dispatcher.empty());
    ASSERT_TRUE(row.traced);
    EXPECT_EQ(row.total.count, static_cast<std::size_t>(kHops));
    // The handler sleeps ~200us, so the split must attribute real time to
    // handler latency and keep total >= handler >= 0, total >= queue wait.
    EXPECT_GE(row.handler.median, 100'000);
    EXPECT_GE(row.total.median, row.handler.median);
    EXPECT_GE(row.queue_wait.median, 0);
    // One intake-lock acquisition per hop; the slow handler makes the
    // sender outrun the 8-credit budget, and the report must agree with
    // the per-port stall counter about how often it waited.
    EXPECT_GE(report.queue_lock_acquisitions,
              static_cast<std::uint64_t>(kHops));
    EXPECT_EQ(report.credit_stalls, row.credit_stalls);

    const std::string text = report.to_string();
    EXPECT_NE(text.find("B.in"), std::string::npos);
    EXPECT_NE(text.find("queue-wait"), std::string::npos);

    app.shutdown();
    core::hooks::clear();
}

TEST_F(DeliveryFabricTest, TraceReportWorksWithoutSinkInstalled) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Collector<int> got;
    b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(),
                           [&](TestMsg& m, core::Smm&) { got.add(m.value); });
    app.connect(a, "out", b, "in");
    out.send(out.get_message(), 1);
    ASSERT_TRUE(got.wait_for(1));
    const core::TraceReport report = app.trace_report();
    ASSERT_EQ(report.ports.size(), 1u);
    EXPECT_EQ(report.ports[0].delivered, 1u);
    EXPECT_FALSE(report.ports[0].traced); // counters live, quantiles absent
    app.shutdown();
}
