// Shared helpers for core-framework tests.
#pragma once

#include "core/application.hpp"
#include "core/messages.hpp"
#include "core/registry.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace compadres::test {

struct TestMsg {
    int value = 0;
    int tag = 0;
};

inline void register_test_types() {
    core::register_builtin_message_types();
    core::MessageTypeRegistry::global().register_type<TestMsg>("TestMsg");
}

/// Counts events across threads and lets the test block until N happened.
class Waiter {
public:
    void notify() {
        // Notify while holding the lock: a woken waiter may destroy this
        // Waiter as soon as it can re-acquire mu_, so the signal must not
        // touch cv_ after the unlock.
        std::lock_guard lk(mu_);
        ++count_;
        cv_.notify_all();
    }

    /// True if `n` notifications arrived within `timeout`.
    bool wait_for(int n, std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(2000)) {
        std::unique_lock lk(mu_);
        return cv_.wait_for(lk, timeout, [&] { return count_ >= n; });
    }

    int count() const {
        std::lock_guard lk(mu_);
        return count_;
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    int count_ = 0;
};

/// Thread-safe value collector for observing handler deliveries.
template <typename T>
class Collector {
public:
    void add(T v) {
        {
            std::lock_guard lk(mu_);
            items_.push_back(std::move(v));
        }
        waiter_.notify();
    }

    bool wait_for(int n, std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(2000)) {
        return waiter_.wait_for(n, timeout);
    }

    std::vector<T> items() const {
        std::lock_guard lk(mu_);
        return items_;
    }

private:
    mutable std::mutex mu_;
    std::vector<T> items_;
    Waiter waiter_;
};

} // namespace compadres::test
