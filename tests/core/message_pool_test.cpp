// MessagePool: the shared-object mechanism — pooled messages living inside
// the SMM's region, acquired via getMessage() and returned after process().
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "memory/immortal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

using namespace compadres;

namespace {
struct Payload {
    int value = 0;
    double weight = 0.0;
};
} // namespace

TEST(MessagePool, ObjectsAllocatedFromRegion) {
    memory::ImmortalMemory region(64 * 1024);
    const std::size_t before = region.used();
    core::MessagePool<Payload> pool(region, "Payload", 8);
    EXPECT_GE(region.used() - before, 8 * sizeof(Payload));
}

TEST(MessagePool, AcquireReturnsDistinctObjects) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 4);
    std::set<Payload*> seen;
    for (int i = 0; i < 4; ++i) seen.insert(pool.acquire());
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(pool.available(), 0u);
}

TEST(MessagePool, TryAcquireEmptyReturnsNull) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 1);
    Payload* a = pool.try_acquire();
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(pool.try_acquire(), nullptr);
    pool.release(a);
    EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(MessagePool, ReleaseScrubsMessageState) {
    // The next getMessage() must see a fresh message, never stale data
    // from the previous request (paper: the pool "reuses objects").
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 1);
    Payload* msg = pool.acquire();
    msg->value = 42;
    msg->weight = 3.14;
    pool.release(msg);
    Payload* again = pool.acquire();
    EXPECT_EQ(again, msg);      // same storage...
    EXPECT_EQ(again->value, 0); // ...fresh content
    EXPECT_EQ(again->weight, 0.0);
    pool.release(again);
}

TEST(MessagePool, ReleaseForeignPointerThrows) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 2);
    Payload foreign;
    EXPECT_THROW(pool.release(&foreign), std::logic_error);
}

TEST(MessagePool, BlockingAcquireWaitsForRelease) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 1);
    Payload* held = pool.acquire();
    std::atomic<bool> acquired{false};
    std::thread t([&] {
        Payload* p = pool.acquire();
        acquired.store(true);
        pool.release(p);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(acquired.load());
    pool.release(held);
    t.join();
    EXPECT_TRUE(acquired.load());
}

TEST(MessagePool, CloneCopiesContent) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 2);
    Payload* a = pool.acquire();
    a->value = 7;
    auto* b = static_cast<Payload*>(pool.clone_raw(a));
    EXPECT_NE(a, b);
    EXPECT_EQ(b->value, 7);
    pool.release(a);
    pool.release(b);
}

TEST(MessagePool, ZeroCapacityClampsToOne) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 0);
    EXPECT_EQ(pool.capacity(), 1u);
}

TEST(MessagePool, MetadataIsExposed) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 3);
    EXPECT_EQ(pool.type_name(), "Payload");
    EXPECT_EQ(pool.type(), std::type_index(typeid(Payload)));
    EXPECT_EQ(&pool.region(), &region);
    EXPECT_EQ(pool.available(), 3u);
}

TEST(MessagePool, ConcurrentAcquireReleaseNeverOversubscribes) {
    memory::ImmortalMemory region(256 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 8);
    std::atomic<bool> oversubscribed{false};
    std::atomic<int> in_use{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                Payload* p = pool.acquire();
                const int users = in_use.fetch_add(1) + 1;
                if (users > 8) oversubscribed.store(true);
                p->value = i;
                in_use.fetch_sub(1);
                pool.release(p);
            }
        });
    }
    for (auto& t : workers) t.join();
    EXPECT_FALSE(oversubscribed.load());
    EXPECT_EQ(pool.available(), 8u);
}

TEST(Messages, BuiltinTypesAreFlatValueTypes) {
    // RTSJ-safety: messages must carry all their data inline.
    EXPECT_TRUE(std::is_trivially_copyable_v<core::MyInteger>);
    EXPECT_TRUE(std::is_trivially_copyable_v<core::TextMessage>);
    EXPECT_TRUE(std::is_trivially_copyable_v<core::OctetSeq>);
    EXPECT_TRUE(std::is_trivially_copyable_v<core::SensorSample>);
}

TEST(Messages, TextMessageAssignTruncatesAtCapacity) {
    core::TextMessage msg;
    const std::string long_text(500, 'x');
    msg.assign(long_text);
    EXPECT_EQ(msg.length, core::TextMessage::kCapacity);
    EXPECT_EQ(msg.view().size(), core::TextMessage::kCapacity);
}

TEST(Messages, OctetSeqAssignRoundTrips) {
    core::OctetSeq seq;
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    seq.assign(data, sizeof(data));
    EXPECT_EQ(seq.length, 5u);
    EXPECT_EQ(seq.data[0], 1);
    EXPECT_EQ(seq.data[4], 5);
}

namespace {
class CountingSink final : public core::hooks::TraceSink {
public:
    void on_alloc(std::size_t bytes) noexcept override {
        calls.fetch_add(1);
        charged.fetch_add(bytes);
    }
    std::atomic<int> calls{0};
    std::atomic<std::size_t> charged{0};
};
} // namespace

TEST(Hooks, ChargeAllAcquiresFiresAllocHook) {
    CountingSink sink;
    core::hooks::set_sink(&sink);
    core::hooks::set_charge_all_acquires(true);
    {
        memory::ImmortalMemory region(64 * 1024);
        core::MessagePool<Payload> pool(region, "Payload", 2);
        Payload* p = pool.acquire();
        pool.release(p);
    }
    core::hooks::clear();
    EXPECT_EQ(sink.charged.load(), sizeof(Payload));
}

TEST(Hooks, NoChargeWhenPoolingEnabled) {
    CountingSink sink;
    core::hooks::set_sink(&sink);
    core::hooks::set_charge_all_acquires(false);
    {
        memory::ImmortalMemory region(64 * 1024);
        core::MessagePool<Payload> pool(region, "Payload", 2);
        Payload* p = pool.acquire();
        pool.release(p);
    }
    core::hooks::clear();
    EXPECT_EQ(sink.calls.load(), 0);
}

TEST(MessagePool, GrowAddsSlotsWithoutInvalidatingInFlight) {
    memory::ImmortalMemory region(64 * 1024);
    core::MessagePool<Payload> pool(region, "Payload", 2);
    Payload* a = pool.acquire();
    Payload* b = pool.acquire();
    EXPECT_EQ(pool.available(), 0u);
    pool.grow(3);
    EXPECT_EQ(pool.capacity(), 5u);
    EXPECT_EQ(pool.available(), 3u);
    // Messages handed out before the grow still belong to the pool.
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.available(), 5u);
}
