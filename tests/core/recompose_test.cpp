// Live recomposition: the CreditGate quiesce window, quiesced_swap under
// concurrent senders, copy-on-write fan-out edits, apply_recompose plans,
// and the stop()/recompose interplay.
#include "core/recompose.hpp"

#include "core/application.hpp"
#include "core/registry.hpp"
#include "obs/metrics.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace compadres;
using test::TestMsg;

namespace {

std::atomic<int>& sink_count() {
    static std::atomic<int> n{0};
    return n;
}

/// CDL-style classes for spawn-by-name plans.
class RecSource : public core::Component {
public:
    explicit RecSource(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_out_port<TestMsg>("out", "TestMsg");
    }
};

class RecSink : public core::Component {
public:
    explicit RecSink(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_in_port<TestMsg>("in", "TestMsg", port_config("in"),
                             [](TestMsg&, core::Smm&) {
                                 sink_count().fetch_add(1);
                             });
    }
};

class RecomposeTest : public ::testing::Test {
protected:
    void SetUp() override {
        test::register_test_types();
        auto& reg = core::ComponentRegistry::global();
        static bool registered = false;
        if (!registered) {
            reg.register_class<RecSource>("RecSource");
            reg.register_class<RecSink>("RecSink");
            registered = true;
        }
        sink_count().store(0);
    }
};

core::InPortConfig pooled_port(std::size_t buffer = 8,
                               std::size_t threads = 1) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = threads;
    cfg.max_threads = threads;
    return cfg;
}

} // namespace

TEST_F(RecomposeTest, CreditGateWindowParksEntrantsUntilReopen) {
    rt::CreditGate gate(4);
    gate.close_window();
    std::atomic<bool> entered{false};
    std::thread entrant([&] {
        gate.enter(); // parks: the window is closed
        entered.store(true);
        gate.exit();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(entered.load());
    // A parked entrant holds no entrant count, so the gate reads drained.
    gate.wait_drained();
    gate.open_window();
    entrant.join();
    EXPECT_TRUE(entered.load());
}

TEST_F(RecomposeTest, WaitDrainedCoversEntrantsAndCredits) {
    rt::CreditGate gate(4);
    gate.enter();
    gate.acquire();
    gate.close_window();
    std::atomic<bool> drained{false};
    std::thread waiter([&] {
        gate.wait_drained();
        drained.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(drained.load()) << "an entrant was still inside the bracket";
    gate.exit();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(drained.load()) << "a credit was still in use";
    gate.release();
    waiter.join();
    EXPECT_TRUE(drained.load());
    gate.open_window();
}

TEST_F(RecomposeTest, QuiescedSwapMidBurstLosesNothing) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Collector<int> got;
    auto& in = b.add_in_port<TestMsg>(
        "in", "TestMsg", pooled_port(64, 1),
        [&](TestMsg& m, core::Smm&) { got.add(m.value); });
    // Pool capacity below the buffer depth: the queue can never fill, so a
    // Ring policy never actually evicts and zero-loss holds under BOTH
    // policies — what changes across the swap is only the admission path.
    app.connect(out, in, /*pool_capacity=*/8);
    app.start();

    constexpr int kMessages = 4000;
    std::thread sender([&] {
        for (int i = 0; i < kMessages; ++i) {
            TestMsg* m = out.get_message();
            m->value = i;
            out.send(m, 1);
        }
    });
    // Flip Block <-> Ring while the burst is in flight.
    core::TransmissionPolicy ring;
    ring.overflow = core::OverflowPolicy::kRingOverwrite;
    core::TransmissionPolicy block;
    for (int flip = 0; flip < 20; ++flip) {
        const core::TransmissionPolicy& next = flip % 2 == 0 ? ring : block;
        const std::uint64_t pause =
            core::quiesced_swap(in, [&] { in.set_policy(next); });
        EXPECT_GT(pause, 0u);
        EXPECT_EQ(in.policy(), next);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    sender.join();
    ASSERT_TRUE(got.wait_for(kMessages, std::chrono::milliseconds(10000)));
    // Exactly once, nothing lost, nothing duplicated.
    std::set<int> unique;
    for (int v : got.items()) unique.insert(v);
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(kMessages));
    EXPECT_EQ(got.items().size(), static_cast<std::size_t>(kMessages));
    app.stop();
}

TEST_F(RecomposeTest, DisconnectMidTrafficStopsCleanlyAfterDrain) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& c = app.create_immortal<core::Component>("C");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::atomic<int> c1{0}, c2{0};
    auto& in1 = b.add_in_port<TestMsg>(
        "in", "TestMsg", pooled_port(32, 1),
        [&](TestMsg&, core::Smm&) { c1.fetch_add(1); });
    auto& in2 = c.add_in_port<TestMsg>(
        "in", "TestMsg", pooled_port(32, 1),
        [&](TestMsg&, core::Smm&) { c2.fetch_add(1); });
    app.connect(out, in1, 8);
    app.connect(out, in2, 8);
    app.start();

    std::atomic<bool> stop{false};
    std::atomic<int> sent{0};
    std::thread sender([&] {
        while (!stop.load()) {
            TestMsg* m = out.get_message();
            m->value = sent.load();
            out.send(m, 1);
            sent.fetch_add(1);
        }
    });
    while (c2.load() < 100) std::this_thread::yield();
    app.disconnect(out, in2);
    // disconnect() returned: no send still holds the old fan-out snapshot.
    // Queued messages drain through in2's handler; after the gate reads
    // drained the count must freeze while in1 keeps receiving.
    in2.credits().wait_drained();
    const int frozen = c2.load();
    const int c1_then = c1.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(c2.load(), frozen);
    EXPECT_GT(c1.load(), c1_then);
    stop.store(true);
    sender.join();
    app.stop();
    EXPECT_EQ(c1.load(), sent.load());
}

TEST_F(RecomposeTest, ApplyPlanSpawnsWiresRepoliciesRemovesRetires) {
    core::Application app("live");
    app.create_immortal<RecSource>("src");
    app.start();
    obs::MetricsRegistry metrics;
    core::RecomposeOptions opts;
    opts.metrics = &metrics;

    // Phase 1: spawn a sink and route to it.
    core::RecomposePlan grow;
    grow.application = "live";
    core::RecomposeComponentSpec sink;
    sink.instance = "snk";
    sink.class_name = "RecSink";
    sink.type = core::ComponentType::kScoped;
    sink.level = 1;
    sink.port_configs["in"] = pooled_port(16, 1);
    grow.spawns.push_back(sink);
    grow.route_adds.push_back({"src", "out", "snk", "in", 4});
    const core::RecomposeStats grown = apply_recompose(app, grow, opts);
    EXPECT_EQ(grown.components_spawned, 1u);
    EXPECT_EQ(grown.routes_added, 1u);

    auto& out = app.component("src").out_port_t<TestMsg>("out");
    for (int i = 0; i < 10; ++i) {
        TestMsg* m = out.get_message();
        m->value = i;
        out.send(m, 1);
    }
    for (int spin = 0; spin < 2000 && sink_count().load() < 10; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(sink_count().load(), 10);

    // Phase 2: repolicy the live route.
    core::RecomposePlan tune;
    tune.application = "live";
    core::RecomposeRepolicy rep;
    rep.instance = "snk";
    rep.port = "in";
    rep.to.overflow = core::OverflowPolicy::kRingOverwrite;
    tune.repolicies.push_back(rep);
    const core::RecomposeStats tuned = apply_recompose(app, tune, opts);
    ASSERT_EQ(tuned.pause_ns.size(), 1u);
    EXPECT_EQ(app.component("snk").in_port("in").policy().overflow,
              core::OverflowPolicy::kRingOverwrite);

    // Phase 3: unroute and retire the sink.
    core::RecomposePlan shrink;
    shrink.application = "live";
    shrink.route_removes.push_back({"src", "out", "snk", "in", 0});
    shrink.retires.push_back("snk");
    const core::RecomposeStats shrunk = apply_recompose(app, shrink, opts);
    EXPECT_EQ(shrunk.routes_removed, 1u);
    EXPECT_EQ(shrunk.components_retired, 1u);
    EXPECT_EQ(app.find("snk"), nullptr);

    EXPECT_EQ(metrics.counter("recompose_applied_total").value(), 3u);
    EXPECT_EQ(metrics.counter("recompose_routes_repoliced_total").value(), 1u);
    EXPECT_EQ(metrics.counter("recompose_components_retired_total").value(),
              1u);
    app.stop();
}

TEST_F(RecomposeTest, ApplyPlanAbortsCleanly) {
    core::Application app("live");
    app.start();
    obs::MetricsRegistry metrics;
    core::RecomposeOptions opts;
    opts.metrics = &metrics;

    core::RecomposePlan wrong_app;
    wrong_app.application = "someone-else";
    EXPECT_THROW(apply_recompose(app, wrong_app, opts), core::RecomposeError);

    core::RecomposePlan bogus;
    bogus.application = "live";
    bogus.route_adds.push_back({"ghost", "out", "ghost2", "in", 0});
    EXPECT_THROW(apply_recompose(app, bogus, opts), core::RecomposeError);
    EXPECT_EQ(metrics.counter("recompose_aborted_total").value(), 2u);

    core::RecomposePlan remote_only;
    remote_only.application = "live";
    core::RecomposeRepolicy rep;
    rep.remote = true;
    rep.route = "r";
    remote_only.repolicies.push_back(rep);
    // Remote repolicy without a wired applier must abort, not crash.
    EXPECT_THROW(apply_recompose(app, remote_only, opts),
                 core::RecomposeError);

    app.stop();
    core::RecomposePlan after_stop;
    after_stop.application = "live";
    EXPECT_THROW(apply_recompose(app, after_stop, opts),
                 core::RecomposeError);
}

TEST_F(RecomposeTest, RetireRefusesReferencedOrImmortalComponents) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& src = app.create_scoped<RecSource>(
        "scoped-src", a, 1);
    auto& snk = app.create_scoped<RecSink>("scoped-snk", a, 1);
    (void)snk;
    app.connect(src.out_port("out"),
                app.component("scoped-snk").in_port("in"), 4);
    EXPECT_THROW(app.retire("A"), core::AssemblyError); // immortal
    EXPECT_THROW(app.retire("scoped-src"), core::AssemblyError); // connected
    EXPECT_THROW(app.retire("scoped-snk"), core::AssemblyError); // targeted
    EXPECT_THROW(app.retire("nope"), core::AssemblyError);
    app.disconnect(src.out_port("out"),
                   app.component("scoped-snk").in_port("in"));
    app.retire("scoped-snk");
    app.retire("scoped-src");
    EXPECT_EQ(app.find("scoped-src"), nullptr);
    app.stop();
}

TEST_F(RecomposeTest, StopIsIdempotentAndSerializesWithRecompose) {
    core::Application app("live");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", pooled_port(16, 1),
                                      [](TestMsg&, core::Smm&) {});
    app.connect(out, in, 4);
    app.start();

    core::RecomposePlan tune;
    tune.application = "live";
    core::RecomposeRepolicy rep;
    rep.instance = "B";
    rep.port = "in";
    rep.to.overflow = core::OverflowPolicy::kRingOverwrite;
    tune.repolicies.push_back(rep);

    std::atomic<int> recompose_errors{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&] {
            for (int k = 0; k < 20; ++k) {
                try {
                    apply_recompose(app, tune);
                } catch (const core::RecomposeError&) {
                    // Fine: the app stopped under us — but never both
                    // half-applied and torn down.
                    recompose_errors.fetch_add(1);
                    return;
                }
            }
        });
    }
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&] { app.stop(); });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(app.stopped());
    app.stop(); // idempotent
    EXPECT_TRUE(app.stopped());
}

TEST_F(RecomposeTest, DescribeRendersEveryOperationKind) {
    core::RecomposePlan plan;
    plan.application = "live";
    core::RecomposeComponentSpec spec;
    spec.instance = "snk";
    spec.class_name = "RecSink";
    spec.level = 2;
    spec.parent = "hub";
    plan.spawns.push_back(spec);
    plan.route_adds.push_back({"src", "out", "snk", "in", 0});
    core::RecomposeRepolicy rep;
    rep.instance = "snk";
    rep.port = "in";
    rep.to.overflow = core::OverflowPolicy::kRingOverwrite;
    rep.to.band = 2;
    rep.to.coalesce = false;
    plan.repolicies.push_back(rep);
    plan.route_removes.push_back({"src", "out", "old", "in", 0});
    plan.retires.push_back("old");

    const std::string text = core::describe(plan);
    EXPECT_NE(text.find("+ spawn snk : RecSink [L2, under hub]"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("+ route src.out -> snk.in"), std::string::npos);
    EXPECT_NE(text.find("~ repolicy snk.in"), std::string::npos);
    EXPECT_NE(text.find("[block, band=auto, coalesce] -> "
                        "[ring, band=2, direct]"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("- route src.out -> old.in"), std::string::npos);
    EXPECT_NE(text.find("- retire old"), std::string::npos);

    EXPECT_NE(core::describe(core::RecomposePlan{}).find("(no changes)"),
              std::string::npos);
}
