// SMM: pool placement, out-port lookup, shadow-port hosting, dynamic
// child connect/disconnect (the paper's Fig. 4/Fig. 5 machinery).
#include "core/application.hpp"
#include "core/messages.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

using namespace compadres;
using test::TestMsg;

namespace {

class SmmTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }

    static core::InPortConfig sync_port() {
        core::InPortConfig cfg;
        cfg.min_threads = cfg.max_threads = 0;
        return cfg;
    }
};

} // namespace

TEST_F(SmmTest, SiblingConnectionHostedByCommonParent) {
    // Paper Fig. 4: siblings B and C talk through the SMM of parent A.
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_scoped<core::Component>("B", a, 1);
    auto& c = app.create_scoped<core::Component>("C", a, 1);
    auto& out = b.add_out_port<TestMsg>("out", "TestMsg");
    c.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(b, "out", c, "in");
    ASSERT_NE(out.smm(), nullptr);
    EXPECT_EQ(&out.smm()->owner(), &a);
    // The shared-object pool lives in A's region: referencable from both.
    EXPECT_EQ(&out.pool()->region(), &a.region());
}

TEST_F(SmmTest, ParentChildConnectionHostedByParent) {
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    auto& child = app.create_scoped<core::Component>("C", parent, 1);
    auto& out = parent.add_out_port<TestMsg>("out", "TestMsg");
    child.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                               [](TestMsg&, core::Smm&) {});
    app.connect(parent, "out", child, "in");
    EXPECT_EQ(&out.smm()->owner(), &parent);
}

TEST_F(SmmTest, ShadowPortHostedByAncestorNotParent) {
    // Paper Fig. 5: C talks to grandparent A directly; the pool/buffer is
    // created only in A's memory area, nothing in B.
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_scoped<core::Component>("B", a, 1);
    auto& c = app.create_scoped<core::Component>("C", b, 2);
    auto& out = c.add_out_port<TestMsg>("shadowOut", "TestMsg");
    test::Collector<int> got;
    a.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg& m, core::Smm&) { got.add(m.value); });

    const std::size_t b_used_before = b.region().used();
    app.connect(c, "shadowOut", a, "in");
    EXPECT_EQ(&out.smm()->owner(), &a);
    EXPECT_EQ(&out.pool()->region(), &a.region());
    EXPECT_EQ(b.region().used(), b_used_before); // nothing allocated in B

    TestMsg* m = out.get_message();
    m->value = 5;
    out.send(m, 1);
    ASSERT_TRUE(got.wait_for(1));
    EXPECT_EQ(got.items().front(), 5);
}

TEST_F(SmmTest, TopLevelSiblingsHostedByRoot) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    EXPECT_EQ(&out.smm()->owner(), &app.root());
}

TEST_F(SmmTest, OnePoolPerMessageTypePerSmm) {
    // Paper: "a message pool per message type in the parent component's
    // SMM" — two connections of the same type share one pool.
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out1 = a.add_out_port<TestMsg>("out1", "TestMsg");
    auto& out2 = a.add_out_port<TestMsg>("out2", "TestMsg");
    auto& out3 = a.add_out_port<core::MyInteger>("out3", "MyInteger");
    b.add_in_port<TestMsg>("in1", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    b.add_in_port<TestMsg>("in2", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    b.add_in_port<core::MyInteger>("in3", "MyInteger", sync_port(),
                                   [](core::MyInteger&, core::Smm&) {});
    app.connect(a, "out1", b, "in1");
    app.connect(a, "out2", b, "in2");
    app.connect(a, "out3", b, "in3");
    EXPECT_EQ(out1.pool(), out2.pool());
    EXPECT_NE(out1.pool(), out3.pool());
}

TEST_F(SmmTest, GetOutPortByBareAndQualifiedName) {
    // Paper Fig. 7: handlers fetch connected ports via smm.getOutPort("P3").
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("MyClient");
    auto& b = app.create_immortal<core::Component>("MyServer");
    auto& out = a.add_out_port<TestMsg>("P3", "TestMsg");
    b.add_in_port<TestMsg>("P4", "TestMsg", sync_port(),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "P3", b, "P4");
    core::Smm& smm = app.root().smm();
    EXPECT_EQ(&smm.get_out_port("P3"), &out);
    EXPECT_EQ(&smm.get_out_port("MyClient.P3"), &out);
    EXPECT_THROW(smm.get_out_port("nope"), core::PortError);
}

TEST_F(SmmTest, AmbiguousBareNameRequiresQualifiedLookup) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& sink = app.create_immortal<core::Component>("Sink");
    a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_out_port<TestMsg>("out", "TestMsg");
    sink.add_in_port<TestMsg>("in1", "TestMsg", sync_port(),
                              [](TestMsg&, core::Smm&) {});
    sink.add_in_port<TestMsg>("in2", "TestMsg", sync_port(),
                              [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", sink, "in1");
    app.connect(b, "out", sink, "in2");
    core::Smm& smm = app.root().smm();
    EXPECT_THROW(smm.get_out_port("out"), core::PortError); // ambiguous
    EXPECT_NO_THROW(smm.get_out_port("A.out"));
    EXPECT_NO_THROW(smm.get_out_port("B.out"));
}

TEST_F(SmmTest, HandlerReceivesHostingSmm) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    core::Smm* seen = nullptr;
    test::Waiter done;
    b.add_in_port<TestMsg>("in", "TestMsg", sync_port(),
                           [&](TestMsg&, core::Smm& smm) {
                               seen = &smm;
                               done.notify();
                           });
    app.connect(a, "out", b, "in");
    out.send(out.get_message(), 1);
    ASSERT_TRUE(done.wait_for(1));
    EXPECT_EQ(seen, &app.root().smm());
}

namespace {
/// Dynamic child used by connect/disconnect tests.
class Ephemeral : public core::Component {
public:
    explicit Ephemeral(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        ++instances;
    }
    ~Ephemeral() override { --instances; }
    void _start() override { started = true; }
    bool started = false;
    static inline int instances = 0;
};
} // namespace

TEST_F(SmmTest, ConnectCreatesChildInPooledScope) {
    core::ComponentRegistry::global().register_class<Ephemeral>("Ephemeral");
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    memory::ScopePool& pool = app.pool_for_level(1);
    const std::size_t avail = pool.available();
    Ephemeral::instances = 0;
    {
        core::ChildHandle handle = parent.smm().connect("Ephemeral", "Child");
        ASSERT_TRUE(static_cast<bool>(handle));
        EXPECT_EQ(Ephemeral::instances, 1);
        EXPECT_EQ(pool.available(), avail - 1);
        auto* child = dynamic_cast<Ephemeral*>(handle.component());
        ASSERT_NE(child, nullptr);
        EXPECT_TRUE(child->started); // _start ran at connect time
        EXPECT_EQ(child->parent(), &parent);
        EXPECT_EQ(child->level(), 1);
    }
    // Handle destruction reclaims the scope and returns it to the pool.
    EXPECT_EQ(Ephemeral::instances, 0);
    EXPECT_EQ(pool.available(), avail);
}

TEST_F(SmmTest, DisconnectReclaimsExplicitly) {
    core::ComponentRegistry::global().register_class<Ephemeral>("Ephemeral");
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    core::ChildHandle handle = parent.smm().connect("Ephemeral", "C2");
    EXPECT_EQ(Ephemeral::instances, 1);
    core::Smm::disconnect(handle);
    EXPECT_EQ(Ephemeral::instances, 0);
    EXPECT_FALSE(static_cast<bool>(handle));
    core::Smm::disconnect(handle); // idempotent
}

TEST_F(SmmTest, ConnectUnknownClassThrows) {
    core::Application app("t");
    auto& parent = app.create_immortal<core::Component>("P");
    EXPECT_THROW(parent.smm().connect("Unregistered", "x"),
                 core::RegistryError);
}

TEST_F(SmmTest, ScopeReusedAcrossConnectDisconnectCycles) {
    core::ComponentRegistry::global().register_class<Ephemeral>("Ephemeral");
    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, 64 * 1024, 1}}; // a single pooled scope
    core::Application app("t", attrs);
    auto& parent = app.create_immortal<core::Component>("P");
    for (int i = 0; i < 20; ++i) {
        core::ChildHandle h =
            parent.smm().connect("Ephemeral", "c" + std::to_string(i));
        EXPECT_EQ(Ephemeral::instances, 1);
    }
    EXPECT_EQ(Ephemeral::instances, 0);
}
