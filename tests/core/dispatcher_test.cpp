// Dispatcher: pool growth, shared pools, shutdown draining.
#include "core/application.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

using namespace compadres;
using test::TestMsg;

namespace {

class DispatcherTest : public ::testing::Test {
protected:
    void SetUp() override { test::register_test_types(); }
};

core::InPortConfig cfg(std::size_t buffer, std::size_t min_t, std::size_t max_t,
                       core::ThreadpoolStrategy strategy =
                           core::ThreadpoolStrategy::kDedicated) {
    core::InPortConfig c;
    c.buffer_size = buffer;
    c.min_threads = min_t;
    c.max_threads = max_t;
    c.strategy = strategy;
    return c;
}

} // namespace

TEST_F(DispatcherTest, StartsWithMinThreads) {
    core::Application app("t");
    auto& b = app.create_immortal<core::Component>("B");
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", cfg(8, 2, 5),
                                      [](TestMsg&, core::Smm&) {});
    ASSERT_NE(in.dispatcher(), nullptr);
    EXPECT_EQ(in.dispatcher()->worker_count(), 2u);
    app.shutdown();
}

TEST_F(DispatcherTest, GrowsUpToMaxUnderLoad) {
    // Paper: "The number of threads in the pool is initialized to
    // MinThreadpoolSize value and can go up to the MaxThreadpoolSize".
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::mutex gate;
    test::Waiter entered;
    gate.lock();
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", cfg(16, 1, 4),
                                      [&](TestMsg&, core::Smm&) {
                                          entered.notify();
                                          std::lock_guard lk(gate);
                                      });
    app.connect(a, "out", b, "in", 32);
    // Occupy the first worker, then submit while it is provably busy so
    // the grow-on-demand branch is exercised deterministically.
    out.send(out.get_message(), 1);
    const bool first_started = entered.wait_for(1);
    if (first_started) {
        for (int i = 0; i < 7; ++i) out.send(out.get_message(), 1);
        EXPECT_GT(in.dispatcher()->worker_count(), 1u);
        EXPECT_LE(in.dispatcher()->worker_count(), 4u);
    }
    gate.unlock(); // always release before teardown, even on failure above
    EXPECT_TRUE(first_started);
    if (first_started) {
        EXPECT_TRUE(entered.wait_for(8));
    }
    app.shutdown();
}

TEST_F(DispatcherTest, ParallelWorkersProcessConcurrently) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    test::Waiter done;
    b.add_in_port<TestMsg>("in", "TestMsg", cfg(16, 4, 4),
                           [&](TestMsg&, core::Smm&) {
                               const int now = concurrent.fetch_add(1) + 1;
                               int expected = peak.load();
                               while (now > expected &&
                                      !peak.compare_exchange_weak(expected, now)) {
                               }
                               std::this_thread::sleep_for(
                                   std::chrono::milliseconds(30));
                               concurrent.fetch_sub(1);
                               done.notify();
                           });
    app.connect(a, "out", b, "in", 32);
    for (int i = 0; i < 8; ++i) out.send(out.get_message(), 1);
    ASSERT_TRUE(done.wait_for(8));
    EXPECT_GE(peak.load(), 2);
    app.shutdown();
}

TEST_F(DispatcherTest, SharedStrategyUsesOneDispatcherForSiblingPorts) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out1 = a.add_out_port<TestMsg>("out1", "TestMsg");
    auto& out2 = a.add_out_port<TestMsg>("out2", "TestMsg");
    test::Waiter done;
    auto handler = [&](TestMsg&, core::Smm&) { done.notify(); };
    auto& in1 = b.add_in_port<TestMsg>(
        "in1", "TestMsg", cfg(4, 1, 2, core::ThreadpoolStrategy::kShared),
        handler);
    auto& in2 = b.add_in_port<TestMsg>(
        "in2", "TestMsg", cfg(4, 1, 3, core::ThreadpoolStrategy::kShared),
        handler);
    app.connect(a, "out1", b, "in1");
    app.connect(a, "out2", b, "in2");
    // Both ports share the SMM-wide dispatcher of the connection host.
    ASSERT_NE(in1.dispatcher(), nullptr);
    EXPECT_EQ(in1.dispatcher(), in2.dispatcher());
    out1.send(out1.get_message(), 1);
    out2.send(out2.get_message(), 2);
    ASSERT_TRUE(done.wait_for(2));
    app.shutdown();
}

TEST_F(DispatcherTest, ShutdownDrainsPendingMessages) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    std::atomic<int> processed{0};
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", cfg(32, 1, 1),
                                      [&](TestMsg&, core::Smm&) {
                                          std::this_thread::sleep_for(
                                              std::chrono::milliseconds(1));
                                          processed.fetch_add(1);
                                      });
    app.connect(a, "out", b, "in", 64);
    for (int i = 0; i < 20; ++i) out.send(out.get_message(), 1);
    app.shutdown(); // must not drop queued messages
    EXPECT_EQ(processed.load(), 20);
    EXPECT_EQ(in.processed_count(), 20u);
}

TEST_F(DispatcherTest, SubmitAfterShutdownThrows) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    b.add_in_port<TestMsg>("in", "TestMsg", cfg(8, 1, 1),
                           [](TestMsg&, core::Smm&) {});
    app.connect(a, "out", b, "in");
    TestMsg* m = out.get_message();
    app.shutdown();
    EXPECT_THROW(out.send(m, 1), core::PortError);
}

TEST_F(DispatcherTest, WorkerThreadsInheritMessagePriorityBestEffort) {
    // We cannot assert SCHED_FIFO was granted in a container, but the
    // dispatch path must at least *attempt* it per message and the counter
    // of denied requests must stay consistent (no crash, no hang).
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Waiter done;
    b.add_in_port<TestMsg>("in", "TestMsg", cfg(8, 1, 1),
                           [&](TestMsg&, core::Smm&) { done.notify(); });
    app.connect(a, "out", b, "in");
    for (const int prio : {1, 50, 99}) out.send(out.get_message(), prio);
    ASSERT_TRUE(done.wait_for(3));
    app.shutdown();
}

TEST_F(DispatcherTest, DistinctDedicatedPortsHaveDistinctDispatchers) {
    core::Application app("t");
    auto& b = app.create_immortal<core::Component>("B");
    auto& in1 = b.add_in_port<TestMsg>("in1", "TestMsg", cfg(4, 1, 1),
                                       [](TestMsg&, core::Smm&) {});
    auto& in2 = b.add_in_port<TestMsg>("in2", "TestMsg", cfg(4, 1, 1),
                                       [](TestMsg&, core::Smm&) {});
    EXPECT_NE(in1.dispatcher(), nullptr);
    EXPECT_NE(in1.dispatcher(), in2.dispatcher());
    app.shutdown();
}

TEST_F(DispatcherTest, ProcessedCountTracksThroughput) {
    core::Application app("t");
    auto& a = app.create_immortal<core::Component>("A");
    auto& b = app.create_immortal<core::Component>("B");
    auto& out = a.add_out_port<TestMsg>("out", "TestMsg");
    test::Waiter done;
    auto& in = b.add_in_port<TestMsg>("in", "TestMsg", cfg(8, 2, 2),
                                      [&](TestMsg&, core::Smm&) { done.notify(); });
    app.connect(a, "out", b, "in", 32);
    for (int i = 0; i < 25; ++i) out.send(out.get_message(), 1);
    ASSERT_TRUE(done.wait_for(25));
    app.shutdown();
    EXPECT_EQ(in.dispatcher()->processed_count(), 25u);
    EXPECT_EQ(in.dispatcher()->error_count(), 0u);
}
