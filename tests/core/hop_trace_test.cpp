// HopTraceRecorder's lock-free series lookup: workers draining different
// ports must be able to append samples concurrently without serializing on
// a recorder-wide lock, and the first-hop publication must be safe against
// racing lookups of the same port.
#include "core/hop_trace.hpp"

#include "core/application.hpp"
#include "core/component.hpp"
#include "core/port.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace compadres;

namespace {

struct Sample {
    int value = 0;
};

class SinkComponent final : public core::Component {
public:
    explicit SinkComponent(const core::ComponentContext& ctx, int n_ports)
        : core::Component(ctx) {
        core::InPortConfig cfg;
        cfg.buffer_size = 4;
        cfg.min_threads = cfg.max_threads = 0;
        for (int i = 0; i < n_ports; ++i) {
            ports.push_back(&add_in_port<Sample>(
                "in" + std::to_string(i), "Sample", cfg,
                [](Sample&, core::Smm&) {}));
        }
    }
    std::vector<core::InPortBase*> ports;
};

core::hooks::HopTimes times_at(std::int64_t base) {
    core::hooks::HopTimes t;
    t.enqueue_ns = base;
    t.dequeue_ns = base + 100;
    t.process_start_ns = base + 100;
    t.process_end_ns = base + 300;
    return t;
}

} // namespace

TEST(HopTraceRecorder, ConcurrentHopsOnDistinctPorts) {
    core::Application app("hop-trace-test");
    constexpr int kPorts = 8;
    constexpr int kHopsPerPort = 5000;
    auto& sink = app.create_immortal<SinkComponent>("sink", kPorts);

    core::HopTraceRecorder recorder;
    std::vector<std::thread> threads;
    threads.reserve(kPorts);
    for (int p = 0; p < kPorts; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kHopsPerPort; ++i) {
                recorder.on_hop(*sink.ports[static_cast<std::size_t>(p)],
                                times_at(i));
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(recorder.dropped_samples(), 0u);
    const auto names = recorder.ports();
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kPorts));
    for (int p = 0; p < kPorts; ++p) {
        const std::string name =
            sink.ports[static_cast<std::size_t>(p)]->qualified_name();
        const auto total = recorder.total_summary(name);
        EXPECT_EQ(total.count, static_cast<std::size_t>(kHopsPerPort)) << name;
        const auto wait = recorder.queue_wait_summary(name);
        EXPECT_EQ(wait.median, 100) << name;
    }
}

TEST(HopTraceRecorder, RacingFirstHopsOfTheSamePortPublishOnce) {
    core::Application app("hop-trace-race");
    auto& sink = app.create_immortal<SinkComponent>("sink", 1);
    for (int round = 0; round < 50; ++round) {
        core::HopTraceRecorder recorder;
        constexpr int kThreads = 4;
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back(
                [&] { recorder.on_hop(*sink.ports[0], times_at(0)); });
        }
        for (auto& t : threads) t.join();
        // All racers must land on one series: one port name, all samples.
        ASSERT_EQ(recorder.ports().size(), 1u);
        EXPECT_EQ(recorder
                      .total_summary(sink.ports[0]->qualified_name())
                      .count,
                  static_cast<std::size_t>(kThreads));
    }
}

TEST(HopTraceRecorder, ClearDropsSeries) {
    core::Application app("hop-trace-clear");
    auto& sink = app.create_immortal<SinkComponent>("sink", 2);
    core::HopTraceRecorder recorder;
    recorder.on_hop(*sink.ports[0], times_at(0));
    recorder.on_hop(*sink.ports[1], times_at(0));
    ASSERT_EQ(recorder.ports().size(), 2u);
    recorder.clear();
    EXPECT_TRUE(recorder.ports().empty());
    EXPECT_EQ(recorder.total_summary(sink.ports[0]->qualified_name()).count,
              0u);
    // The table is reusable after clear().
    recorder.on_hop(*sink.ports[0], times_at(0));
    EXPECT_EQ(recorder.ports().size(), 1u);
}
