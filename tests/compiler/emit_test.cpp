// Emitters: model -> XML -> model must be the identity (round-trip
// property), including randomly generated models.
#include "compiler/emit.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace compadres;
using namespace compadres::compiler;

namespace {

bool models_equal(const CdlModel& a, const CdlModel& b) {
    if (a.components.size() != b.components.size()) return false;
    for (const auto& [name, comp] : a.components) {
        const CdlComponent* other = b.find(name);
        if (other == nullptr || other->ports.size() != comp.ports.size()) {
            return false;
        }
        for (std::size_t i = 0; i < comp.ports.size(); ++i) {
            const CdlPort& p = comp.ports[i];
            const CdlPort& q = other->ports[i];
            if (p.name != q.name || p.direction != q.direction ||
                p.message_type != q.message_type) {
                return false;
            }
        }
    }
    return true;
}

bool components_equal(const CclComponent& a, const CclComponent& b) {
    if (a.instance_name != b.instance_name || a.class_name != b.class_name ||
        a.type != b.type || a.scope_level != b.scope_level ||
        a.ports.size() != b.ports.size() ||
        a.children.size() != b.children.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.ports.size(); ++i) {
        const CclPortDecl& p = a.ports[i];
        const CclPortDecl& q = b.ports[i];
        if (p.name != q.name || p.has_attributes != q.has_attributes ||
            p.links.size() != q.links.size()) {
            return false;
        }
        if (p.has_attributes &&
            (p.attributes.buffer_size != q.attributes.buffer_size ||
             p.attributes.strategy != q.attributes.strategy ||
             p.attributes.min_threads != q.attributes.min_threads ||
             p.attributes.max_threads != q.attributes.max_threads ||
             p.attributes.policy.overflow != q.attributes.policy.overflow)) {
            return false;
        }
        for (std::size_t j = 0; j < p.links.size(); ++j) {
            if (p.links[j].kind != q.links[j].kind ||
                p.links[j].to_component != q.links[j].to_component ||
                p.links[j].to_port != q.links[j].to_port) {
                return false;
            }
        }
    }
    for (std::size_t i = 0; i < a.children.size(); ++i) {
        if (!components_equal(a.children[i], b.children[i])) return false;
    }
    return true;
}

bool routes_equal(const std::vector<CclRemoteRoute>& a,
                  const std::vector<CclRemoteRoute>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].component != b[i].component || a[i].port != b[i].port ||
            a[i].route != b[i].route || a[i].policy != b[i].policy) {
            return false;
        }
    }
    return true;
}

bool models_equal(const CclModel& a, const CclModel& b) {
    if (a.application_name != b.application_name ||
        a.components.size() != b.components.size() ||
        a.remotes.size() != b.remotes.size() ||
        a.rtsj.immortal_size != b.rtsj.immortal_size ||
        a.rtsj.reactor_bands != b.rtsj.reactor_bands ||
        a.rtsj.scoped_pools.size() != b.rtsj.scoped_pools.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.remotes.size(); ++i) {
        const CclRemote& r = a.remotes[i];
        const CclRemote& s = b.remotes[i];
        if (r.name != s.name || r.bands != s.bands ||
            r.transport != s.transport || r.host != s.host ||
            !routes_equal(r.exports, s.exports) ||
            !routes_equal(r.imports, s.imports)) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.components.size(); ++i) {
        if (!components_equal(a.components[i], b.components[i])) return false;
    }
    for (std::size_t i = 0; i < a.rtsj.scoped_pools.size(); ++i) {
        const auto& p = a.rtsj.scoped_pools[i];
        const auto& q = b.rtsj.scoped_pools[i];
        if (p.level != q.level || p.scope_size != q.scope_size ||
            p.pool_size != q.pool_size) {
            return false;
        }
    }
    return true;
}

} // namespace

TEST(Emit, CdlRoundTripsHandWrittenModel) {
    CdlModel model;
    CdlComponent server;
    server.name = "Server";
    server.ports.push_back({"DataOut", PortDirection::kOut, "String"});
    server.ports.push_back({"DataIn", PortDirection::kIn, "CustomType"});
    model.components.emplace("Server", server);
    CdlComponent calc;
    calc.name = "Calculator";
    model.components.emplace("Calculator", calc);

    const std::string xml_text = emit_cdl(model);
    const CdlModel reparsed = parse_cdl_string(xml_text);
    EXPECT_TRUE(models_equal(model, reparsed)) << xml_text;
}

TEST(Emit, CclRoundTripsListing12Shape) {
    CclModel model;
    model.application_name = "MyApp";
    model.rtsj.immortal_size = 400'000;
    model.rtsj.scoped_pools.push_back({1, 200'000, 3});

    CclComponent server;
    server.instance_name = "MyServer";
    server.class_name = "Server";
    server.type = core::ComponentType::kImmortal;
    CclPortDecl port;
    port.name = "DataIn";
    port.has_attributes = true;
    port.attributes.buffer_size = 5;
    port.attributes.strategy = core::ThreadpoolStrategy::kShared;
    port.attributes.min_threads = 2;
    port.attributes.max_threads = 10;
    port.attributes.policy.overflow = core::OverflowPolicy::kRingOverwrite;
    port.links.push_back({LinkKind::kInternal, "MyCalculator", "DataOut", 0});
    server.ports.push_back(port);

    CclComponent calc;
    calc.instance_name = "MyCalculator";
    calc.class_name = "Calculator";
    calc.type = core::ComponentType::kScoped;
    calc.scope_level = 1;
    server.children.push_back(calc);
    model.components.push_back(server);

    const std::string xml_text = emit_ccl(model);
    const CclModel reparsed = parse_ccl_string(xml_text);
    EXPECT_TRUE(models_equal(model, reparsed)) << xml_text;
}

TEST(Emit, CclRoundTripsRemoteAndReactorBands) {
    CclModel model;
    model.application_name = "Banded";
    model.rtsj.reactor_bands = 6;

    CclComponent hub;
    hub.instance_name = "H";
    hub.class_name = "Hub";
    hub.type = core::ComponentType::kImmortal;
    model.components.push_back(hub);

    CclRemote remote;
    remote.name = "peer";
    remote.bands = 3;
    remote.exports.push_back(
        {"H", "cmdOut", "cmd-route", {core::OverflowPolicy::kBlock, 0}, 0});
    remote.exports.push_back({"H", "logOut", "log-route", {}, 0});
    remote.imports.push_back({"H", "ackIn", "ack-route", {}, 0});
    model.remotes.push_back(remote);

    const std::string xml_text = emit_ccl(model);
    const CclModel reparsed = parse_ccl_string(xml_text);
    EXPECT_TRUE(models_equal(model, reparsed)) << xml_text;
}

TEST(Emit, CclRoundTripsShmTransportAndHost) {
    CclModel model;
    model.application_name = "CoLocated";

    CclComponent hub;
    hub.instance_name = "H";
    hub.class_name = "Hub";
    hub.type = core::ComponentType::kImmortal;
    model.components.push_back(hub);

    CclRemote remote;
    remote.name = "peer";
    remote.transport = RemoteTransport::kShm;
    remote.host = "localhost";
    remote.bands = 1;
    remote.bands_declared = true; // emit always writes <Bands>
    remote.exports.push_back({"H", "cmdOut", "cmd-route", {}, 0});
    model.remotes.push_back(remote);

    const std::string xml_text = emit_ccl(model);
    EXPECT_NE(xml_text.find("<Transport>shm</Transport>"), std::string::npos);
    EXPECT_NE(xml_text.find("<Host>localhost</Host>"), std::string::npos);
    const CclModel reparsed = parse_ccl_string(xml_text);
    EXPECT_TRUE(models_equal(model, reparsed)) << xml_text;
}

// Property: random models survive the emit -> parse round trip.
class EmitFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EmitFuzzTest, RandomCdlRoundTrips) {
    std::mt19937 rng(GetParam());
    CdlModel model;
    const int comp_count = 1 + static_cast<int>(rng() % 6);
    for (int c = 0; c < comp_count; ++c) {
        CdlComponent comp;
        comp.name = "Comp" + std::to_string(c);
        const int port_count = static_cast<int>(rng() % 5);
        for (int p = 0; p < port_count; ++p) {
            comp.ports.push_back(
                {"port" + std::to_string(p),
                 rng() % 2 == 0 ? PortDirection::kIn : PortDirection::kOut,
                 "Type" + std::to_string(rng() % 3)});
        }
        model.components.emplace(comp.name, comp);
    }
    const CdlModel reparsed = parse_cdl_string(emit_cdl(model));
    EXPECT_TRUE(models_equal(model, reparsed));
}

TEST_P(EmitFuzzTest, RandomCclRoundTrips) {
    std::mt19937 rng(GetParam() + 77);
    CclModel model;
    model.application_name = "App" + std::to_string(GetParam());
    model.rtsj.immortal_size = 1'000'000 + rng() % 1'000'000;
    const int pool_count = static_cast<int>(rng() % 3);
    for (int i = 0; i < pool_count; ++i) {
        model.rtsj.scoped_pools.push_back(
            {i + 1, 10'000 + rng() % 100'000, 1 + rng() % 8});
    }
    // A chain of nested components with random port decls.
    CclComponent* parent = nullptr;
    const int depth = 1 + static_cast<int>(rng() % 4);
    for (int d = 0; d < depth; ++d) {
        CclComponent comp;
        comp.instance_name = "inst" + std::to_string(d);
        comp.class_name = "Class" + std::to_string(rng() % 3);
        if (d == 0) {
            comp.type = core::ComponentType::kImmortal;
        } else {
            comp.type = core::ComponentType::kScoped;
            comp.scope_level = d;
        }
        if (rng() % 2 == 0) {
            CclPortDecl port;
            port.name = "p" + std::to_string(d);
            port.has_attributes = true;
            port.attributes.buffer_size = 1 + rng() % 64;
            port.attributes.min_threads = rng() % 3;
            port.attributes.max_threads =
                port.attributes.min_threads + rng() % 3;
            port.attributes.strategy = rng() % 2 == 0
                                           ? core::ThreadpoolStrategy::kShared
                                           : core::ThreadpoolStrategy::kDedicated;
            port.attributes.policy.overflow =
                rng() % 2 == 0 ? core::OverflowPolicy::kBlock
                               : core::OverflowPolicy::kRingOverwrite;
            if (rng() % 2 == 0) {
                port.links.push_back({rng() % 2 == 0 ? LinkKind::kInternal
                                                     : LinkKind::kExternal,
                                      "instX", "portY", 0});
            }
            comp.ports.push_back(port);
        }
        if (parent == nullptr) {
            model.components.push_back(comp);
            parent = &model.components.back();
        } else {
            parent->children.push_back(comp);
            parent = &parent->children.back();
        }
    }
    // Sometimes shard the app across priority-banded remotes too.
    const int remote_count = static_cast<int>(rng() % 3);
    for (int r = 0; r < remote_count; ++r) {
        CclRemote remote;
        remote.name = "peer" + std::to_string(r);
        remote.bands = 1 + rng() % 4;
        const int export_count = 1 + static_cast<int>(rng() % 3);
        for (int e = 0; e < export_count; ++e) {
            const int band =
                rng() % 2 == 0 ? -1 : static_cast<int>(rng() % remote.bands);
            core::TransmissionPolicy policy;
            policy.band = band;
            policy.coalesce = rng() % 2 == 0;
            remote.exports.push_back({"inst0", "p" + std::to_string(e),
                                      "route" + std::to_string(r * 8 + e),
                                      policy, 0});
        }
        if (rng() % 2 == 0) {
            remote.imports.push_back(
                {"inst0", "pin", "route" + std::to_string(r * 8 + 7), {}, 0});
        }
        model.remotes.push_back(remote);
    }
    if (remote_count > 0) model.rtsj.reactor_bands = 1 + rng() % 8;
    const CclModel reparsed = parse_ccl_string(emit_ccl(model));
    EXPECT_TRUE(models_equal(model, reparsed)) << emit_ccl(model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmitFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Emit, CclRoundTripsTraceBlock) {
    CclModel model;
    model.application_name = "Traced";
    model.rtsj.trace.enabled = true;
    model.rtsj.trace.sample_shift = 6;
    model.rtsj.trace.ring_depth = 8192;
    model.rtsj.trace.recorder = false;

    CclComponent hub;
    hub.instance_name = "H";
    hub.class_name = "Hub";
    hub.type = core::ComponentType::kImmortal;
    model.components.push_back(hub);

    const std::string xml_text = emit_ccl(model);
    EXPECT_NE(xml_text.find("<Trace>"), std::string::npos) << xml_text;
    const CclModel reparsed = parse_ccl_string(xml_text);
    EXPECT_TRUE(reparsed.rtsj.trace.enabled);
    EXPECT_EQ(reparsed.rtsj.trace.sample_shift, 6u);
    EXPECT_EQ(reparsed.rtsj.trace.ring_depth, 8192u);
    EXPECT_FALSE(reparsed.rtsj.trace.recorder);

    // And a model with no trace block emits none.
    model.rtsj.trace = {};
    EXPECT_EQ(emit_ccl(model).find("<Trace>"), std::string::npos);
}
