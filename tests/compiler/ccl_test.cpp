// CCL parsing (paper Listing 1.2).
#include "compiler/ccl.hpp"

#include <gtest/gtest.h>

using namespace compadres;
using compiler::CclError;
using compiler::LinkKind;

namespace {
const char* kListing12 = R"(
<Application>
 <ApplicationName>MyApp</ApplicationName>
 <Component>
  <InstanceName>MyServer</InstanceName>
  <ClassName>Server</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection>
   <Port>
    <PortName>DataIn</PortName>
    <PortAttributes>
     <BufferSize>5</BufferSize>
     <Threadpool>Shared</Threadpool>
     <MinThreadpoolSize>2</MinThreadpoolSize>
     <MaxThreadpoolSize>10</MaxThreadpoolSize>
    </PortAttributes>
    <Link>
     <PortType>Internal</PortType>
     <ToComponent>MyCalculator</ToComponent>
     <ToPort>DataOut</ToPort>
    </Link>
   </Port>
  </Connection>
  <Component>
   <InstanceName>MyCalculator</InstanceName>
   <ClassName>Calculator</ClassName>
   <ComponentType>Scoped</ComponentType>
   <ScopeLevel>1</ScopeLevel>
  </Component>
 </Component>
 <RTSJAttributes>
  <ImmortalSize>400000</ImmortalSize>
  <ScopedPool>
   <ScopeLevel>1</ScopeLevel>
   <ScopeSize>200000</ScopeSize>
   <PoolSize>3</PoolSize>
  </ScopedPool>
 </RTSJAttributes>
</Application>)";
} // namespace

TEST(Ccl, ParsesListing12) {
    const auto model = compiler::parse_ccl_string(kListing12);
    EXPECT_EQ(model.application_name, "MyApp");
    ASSERT_EQ(model.components.size(), 1u);
    const compiler::CclComponent& server = model.components[0];
    EXPECT_EQ(server.instance_name, "MyServer");
    EXPECT_EQ(server.class_name, "Server");
    EXPECT_EQ(server.type, core::ComponentType::kImmortal);
    ASSERT_EQ(server.children.size(), 1u);
    EXPECT_EQ(server.children[0].instance_name, "MyCalculator");
    EXPECT_EQ(server.children[0].type, core::ComponentType::kScoped);
    EXPECT_EQ(server.children[0].scope_level, 1);
}

TEST(Ccl, ParsesPortAttributes) {
    const auto model = compiler::parse_ccl_string(kListing12);
    const compiler::CclPortDecl& port = model.components[0].ports.at(0);
    EXPECT_EQ(port.name, "DataIn");
    EXPECT_TRUE(port.has_attributes);
    EXPECT_EQ(port.attributes.buffer_size, 5u);
    EXPECT_EQ(port.attributes.strategy, core::ThreadpoolStrategy::kShared);
    EXPECT_EQ(port.attributes.min_threads, 2u);
    EXPECT_EQ(port.attributes.max_threads, 10u);
    // <Overflow> is optional and defaults to lossless backpressure.
    EXPECT_EQ(port.attributes.policy.overflow, core::OverflowPolicy::kBlock);
}

TEST(Ccl, ParsesRingOverflow) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName><ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType>"
        "<Connection><Port><PortName>in</PortName>"
        "<PortAttributes><BufferSize>2</BufferSize>"
        "<Overflow>Ring</Overflow></PortAttributes>"
        "</Port></Connection></Component></Application>");
    const compiler::CclPortDecl& port = model.components[0].ports.at(0);
    EXPECT_EQ(port.attributes.policy.overflow, core::OverflowPolicy::kRingOverwrite);
}

TEST(Ccl, ParsesLinks) {
    const auto model = compiler::parse_ccl_string(kListing12);
    const compiler::CclLink& link = model.components[0].ports.at(0).links.at(0);
    EXPECT_EQ(link.kind, LinkKind::kInternal);
    EXPECT_EQ(link.to_component, "MyCalculator");
    EXPECT_EQ(link.to_port, "DataOut");
}

TEST(Ccl, ParsesRtsjAttributes) {
    const auto model = compiler::parse_ccl_string(kListing12);
    EXPECT_EQ(model.rtsj.immortal_size, 400'000u);
    ASSERT_EQ(model.rtsj.scoped_pools.size(), 1u);
    EXPECT_EQ(model.rtsj.scoped_pools[0].level, 1);
    EXPECT_EQ(model.rtsj.scoped_pools[0].scope_size, 200'000u);
    EXPECT_EQ(model.rtsj.scoped_pools[0].pool_size, 3u);
}

TEST(Ccl, ForEachComponentVisitsParentsFirst) {
    const auto model = compiler::parse_ccl_string(kListing12);
    std::vector<std::string> order;
    model.for_each_component(
        [&](const compiler::CclComponent& c, const compiler::CclComponent* p) {
            order.push_back(c.instance_name +
                            (p != nullptr ? "<" + p->instance_name : ""));
        });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "MyServer");
    EXPECT_EQ(order[1], "MyCalculator<MyServer");
}

TEST(Ccl, DefaultsWhenOptionalTagsAbsent) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName><ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component></Application>");
    EXPECT_GT(model.rtsj.immortal_size, 0u); // library default
    EXPECT_TRUE(model.rtsj.scoped_pools.empty());
    EXPECT_TRUE(model.components[0].ports.empty());
}

TEST(CclErrors, WrongRootElement) {
    EXPECT_THROW(compiler::parse_ccl_string("<App/>"), CclError);
}

TEST(CclErrors, MissingApplicationName) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><Component>"
                     "<InstanceName>I</InstanceName><ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "</Component></Application>"),
                 CclError);
}

TEST(CclErrors, NoComponents) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "</Application>"),
                 CclError);
}

TEST(CclErrors, ScopedWithoutLevel) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Scoped</ComponentType>"
                     "</Component></Application>"),
                 CclError);
}

TEST(CclErrors, BadComponentType) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Eternal</ComponentType>"
                     "</Component></Application>"),
                 CclError);
}

TEST(CclErrors, NonNumericBufferSize) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "<Connection><Port><PortName>P</PortName>"
                     "<PortAttributes><BufferSize>lots</BufferSize>"
                     "</PortAttributes></Port></Connection>"
                     "</Component></Application>"),
                 CclError);
}

TEST(CclErrors, MinGreaterThanMaxPool) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "<Connection><Port><PortName>P</PortName>"
                     "<PortAttributes><MinThreadpoolSize>5</MinThreadpoolSize>"
                     "<MaxThreadpoolSize>2</MaxThreadpoolSize>"
                     "</PortAttributes></Port></Connection>"
                     "</Component></Application>"),
                 CclError);
}

TEST(CclErrors, BadOverflowValue) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "<Connection><Port><PortName>in</PortName>"
                     "<PortAttributes><Overflow>Newest</Overflow>"
                     "</PortAttributes>"
                     "</Port></Connection></Component></Application>"),
                 CclError);
}

TEST(CclErrors, LinkMissingTarget) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "<Connection><Port><PortName>P</PortName>"
                     "<Link><PortType>External</PortType></Link>"
                     "</Port></Connection></Component></Application>"),
                 CclError);
}

TEST(CclErrors, BadLinkKind) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType>"
                     "<Connection><Port><PortName>P</PortName>"
                     "<Link><PortType>Diagonal</PortType>"
                     "<ToComponent>X</ToComponent><ToPort>Y</ToPort></Link>"
                     "</Port></Connection></Component></Application>"),
                 CclError);
}

TEST(CclErrors, NegativeScopeLevel) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Scoped</ComponentType>"
                     "<ScopeLevel>0</ScopeLevel>"
                     "</Component></Application>"),
                 CclError);
}

// ---- <Remote> / <Bands> (priority-banded connection lanes) ----

TEST(CclRemote, ParsesRemoteWithBandsExportsAndImports) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>"
        "<Remote><RemoteName>uplink</RemoteName><Bands>3</Bands>"
        "<Export><Component>I</Component><Port>out</Port>"
        "<Route>a.b</Route><Band>2</Band></Export>"
        "<Import><Component>I</Component><Port>in</Port>"
        "<Route>c.d</Route></Import></Remote>"
        "<RTSJAttributes><ReactorBands>3</ReactorBands></RTSJAttributes>"
        "</Application>");
    ASSERT_EQ(model.remotes.size(), 1u);
    const compiler::CclRemote& r = model.remotes[0];
    EXPECT_EQ(r.name, "uplink");
    EXPECT_EQ(r.bands, 3u);
    ASSERT_EQ(r.exports.size(), 1u);
    EXPECT_EQ(r.exports[0].component, "I");
    EXPECT_EQ(r.exports[0].port, "out");
    EXPECT_EQ(r.exports[0].route, "a.b");
    EXPECT_EQ(r.exports[0].policy.band, 2);
    ASSERT_EQ(r.imports.size(), 1u);
    EXPECT_EQ(r.imports[0].route, "c.d");
    EXPECT_EQ(r.imports[0].policy.band, -1); // absent <Band> stays unset
    EXPECT_EQ(model.rtsj.reactor_bands, 3u);
}

TEST(CclRemote, BandsDefaultsToTwoAndReactorBandsToFour) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>"
        "<Remote><RemoteName>R</RemoteName>"
        "<Export><Component>I</Component><Port>p</Port>"
        "<Route>r</Route></Export></Remote></Application>");
    ASSERT_EQ(model.remotes.size(), 1u);
    EXPECT_EQ(model.remotes[0].bands, 2u);
    EXPECT_EQ(model.rtsj.reactor_bands, 4u);
}

TEST(CclRemote, ParsesTransportAndHost) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>"
        "<Remote><RemoteName>R</RemoteName>"
        "<Transport>shm</Transport><Host>localhost</Host>"
        "<Export><Component>I</Component><Port>p</Port>"
        "<Route>r</Route></Export></Remote></Application>");
    ASSERT_EQ(model.remotes.size(), 1u);
    const compiler::CclRemote& r = model.remotes[0];
    EXPECT_EQ(r.transport, compiler::RemoteTransport::kShm);
    EXPECT_EQ(r.host, "localhost");
    // shm defaults to one lane; an undeclared <Bands> collapses to 1
    // instead of the TCP default of 2.
    EXPECT_FALSE(r.bands_declared);
    EXPECT_EQ(r.bands, 1u);
}

TEST(CclRemote, TransportDefaultsToTcpAndLoopbackHost) {
    const auto model = compiler::parse_ccl_string(
        "<Application><ApplicationName>A</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>C</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>"
        "<Remote><RemoteName>R</RemoteName>"
        "<Export><Component>I</Component><Port>p</Port>"
        "<Route>r</Route></Export></Remote></Application>");
    EXPECT_EQ(model.remotes[0].transport, compiler::RemoteTransport::kTcp);
    EXPECT_EQ(model.remotes[0].host, "127.0.0.1");
}

TEST(CclRemoteErrors, UnknownTransportRejected) {
    try {
        compiler::parse_ccl_string(
            "<Application><ApplicationName>A</ApplicationName>"
            "<Component><InstanceName>I</InstanceName>"
            "<ClassName>C</ClassName>"
            "<ComponentType>Immortal</ComponentType></Component>"
            "<Remote><RemoteName>R</RemoteName>"
            "<Transport>rdma</Transport>"
            "<Export><Component>I</Component><Port>p</Port>"
            "<Route>r</Route></Export></Remote></Application>");
        FAIL() << "unknown transport should throw";
    } catch (const CclError& e) {
        EXPECT_NE(std::string(e.what()).find("'tcp' or 'shm'"),
                  std::string::npos);
    }
}

TEST(CclRemoteErrors, EmptyHostRejected) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><RemoteName>R</RemoteName>"
                     "<Host></Host>"
                     "<Export><Component>I</Component><Port>p</Port>"
                     "<Route>r</Route></Export></Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, MissingRemoteName) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><Bands>2</Bands>"
                     "<Export><Component>I</Component><Port>p</Port>"
                     "<Route>r</Route></Export></Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, ZeroBands) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><RemoteName>R</RemoteName><Bands>0</Bands>"
                     "<Export><Component>I</Component><Port>p</Port>"
                     "<Route>r</Route></Export></Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, RemoteWithoutRoutes) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
                     "</Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, ExportMissingRoute) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><RemoteName>R</RemoteName>"
                     "<Export><Component>I</Component><Port>p</Port>"
                     "</Export></Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, NegativeBand) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Remote><RemoteName>R</RemoteName>"
                     "<Export><Component>I</Component><Port>p</Port>"
                     "<Route>r</Route><Band>-1</Band></Export>"
                     "</Remote></Application>"),
                 CclError);
}

TEST(CclRemoteErrors, ZeroReactorBands) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     "<Application><ApplicationName>A</ApplicationName>"
                     "<Component><InstanceName>I</InstanceName>"
                     "<ClassName>C</ClassName>"
                     "<ComponentType>Immortal</ComponentType></Component>"
                     "<RTSJAttributes><ReactorBands>0</ReactorBands>"
                     "</RTSJAttributes></Application>"),
                 CclError);
}

// ---- <Trace> (observability plane) ----

namespace {
const char* kTraceAppPrefix =
    "<Application><ApplicationName>A</ApplicationName>"
    "<Component><InstanceName>I</InstanceName>"
    "<ClassName>C</ClassName>"
    "<ComponentType>Immortal</ComponentType></Component>";
} // namespace

TEST(CclTrace, FullBlockParses) {
    const auto model = compiler::parse_ccl_string(
        std::string(kTraceAppPrefix) +
        "<RTSJAttributes><Trace><SampleShift>4</SampleShift>"
        "<RingDepth>1024</RingDepth><Recorder>false</Recorder></Trace>"
        "</RTSJAttributes></Application>");
    EXPECT_TRUE(model.rtsj.trace.enabled);
    EXPECT_EQ(model.rtsj.trace.sample_shift, 4u);
    EXPECT_EQ(model.rtsj.trace.ring_depth, 1024u);
    EXPECT_FALSE(model.rtsj.trace.recorder);
}

TEST(CclTrace, BlockPresenceEnablesWithDefaults) {
    const auto model = compiler::parse_ccl_string(
        std::string(kTraceAppPrefix) +
        "<RTSJAttributes><Trace></Trace></RTSJAttributes></Application>");
    EXPECT_TRUE(model.rtsj.trace.enabled);
    EXPECT_TRUE(model.rtsj.trace.recorder); // defaults on inside the block
    EXPECT_EQ(model.rtsj.trace.sample_shift, 10u);
    EXPECT_EQ(model.rtsj.trace.ring_depth, 4096u);
}

TEST(CclTrace, AbsentBlockLeavesTracingOff) {
    const auto model = compiler::parse_ccl_string(
        std::string(kTraceAppPrefix) + "</Application>");
    EXPECT_FALSE(model.rtsj.trace.enabled);
    EXPECT_FALSE(model.rtsj.trace.recorder);
}

TEST(CclTraceErrors, OutOfRangeSampleShift) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     std::string(kTraceAppPrefix) +
                     "<RTSJAttributes><Trace><SampleShift>63</SampleShift>"
                     "</Trace></RTSJAttributes></Application>"),
                 CclError);
}

TEST(CclTraceErrors, ZeroRingDepth) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     std::string(kTraceAppPrefix) +
                     "<RTSJAttributes><Trace><RingDepth>0</RingDepth>"
                     "</Trace></RTSJAttributes></Application>"),
                 CclError);
}

TEST(CclTraceErrors, MalformedRecorderFlag) {
    EXPECT_THROW(compiler::parse_ccl_string(
                     std::string(kTraceAppPrefix) +
                     "<RTSJAttributes><Trace><Recorder>maybe</Recorder>"
                     "</Trace></RTSJAttributes></Application>"),
                 CclError);
}
