// compadresc CLI: the compiler's command-line front-end, driven in-process.
#include "compiler/cli.hpp"
#include "compiler/emit.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using compadres::compiler::compadresc_main;
namespace fs = std::filesystem;

namespace {

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("compadresc-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter++));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static inline int counter = 0;
};

fs::path write_file(const TempDir& dir, const std::string& name,
                    const std::string& content) {
    const fs::path p = dir.path / name;
    std::ofstream f(p);
    f << content;
    return p;
}

const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Pinger</ComponentName>
  <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Ponger</ComponentName>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

const char* kCcl = R"(
<Application>
 <ApplicationName>PingApp</ApplicationName>
 <Component>
  <InstanceName>P1</InstanceName><ClassName>Pinger</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>Internal</PortType><ToComponent>P2</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
  <Component>
   <InstanceName>P2</InstanceName><ClassName>Ponger</ClassName>
   <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  </Component>
 </Component>
</Application>)";

// Same topology, plus a priority-banded remote sharding P1.out / P2.in
// across two lanes.
const char* kCclRemote = R"(
<Application>
 <ApplicationName>PingApp</ApplicationName>
 <Component>
  <InstanceName>P1</InstanceName><ClassName>Pinger</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Component>
   <InstanceName>P2</InstanceName><ClassName>Ponger</ClassName>
   <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  </Component>
 </Component>
 <Remote>
  <RemoteName>peer</RemoteName>
  <Bands>2</Bands>
  <Export><Component>P1</Component><Port>out</Port><Route>cmd</Route><Band>0</Band></Export>
  <Import><Component>P2</Component><Port>in</Port><Route>ack</Route></Import>
 </Remote>
</Application>)";

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run(std::vector<std::string> args) {
    std::ostringstream out, err;
    const int code = compadresc_main(args, out, err);
    return {code, out.str(), err.str()};
}

} // namespace

TEST(Cli, NoArgsPrintsUsage) {
    const auto r = run({});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandPrintsUsage) {
    const auto r = run({"frobnicate"});
    EXPECT_EQ(r.code, 1);
}

TEST(Cli, CheckCdlOnly) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto r = run({"check", cdl.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("CDL ok: 2 component class(es)"), std::string::npos);
}

TEST(Cli, CheckCdlAndCcl) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCcl);
    const auto r = run({"check", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("CCL ok: 2 instance(s), 1 connection(s)"),
              std::string::npos);
}

TEST(Cli, CheckReportsValidationIssues) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(
        dir, "bad.ccl.xml",
        "<Application><ApplicationName>X</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>Ghost</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component></Application>");
    const auto r = run({"check", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("Ghost"), std::string::npos);
}

TEST(Cli, CheckMissingFileIsError) {
    const auto r = run({"check", "/nonexistent/file.xml"});
    EXPECT_EQ(r.code, 2);
}

TEST(Cli, SkeletonsWritesOneHeaderPerClass) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto out_dir = dir.path / "gen";
    const auto r = run({"skeletons", cdl.string(), "-o", out_dir.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_TRUE(fs::exists(out_dir / "pinger_component.hpp"));
    EXPECT_TRUE(fs::exists(out_dir / "ponger_component.hpp"));
    std::ifstream f(out_dir / "ponger_component.hpp");
    std::stringstream content;
    content << f.rdbuf();
    EXPECT_NE(content.str().find("class Ponger"), std::string::npos);
}

TEST(Cli, SkeletonsRequiresOutputDir) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto r = run({"skeletons", cdl.string()});
    EXPECT_EQ(r.code, 1);
}

TEST(Cli, PlanDumpsTopology) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCcl);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("application: PingApp"), std::string::npos);
    EXPECT_NE(r.out.find("P1.out -> P2.in"), std::string::npos);
    EXPECT_NE(r.out.find("host=P1"), std::string::npos);
}

TEST(Cli, PlanDumpsRemoteLanesWithBands) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCclRemote);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("remote: peer bands=2"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("export cmd: P1.out type=MyInteger band=0"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("import ack: P2.in type=MyInteger"),
              std::string::npos)
        << r.out;
}

TEST(Cli, PlanDumpsShmTransportAndHost) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    std::string ccl_text = kCclRemote;
    const std::string bands = "<Bands>2</Bands>";
    const auto pos = ccl_text.find(bands);
    ASSERT_NE(pos, std::string::npos);
    ccl_text.replace(pos, bands.size(),
                     "<Transport>shm</Transport><Host>localhost</Host>");
    const auto ccl = write_file(dir, "a.ccl.xml", ccl_text);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("remote: peer bands=1 transport=shm host=localhost"),
              std::string::npos)
        << r.out;
}

TEST(Cli, PlanDumpsBandedShmRemote) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    std::string ccl_text = kCclRemote;
    const std::string bands = "<Bands>2</Bands>";
    const auto pos = ccl_text.find(bands);
    ASSERT_NE(pos, std::string::npos);
    ccl_text.replace(pos, bands.size(),
                     "<Bands>2</Bands><Transport>shm</Transport>"
                     "<Host>localhost</Host>");
    const auto ccl = write_file(dir, "a.ccl.xml", ccl_text);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("remote: peer bands=2 transport=shm host=localhost"),
              std::string::npos)
        << r.out;
}

TEST(Cli, PlanShowsAutoBandForUnpinnedExports) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    std::string ccl_text = kCclRemote;
    const std::string pin = "<Band>0</Band>";
    const auto pos = ccl_text.find(pin);
    ASSERT_NE(pos, std::string::npos);
    ccl_text.erase(pos, pin.size());
    const auto ccl = write_file(dir, "a.ccl.xml", ccl_text);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("export cmd: P1.out type=MyInteger band=auto"),
              std::string::npos)
        << r.out;
}

TEST(Cli, CheckCountsRemotes) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCclRemote);
    const auto r = run({"check", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("1 remote(s)"), std::string::npos) << r.out;
}

TEST(Cli, CheckRejectsBandBeyondRemoteWidth) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    std::string ccl_text = kCclRemote;
    const std::string pin = "<Band>0</Band>";
    const auto pos = ccl_text.find(pin);
    ASSERT_NE(pos, std::string::npos);
    ccl_text.replace(pos, pin.size(), "<Band>5</Band>");
    const auto ccl = write_file(dir, "a.ccl.xml", ccl_text);
    const auto r = run({"check", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("band range"), std::string::npos) << r.err;
}

TEST(Cli, MainStubWritesCompilableStub) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCcl);
    const auto out_dir = dir.path / "gen";
    const auto r =
        run({"main-stub", cdl.string(), ccl.string(), "-o", out_dir.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_TRUE(fs::exists(out_dir / "PingApp_main.cpp"));
}

TEST(Cli, CanonReEmitsParseableDocuments) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    const auto ccl = write_file(dir, "a.ccl.xml", kCcl);
    const auto r = run({"canon", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("<CDL>"), std::string::npos);
    EXPECT_NE(r.out.find("<Application>"), std::string::npos);
    // The canonical output itself parses (split at the CCL root).
    const auto app_pos = r.out.find("<?xml version=\"1.0\"?>\n<Application>");
    ASSERT_NE(app_pos, std::string::npos);
    EXPECT_NO_THROW(compadres::compiler::parse_cdl_string(
        r.out.substr(0, app_pos)));
    EXPECT_NO_THROW(compadres::compiler::parse_ccl_string(
        r.out.substr(app_pos)));
}

TEST(Cli, PlanDumpsTraceKnobs) {
    TempDir dir;
    const auto cdl = write_file(dir, "a.cdl.xml", kCdl);
    std::string ccl_text = kCcl;
    const std::string anchor = "</Application>";
    const auto pos = ccl_text.find(anchor);
    ASSERT_NE(pos, std::string::npos);
    ccl_text.insert(pos,
                    "<RTSJAttributes><Trace><SampleShift>3</SampleShift>"
                    "<RingDepth>512</RingDepth></Trace></RTSJAttributes>");
    const auto ccl = write_file(dir, "a.ccl.xml", ccl_text);
    const auto r = run({"plan", cdl.string(), ccl.string()});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("trace: sample-shift 3, ring depth 512, recorder on"),
              std::string::npos)
        << r.out;
}
