// Skeleton generation: the C++ analogue of the paper's generated Java
// component/handler skeletons.
#include "compiler/codegen.hpp"

#include <gtest/gtest.h>

using namespace compadres;

namespace {
const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Server</ComponentName>
  <Port><PortName>DataOut</PortName><PortType>Out</PortType><MessageType>String</MessageType></Port>
  <Port><PortName>DataIn</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>EchoClient</ComponentName>
  <Port><PortName>reply</PortName><PortType>In</PortType><MessageType>String</MessageType></Port>
 </Component>
</CDL>)";
} // namespace

TEST(Codegen, OneFilePerComponentClass) {
    const auto files =
        compiler::generate_skeletons(compiler::parse_cdl_string(kCdl));
    EXPECT_EQ(files.size(), 2u);
    EXPECT_TRUE(files.count("server_component.hpp"));
    EXPECT_TRUE(files.count("echo_client_component.hpp"));
}

TEST(Codegen, ComponentSkeletonDeclaresAllPorts) {
    const auto files =
        compiler::generate_skeletons(compiler::parse_cdl_string(kCdl));
    const std::string& server = files.at("server_component.hpp");
    EXPECT_NE(server.find("class Server : public compadres::core::Component"),
              std::string::npos);
    EXPECT_NE(server.find("add_out_port<compadres::core::TextMessage>(\"DataOut\""),
              std::string::npos);
    EXPECT_NE(server.find("add_in_port<compadres::core::MyInteger>(\"DataIn\""),
              std::string::npos);
}

TEST(Codegen, HandlerSkeletonPerInPort) {
    const auto files =
        compiler::generate_skeletons(compiler::parse_cdl_string(kCdl));
    const std::string& server = files.at("server_component.hpp");
    EXPECT_NE(server.find("class Server_DataIn_Handler"), std::string::npos);
    EXPECT_NE(server.find("void process(compadres::core::MyInteger& msg"),
              std::string::npos);
    // No handler for the Out port.
    EXPECT_EQ(server.find("Server_DataOut_Handler"), std::string::npos);
}

TEST(Codegen, SkeletonUsesCclPortConfigHook) {
    const auto files =
        compiler::generate_skeletons(compiler::parse_cdl_string(kCdl));
    EXPECT_NE(files.at("server_component.hpp").find("port_config(\"DataIn\")"),
              std::string::npos);
}

TEST(Codegen, RegistrationHelperEmitted) {
    const auto files =
        compiler::generate_skeletons(compiler::parse_cdl_string(kCdl));
    EXPECT_NE(files.at("server_component.hpp")
                  .find("register_class<Server>(\"Server\")"),
              std::string::npos);
}

TEST(Codegen, UnknownMessageTypesPassThrough) {
    EXPECT_EQ(compiler::cpp_type_for_message("CustomType"), "CustomType");
    EXPECT_EQ(compiler::cpp_type_for_message("String"),
              "compadres::core::TextMessage");
    EXPECT_EQ(compiler::cpp_type_for_message("OctetSeq"),
              "compadres::core::OctetSeq");
}

TEST(Codegen, MainStubAssemblesAndStarts) {
    const auto cdl = compiler::parse_cdl_string(kCdl);
    const auto ccl = compiler::parse_ccl_string(
        "<Application><ApplicationName>Demo</ApplicationName>"
        "<Component><InstanceName>S</InstanceName><ClassName>Server</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component></Application>");
    const auto plan = compiler::validate_and_plan(cdl, ccl);
    const std::string main_stub = compiler::generate_main_stub(plan);
    EXPECT_NE(main_stub.find("register_builtin_message_types"),
              std::string::npos);
    EXPECT_NE(main_stub.find("register_server()"), std::string::npos);
    EXPECT_NE(main_stub.find("assemble_from_files"), std::string::npos);
    EXPECT_NE(main_stub.find("app->start()"), std::string::npos);
}
