// CDL parsing (paper Listing 1.1).
#include "compiler/cdl.hpp"

#include <gtest/gtest.h>

using namespace compadres;
using compiler::CdlError;
using compiler::PortDirection;

namespace {
const char* kListing11 = R"(
<CDL>
 <Component>
  <ComponentName>Server</ComponentName>
  <Port>
   <PortName>DataOut</PortName>
   <PortType>Out</PortType>
   <MessageType>String</MessageType>
  </Port>
  <Port>
   <PortName>DataIn</PortName>
   <PortType>In</PortType>
   <MessageType>CustomType</MessageType>
  </Port>
 </Component>
 <Component>
  <ComponentName>Calculator</ComponentName>
  <Port>
   <PortName>DataOut</PortName>
   <PortType>Out</PortType>
   <MessageType>String</MessageType>
  </Port>
 </Component>
</CDL>)";
} // namespace

TEST(Cdl, ParsesListing11) {
    const auto model = compiler::parse_cdl_string(kListing11);
    EXPECT_EQ(model.components.size(), 2u);
    const compiler::CdlComponent* server = model.find("Server");
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->ports.size(), 2u);
    const compiler::CdlPort* out = server->find_port("DataOut");
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->direction, PortDirection::kOut);
    EXPECT_EQ(out->message_type, "String");
    const compiler::CdlPort* in = server->find_port("DataIn");
    ASSERT_NE(in, nullptr);
    EXPECT_EQ(in->direction, PortDirection::kIn);
    EXPECT_EQ(in->message_type, "CustomType");
}

TEST(Cdl, SingleComponentRootAccepted) {
    const auto model = compiler::parse_cdl_string(
        "<Component><ComponentName>Solo</ComponentName></Component>");
    EXPECT_NE(model.find("Solo"), nullptr);
}

TEST(Cdl, FindUnknownComponentReturnsNull) {
    const auto model = compiler::parse_cdl_string(kListing11);
    EXPECT_EQ(model.find("Nope"), nullptr);
}

TEST(Cdl, FindUnknownPortReturnsNull) {
    const auto model = compiler::parse_cdl_string(kListing11);
    EXPECT_EQ(model.find("Server")->find_port("Nope"), nullptr);
}

TEST(CdlErrors, EmptyDocumentRejected) {
    EXPECT_THROW(compiler::parse_cdl_string("<CDL></CDL>"), CdlError);
}

TEST(CdlErrors, MissingComponentName) {
    EXPECT_THROW(compiler::parse_cdl_string("<CDL><Component/></CDL>"),
                 CdlError);
}

TEST(CdlErrors, DuplicateComponentName) {
    EXPECT_THROW(compiler::parse_cdl_string(
                     "<CDL><Component><ComponentName>A</ComponentName></Component>"
                     "<Component><ComponentName>A</ComponentName></Component></CDL>"),
                 CdlError);
}

TEST(CdlErrors, MissingPortName) {
    EXPECT_THROW(
        compiler::parse_cdl_string(
            "<Component><ComponentName>A</ComponentName>"
            "<Port><PortType>In</PortType><MessageType>X</MessageType></Port>"
            "</Component>"),
        CdlError);
}

TEST(CdlErrors, BadPortDirection) {
    EXPECT_THROW(
        compiler::parse_cdl_string(
            "<Component><ComponentName>A</ComponentName>"
            "<Port><PortName>P</PortName><PortType>InOut</PortType>"
            "<MessageType>X</MessageType></Port></Component>"),
        CdlError);
}

TEST(CdlErrors, MissingMessageType) {
    EXPECT_THROW(compiler::parse_cdl_string(
                     "<Component><ComponentName>A</ComponentName>"
                     "<Port><PortName>P</PortName><PortType>In</PortType>"
                     "</Port></Component>"),
                 CdlError);
}

TEST(CdlErrors, DuplicatePortNameWithinComponent) {
    EXPECT_THROW(
        compiler::parse_cdl_string(
            "<Component><ComponentName>A</ComponentName>"
            "<Port><PortName>P</PortName><PortType>In</PortType>"
            "<MessageType>X</MessageType></Port>"
            "<Port><PortName>P</PortName><PortType>Out</PortType>"
            "<MessageType>X</MessageType></Port></Component>"),
        CdlError);
}

TEST(CdlErrors, ErrorMessagesNameTheProblem) {
    try {
        compiler::parse_cdl_string(
            "<Component><ComponentName>Gadget</ComponentName>"
            "<Port><PortName>P</PortName><PortType>Sideways</PortType>"
            "<MessageType>X</MessageType></Port></Component>");
        FAIL() << "expected CdlError";
    } catch (const CdlError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Gadget.P"), std::string::npos);
        EXPECT_NE(what.find("Sideways"), std::string::npos);
    }
}
