// Validator: every rule the paper's compiler enforces, exercised both ways.
#include "compiler/validator.hpp"

#include <gtest/gtest.h>

#include <set>

using namespace compadres;
using compiler::LinkKind;
using compiler::ValidationError;

namespace {

// A CDL with enough shapes for all the link-topology cases.
const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Hub</ComponentName>
  <Port><PortName>cmdOut</PortName><PortType>Out</PortType><MessageType>Cmd</MessageType></Port>
  <Port><PortName>ackIn</PortName><PortType>In</PortType><MessageType>Ack</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Node</ComponentName>
  <Port><PortName>cmdIn</PortName><PortType>In</PortType><MessageType>Cmd</MessageType></Port>
  <Port><PortName>ackOut</PortName><PortType>Out</PortType><MessageType>Ack</MessageType></Port>
  <Port><PortName>fwdOut</PortName><PortType>Out</PortType><MessageType>Cmd</MessageType></Port>
 </Component>
</CDL>)";

std::string ccl_app(const std::string& body) {
    return "<Application><ApplicationName>T</ApplicationName>" + body +
           "</Application>";
}

compiler::AssemblyPlan plan_of(const std::string& ccl_body) {
    const auto cdl = compiler::parse_cdl_string(kCdl);
    const auto ccl = compiler::parse_ccl_string(ccl_app(ccl_body));
    return compiler::validate_and_plan(cdl, ccl);
}

std::vector<std::string> issues_of(const std::string& ccl_body) {
    try {
        plan_of(ccl_body);
    } catch (const ValidationError& e) {
        return e.issues();
    }
    return {};
}

bool any_issue_contains(const std::vector<std::string>& issues,
                        const std::string& needle) {
    for (const auto& issue : issues) {
        if (issue.find(needle) != std::string::npos) return true;
    }
    return false;
}

// Component snippets.
const char* kHubImmortal =
    "<Component><InstanceName>H</InstanceName><ClassName>Hub</ClassName>"
    "<ComponentType>Immortal</ComponentType>%BODY%</Component>";

std::string hub_with(const std::string& body) {
    std::string s = kHubImmortal;
    return s.replace(s.find("%BODY%"), 6, body);
}

} // namespace

TEST(Validator, AcceptsMinimalValidApp) {
    const auto plan = plan_of(hub_with(""));
    EXPECT_EQ(plan.application_name, "T");
    ASSERT_EQ(plan.components.size(), 1u);
    EXPECT_EQ(plan.components[0].class_name, "Hub");
    EXPECT_TRUE(plan.connections.empty());
}

TEST(Validator, UnknownClassReported) {
    const auto issues = issues_of(
        "<Component><InstanceName>X</InstanceName><ClassName>Ghost</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>");
    EXPECT_TRUE(any_issue_contains(issues, "undefined component class 'Ghost'"));
}

TEST(Validator, DuplicateInstanceNamesReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Component><InstanceName>H</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>");
    EXPECT_TRUE(any_issue_contains(issues, "duplicate instance name 'H'"));
}

TEST(Validator, ParentChildLinkPlansInternalConnection) {
    // Hub(immortal) contains Node(scoped L1); Hub.cmdOut -> Node.cmdIn.
    const auto plan = plan_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection>"
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    ASSERT_EQ(plan.connections.size(), 1u);
    const auto& conn = plan.connections[0];
    EXPECT_EQ(conn.from_instance, "H");
    EXPECT_EQ(conn.from_port, "cmdOut");
    EXPECT_EQ(conn.to_instance, "N");
    EXPECT_EQ(conn.to_port, "cmdIn");
    EXPECT_EQ(conn.host_instance, "H"); // parent hosts the pool
    EXPECT_FALSE(conn.shadow);
    EXPECT_EQ(conn.message_type, "Cmd");
}

TEST(Validator, LinkDeclaredOnInSideIsOrientedOutToIn) {
    // Same topology, but the link written under the child's In port.
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>H</ToComponent><ToPort>cmdOut</ToPort></Link>"
        "</Port></Connection></Component>"));
    ASSERT_EQ(plan.connections.size(), 1u);
    EXPECT_EQ(plan.connections[0].from_instance, "H"); // Out side first
    EXPECT_EQ(plan.connections[0].to_instance, "N");
}

TEST(Validator, SiblingLinkMustBeExternal) {
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>A</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>fwdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>B</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection></Component>"
        "<Component><InstanceName>B</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "must be declared External"));
}

TEST(Validator, SiblingExternalLinkHostedByParent) {
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>A</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>fwdOut</PortName>"
        "<Link><PortType>External</PortType>"
        "<ToComponent>B</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection></Component>"
        "<Component><InstanceName>B</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    ASSERT_EQ(plan.connections.size(), 1u);
    EXPECT_EQ(plan.connections[0].host_instance, "H");
    EXPECT_FALSE(plan.connections[0].shadow);
}

TEST(Validator, GrandparentLinkBecomesShadowPort) {
    // Node (L2) -> Hub (immortal grandparent): compiler detects the shadow
    // port (paper Fig. 5) and hosts the pool at the ancestor.
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>Mid</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>Leaf</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>"
        "<Connection><Port><PortName>ackOut</PortName>"
        "<Link><PortType>External</PortType>"
        "<ToComponent>H</ToComponent><ToPort>ackIn</ToPort></Link>"
        "</Port></Connection></Component></Component>"));
    ASSERT_EQ(plan.connections.size(), 1u);
    EXPECT_TRUE(plan.connections[0].shadow);
    EXPECT_EQ(plan.connections[0].host_instance, "H");
}

TEST(Validator, GrandparentInternalLinkRejected) {
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>Mid</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>Leaf</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>"
        "<Connection><Port><PortName>ackOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>H</ToComponent><ToPort>ackIn</ToPort></Link>"
        "</Port></Connection></Component></Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "shadow port"));
}

TEST(Validator, OutToOutRejected) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>fwdOut</ToPort></Link>"
        "</Port></Connection>"
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    EXPECT_TRUE(
        any_issue_contains(issues, "Out ports must be connected to In ports"));
}

TEST(Validator, MessageTypeMismatchRejected) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port><Port><PortName>ackIn</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>fwdOut</ToPort></Link>"
        "</Port></Connection>"
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    // ackIn carries Ack; fwdOut carries Cmd.
    EXPECT_TRUE(any_issue_contains(issues, "message type mismatch"));
}

TEST(Validator, SelfConnectionIsLoop) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>External</PortType>"
        "<ToComponent>H</ToComponent><ToPort>ackIn</ToPort></Link>"
        "</Port></Connection>"));
    EXPECT_TRUE(any_issue_contains(issues, "loop"));
}

TEST(Validator, UnknownPeerInstanceReported) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>External</PortType>"
        "<ToComponent>Ghost</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection>"));
    EXPECT_TRUE(any_issue_contains(issues, "unknown instance 'Ghost'"));
}

TEST(Validator, UnknownPortReported) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>bogusPort</ToPort></Link>"
        "</Port></Connection>"
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "</Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "unknown port"));
}

TEST(Validator, PortNotInClassReported) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>madeUp</PortName></Port></Connection>"));
    EXPECT_TRUE(any_issue_contains(issues, "does not define"));
}

TEST(Validator, AttributesOnOutPortReported) {
    const auto issues = issues_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<PortAttributes><BufferSize>4</BufferSize></PortAttributes>"
        "</Port></Connection>"));
    EXPECT_TRUE(any_issue_contains(issues, "apply only to In ports"));
}

TEST(Validator, WrongScopeLevelReported) {
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>3</ScopeLevel>"
        "</Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "child must be parent + 1"));
}

TEST(Validator, ImmortalInsideScopedReported) {
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>Mid</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>Inner</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Immortal</ComponentType>"
        "</Component></Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "cannot be nested inside scoped"));
}

TEST(Validator, CousinConnectionRejected) {
    // Two scoped subtrees; leaf of one to leaf of the other: not siblings,
    // not ancestor/descendant — illegal under the scoping rules.
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>L</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>LL</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>"
        "<Connection><Port><PortName>fwdOut</PortName>"
        "<Link><PortType>External</PortType>"
        "<ToComponent>RR</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection></Component></Component>"
        "<Component><InstanceName>R</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>RR</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>"
        "</Component></Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "neither parent/child"));
}

TEST(Validator, EdgeDeclaredOnBothEndsCollapsesToOne) {
    const auto plan = plan_of(hub_with(
        "<Connection><Port><PortName>cmdOut</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>N</ToComponent><ToPort>cmdIn</ToPort></Link>"
        "</Port></Connection>"
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>H</ToComponent><ToPort>cmdOut</ToPort></Link>"
        "</Port></Connection></Component>"));
    EXPECT_EQ(plan.connections.size(), 1u);
}

TEST(Validator, UsedLevelsGetPoolsInPlan) {
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Component><InstanceName>NN</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>"
        "</Component></Component>"));
    std::set<int> levels;
    for (const auto& pool : plan.rtsj.scoped_pools) levels.insert(pool.level);
    EXPECT_TRUE(levels.count(1));
    EXPECT_TRUE(levels.count(2));
}

TEST(Validator, PoolCapacityDerivedFromPortAttributes) {
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<PortAttributes><BufferSize>6</BufferSize>"
        "<MinThreadpoolSize>1</MinThreadpoolSize>"
        "<MaxThreadpoolSize>4</MaxThreadpoolSize></PortAttributes>"
        "<Link><PortType>Internal</PortType>"
        "<ToComponent>H</ToComponent><ToPort>cmdOut</ToPort></Link>"
        "</Port></Connection></Component>"));
    ASSERT_EQ(plan.connections.size(), 1u);
    EXPECT_EQ(plan.connections[0].pool_capacity, 6u + 4u + 2u);
}

TEST(Validator, PortConfigsLandInPlannedComponent) {
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<PortAttributes><BufferSize>9</BufferSize>"
        "<Threadpool>Shared</Threadpool>"
        "<MinThreadpoolSize>2</MinThreadpoolSize>"
        "<MaxThreadpoolSize>3</MaxThreadpoolSize></PortAttributes>"
        "</Port></Connection></Component>"));
    const compiler::PlannedComponent* node = nullptr;
    for (const auto& pc : plan.components) {
        if (pc.instance_name == "N") node = &pc;
    }
    ASSERT_NE(node, nullptr);
    ASSERT_TRUE(node->port_configs.count("cmdIn"));
    EXPECT_EQ(node->port_configs.at("cmdIn").buffer_size, 9u);
    EXPECT_EQ(node->port_configs.at("cmdIn").strategy,
              core::ThreadpoolStrategy::kShared);
}

TEST(Validator, RingOverflowOnSynchronousPortReported) {
    // A synchronous port (MaxThreadpoolSize 0) runs handlers inline and
    // never queues, so ring-overwrite has nothing to evict.
    const auto issues = issues_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize>"
        "<MaxThreadpoolSize>0</MaxThreadpoolSize>"
        "<Overflow>Ring</Overflow></PortAttributes>"
        "</Port></Connection></Component>"));
    EXPECT_TRUE(any_issue_contains(issues, "Overflow"));
    EXPECT_TRUE(any_issue_contains(issues, "MaxThreadpoolSize is 0"));
}

TEST(Validator, RingOverflowAcceptedAndPlanned) {
    const auto plan = plan_of(hub_with(
        "<Component><InstanceName>N</InstanceName><ClassName>Node</ClassName>"
        "<ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>"
        "<Connection><Port><PortName>cmdIn</PortName>"
        "<PortAttributes><BufferSize>2</BufferSize>"
        "<Overflow>Ring</Overflow></PortAttributes>"
        "</Port></Connection></Component>"));
    const compiler::PlannedComponent* node = nullptr;
    for (const auto& pc : plan.components) {
        if (pc.instance_name == "N") node = &pc;
    }
    ASSERT_NE(node, nullptr);
    ASSERT_TRUE(node->port_configs.count("cmdIn"));
    EXPECT_EQ(node->port_configs.at("cmdIn").policy.overflow,
              core::OverflowPolicy::kRingOverwrite);
}

TEST(Validator, AllIssuesReportedTogether) {
    const auto issues = issues_of(
        "<Component><InstanceName>X</InstanceName><ClassName>Ghost1</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>"
        "<Component><InstanceName>Y</InstanceName><ClassName>Ghost2</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component>");
    EXPECT_GE(issues.size(), 2u);
}

// ---- <Remote> / <Bands> (priority-banded connection lanes) ----

namespace {

const char* kRemoteOk =
    "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
    "<Export><Component>H</Component><Port>cmdOut</Port>"
    "<Route>r.cmd</Route><Band>1</Band></Export>"
    "<Import><Component>H</Component><Port>ackIn</Port>"
    "<Route>r.ack</Route></Import></Remote>";

} // namespace

TEST(ValidatorRemote, ValidRemotePlanned) {
    const auto plan = plan_of(hub_with("") + kRemoteOk);
    ASSERT_EQ(plan.remotes.size(), 1u);
    const compiler::PlannedRemote& r = plan.remotes[0];
    EXPECT_EQ(r.name, "R");
    EXPECT_EQ(r.bands, 2u);
    ASSERT_EQ(r.exports.size(), 1u);
    EXPECT_EQ(r.exports[0].instance, "H");
    EXPECT_EQ(r.exports[0].port, "cmdOut");
    EXPECT_EQ(r.exports[0].route, "r.cmd");
    EXPECT_EQ(r.exports[0].policy.band, 1);
    EXPECT_EQ(r.exports[0].message_type, "Cmd");
    ASSERT_EQ(r.imports.size(), 1u);
    EXPECT_EQ(r.imports[0].route, "r.ack");
    EXPECT_EQ(r.imports[0].policy.band, -1);
    EXPECT_EQ(r.imports[0].message_type, "Ack");
}

TEST(ValidatorRemote, ExportBandOutsideRangeReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route><Band>2</Band></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "outside the remote's band range"));
}

TEST(ValidatorRemote, BandsBeyondReactorBandsReported) {
    // Default <ReactorBands> is 4: a 5-lane remote would share loop
    // threads between bands.
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>5</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "exceeds <ReactorBands> 4"));
}

TEST(ValidatorRemote, BandsWithinRaisedReactorBandsAccepted) {
    const auto plan = plan_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>5</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>"
        "<RTSJAttributes><ReactorBands>6</ReactorBands></RTSJAttributes>");
    ASSERT_EQ(plan.remotes.size(), 1u);
    EXPECT_EQ(plan.remotes[0].bands, 5u);
    EXPECT_EQ(plan.rtsj.reactor_bands, 6u);
}

TEST(ValidatorRemote, ShmRemotePlannedWithTransportAndHost) {
    const auto plan = plan_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName>"
        "<Transport>shm</Transport><Host>localhost</Host>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    ASSERT_EQ(plan.remotes.size(), 1u);
    EXPECT_EQ(plan.remotes[0].transport, compiler::RemoteTransport::kShm);
    EXPECT_EQ(plan.remotes[0].host, "localhost");
    EXPECT_EQ(plan.remotes[0].bands, 1u);
}

TEST(ValidatorRemote, ShmWithMultipleBandsAccepted) {
    // Banded shm lanes: each band gets its own ring+arena pair inside
    // one segment, so a multi-band shm remote is a valid plan.
    const auto plan = plan_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Transport>shm</Transport>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    ASSERT_EQ(plan.remotes.size(), 1u);
    EXPECT_EQ(plan.remotes[0].transport, compiler::RemoteTransport::kShm);
    EXPECT_EQ(plan.remotes[0].bands, 2u);
}

TEST(ValidatorRemote, ShmBandsExemptFromReactorBandCeiling) {
    // Shm lanes share one recv thread by design (they isolate queueing,
    // not loop threads), so <ReactorBands> does not cap them — only the
    // wire-format limit does.
    const auto plan = plan_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>5</Bands>"
        "<Transport>shm</Transport>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    ASSERT_EQ(plan.remotes.size(), 1u);
    EXPECT_EQ(plan.remotes[0].bands, 5u);
}

TEST(ValidatorRemote, ShmBandsStillCappedByWireFormat) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>9</Bands>"
        "<Transport>shm</Transport>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "wire-format limit of 8"));
}

TEST(ValidatorRemote, ShmAcrossHostsReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName>"
        "<Transport>shm</Transport><Host>10.0.0.7</Host>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(
        any_issue_contains(issues, "shared memory cannot cross hosts"));
}

TEST(ValidatorRemote, TcpRemoteMayNameAnyHost) {
    const auto plan = plan_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName>"
        "<Host>10.0.0.7</Host>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    ASSERT_EQ(plan.remotes.size(), 1u);
    EXPECT_EQ(plan.remotes[0].transport, compiler::RemoteTransport::kTcp);
    EXPECT_EQ(plan.remotes[0].host, "10.0.0.7");
}

TEST(ValidatorRemote, BandsBeyondWireFormatReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>9</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>"
        "<RTSJAttributes><ReactorBands>16</ReactorBands></RTSJAttributes>");
    EXPECT_TRUE(any_issue_contains(issues, "wire-format limit of 8"));
}

TEST(ValidatorRemote, UnknownInstanceReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>Ghost</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "unknown instance 'Ghost'"));
}

TEST(ValidatorRemote, UnknownPortReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>H</Component><Port>nope</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "unknown port 'H.nope'"));
}

TEST(ValidatorRemote, ExportFromInPortReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>H</Component><Port>ackIn</Port>"
        "<Route>r.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "exports ship from Out ports"));
}

TEST(ValidatorRemote, ImportIntoOutPortReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Import><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Import></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "imports feed\n"
                                           "In ports") ||
                any_issue_contains(issues, "imports feed In ports"));
}

TEST(ValidatorRemote, ImportWithBandReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Import><Component>H</Component><Port>ackIn</Port>"
        "<Route>r.ack</Route><Band>1</Band></Import></Remote>");
    EXPECT_TRUE(any_issue_contains(
        issues, "imports take the band stamped by the exporting peer"));
}

TEST(ValidatorRemote, DuplicateRouteAndRemoteNameReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r.cmd</Route></Export></Remote>"
        "<Remote><RemoteName>R</RemoteName><Bands>2</Bands>"
        "<Export><Component>H</Component><Port>cmdOut</Port>"
        "<Route>r2.cmd</Route></Export></Remote>");
    EXPECT_TRUE(any_issue_contains(issues, "duplicate export route 'r.cmd'"));
    EXPECT_TRUE(any_issue_contains(issues, "duplicate remote name 'R'"));
}

TEST(ValidatorTrace, OversizedRingDepthReported) {
    const auto issues = issues_of(
        hub_with("") +
        "<RTSJAttributes><Trace><RingDepth>33554432</RingDepth></Trace>"
        "</RTSJAttributes>");
    EXPECT_TRUE(any_issue_contains(issues, "RingDepth"));
}

TEST(ValidatorTrace, TraceConfigSurvivesPlanning) {
    const auto plan = plan_of(
        hub_with("") +
        "<RTSJAttributes><Trace><SampleShift>2</SampleShift></Trace>"
        "</RTSJAttributes>");
    EXPECT_TRUE(plan.rtsj.trace.enabled);
    EXPECT_EQ(plan.rtsj.trace.sample_shift, 2u);
}
