// Assembler: end-to-end CDL + CCL -> running application (the paper's
// two-phase toolchain, with the glue executed instead of emitted).
#include "compiler/assembler.hpp"
#include "core/messages.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

std::atomic<int> g_pings{0};
std::mutex g_mu;
std::condition_variable g_cv;

void note_ping() {
    g_pings.fetch_add(1);
    g_cv.notify_all();
}

bool wait_pings(int n) {
    std::unique_lock lk(g_mu);
    return g_cv.wait_for(lk, std::chrono::milliseconds(2000),
                         [&] { return g_pings.load() >= n; });
}

/// Echoes every MyInteger to its "pong" Out port, +1.
class Echoer : public core::Component {
public:
    explicit Echoer(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_in_port<core::MyInteger>(
            "ping", "MyInteger", port_config("ping"),
            [this](core::MyInteger& m, core::Smm&) {
                auto& out = out_port_t<core::MyInteger>("pong");
                core::MyInteger* reply = out.get_message();
                reply->value = m.value + 1;
                out.send(reply, 5);
            });
        add_out_port<core::MyInteger>("pong", "MyInteger");
    }
};

/// Counts replies; exposes a trigger port.
class Driver : public core::Component {
public:
    explicit Driver(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_out_port<core::MyInteger>("send", "MyInteger");
        add_in_port<core::MyInteger>("recv", "MyInteger", port_config("recv"),
                                     [](core::MyInteger& m, core::Smm&) {
                                         last_value = m.value;
                                         note_ping();
                                     });
    }
    static inline std::atomic<int> last_value{0};
};

const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Echoer</ComponentName>
  <Port><PortName>ping</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>pong</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Driver</ComponentName>
  <Port><PortName>send</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>recv</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

const char* kCcl = R"(
<Application>
 <ApplicationName>PingPong</ApplicationName>
 <Component>
  <InstanceName>D</InstanceName>
  <ClassName>Driver</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection>
   <Port>
    <PortName>send</PortName>
    <Link><PortType>Internal</PortType><ToComponent>E</ToComponent><ToPort>ping</ToPort></Link>
   </Port>
   <Port>
    <PortName>recv</PortName>
    <PortAttributes><BufferSize>4</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>2</MaxThreadpoolSize></PortAttributes>
    <Link><PortType>Internal</PortType><ToComponent>E</ToComponent><ToPort>pong</ToPort></Link>
   </Port>
  </Connection>
  <Component>
   <InstanceName>E</InstanceName>
   <ClassName>Echoer</ClassName>
   <ComponentType>Scoped</ComponentType>
   <ScopeLevel>1</ScopeLevel>
   <Connection>
    <Port>
     <PortName>ping</PortName>
     <PortAttributes><BufferSize>4</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>2</MaxThreadpoolSize></PortAttributes>
    </Port>
   </Connection>
  </Component>
 </Component>
 <RTSJAttributes>
  <ImmortalSize>4000000</ImmortalSize>
  <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>262144</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
 </RTSJAttributes>
</Application>)";

class AssemblerTest : public ::testing::Test {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        auto& reg = core::ComponentRegistry::global();
        reg.register_class<Echoer>("Echoer");
        reg.register_class<Driver>("Driver");
        g_pings.store(0);
    }
};

} // namespace

TEST_F(AssemblerTest, BuildsApplicationFromXml) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    EXPECT_EQ(app->name(), "PingPong");
    EXPECT_EQ(app->component_count(), 2u);
    core::Component& driver = app->component("D");
    core::Component& echoer = app->component("E");
    EXPECT_EQ(echoer.parent(), &driver);
    EXPECT_EQ(echoer.level(), 1);
    EXPECT_EQ(app->immortal().capacity(), 4'000'000u);
    EXPECT_EQ(app->pool_for_level(1).scope_size(), 262'144u);
}

TEST_F(AssemblerTest, CclPortAttributesReachThePorts) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    core::InPortBase& recv = app->component("D").in_port("recv");
    EXPECT_EQ(recv.config().buffer_size, 4u);
    EXPECT_EQ(recv.config().max_threads, 2u);
    ASSERT_NE(recv.dispatcher(), nullptr);
    EXPECT_EQ(recv.dispatcher()->worker_count(), 1u); // min pool size
}

TEST_F(AssemblerTest, AssembledApplicationActuallyRuns) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    app->start();
    auto& send = app->component("D").out_port_t<core::MyInteger>("send");
    for (int i = 0; i < 10; ++i) {
        core::MyInteger* m = send.get_message();
        m->value = 100 + i;
        send.send(m, 3);
    }
    ASSERT_TRUE(wait_pings(10));
    app->shutdown();
    EXPECT_GE(Driver::last_value.load(), 101); // echoed +1
}

TEST_F(AssemblerTest, UnregisteredClassFailsAssembly) {
    const char* ccl =
        "<Application><ApplicationName>X</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>Phantom</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component></Application>";
    const char* cdl =
        "<Component><ComponentName>Phantom</ComponentName></Component>";
    EXPECT_THROW(compiler::assemble_from_strings(cdl, ccl),
                 core::RegistryError);
}

TEST_F(AssemblerTest, InvalidCclFailsBeforeAssembly) {
    const char* bad_ccl =
        "<Application><ApplicationName>X</ApplicationName>"
        "<Component><InstanceName>I</InstanceName>"
        "<ClassName>Ghost</ClassName>"
        "<ComponentType>Immortal</ComponentType></Component></Application>";
    EXPECT_THROW(compiler::assemble_from_strings(kCdl, bad_ccl),
                 compiler::ValidationError);
}

namespace {

/// A sensor pipeline exercising <Overflow>Ring</Overflow> end-to-end: the
/// source outruns a deliberately slow monitor, and the ring port keeps the
/// freshest reading instead of blocking the sensor.
class SensorSource : public core::Component {
public:
    explicit SensorSource(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_out_port<core::MyInteger>("readings", "MyInteger");
    }
};

class SlowMonitor : public core::Component {
public:
    explicit SlowMonitor(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_in_port<core::MyInteger>(
            "readings", "MyInteger", port_config("readings"),
            [](core::MyInteger& m, core::Smm&) {
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
                last_seen.store(m.value);
            });
    }
    static inline std::atomic<int> last_seen{0};
};

const char* kSensorCdl = R"(
<CDL>
 <Component>
  <ComponentName>SensorSource</ComponentName>
  <Port><PortName>readings</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>SlowMonitor</ComponentName>
  <Port><PortName>readings</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

const char* kSensorCcl = R"(
<Application>
 <ApplicationName>SensorPipeline</ApplicationName>
 <Component>
  <InstanceName>S</InstanceName>
  <ClassName>SensorSource</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection>
   <Port>
    <PortName>readings</PortName>
    <Link><PortType>Internal</PortType><ToComponent>M</ToComponent><ToPort>readings</ToPort></Link>
   </Port>
  </Connection>
  <Component>
   <InstanceName>M</InstanceName>
   <ClassName>SlowMonitor</ClassName>
   <ComponentType>Scoped</ComponentType>
   <ScopeLevel>1</ScopeLevel>
   <Connection>
    <Port>
     <PortName>readings</PortName>
     <PortAttributes>
      <BufferSize>2</BufferSize>
      <MinThreadpoolSize>1</MinThreadpoolSize>
      <MaxThreadpoolSize>1</MaxThreadpoolSize>
      <Overflow>Ring</Overflow>
     </PortAttributes>
    </Port>
   </Connection>
  </Component>
 </Component>
 <RTSJAttributes>
  <ImmortalSize>4000000</ImmortalSize>
  <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>262144</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
 </RTSJAttributes>
</Application>)";

} // namespace

TEST_F(AssemblerTest, RingOverflowReachesAssembledPort) {
    core::ComponentRegistry::global().register_class<SensorSource>(
        "SensorSource");
    core::ComponentRegistry::global().register_class<SlowMonitor>(
        "SlowMonitor");
    auto app = compiler::assemble_from_strings(kSensorCdl, kSensorCcl);
    const core::InPortBase& in = app->component("M").in_port("readings");
    EXPECT_EQ(in.config().policy.overflow, core::OverflowPolicy::kRingOverwrite);
    EXPECT_EQ(in.config().buffer_size, 2u);
}

TEST_F(AssemblerTest, RingSensorPipelineKeepsFreshestWithoutBlocking) {
    core::ComponentRegistry::global().register_class<SensorSource>(
        "SensorSource");
    core::ComponentRegistry::global().register_class<SlowMonitor>(
        "SlowMonitor");
    SlowMonitor::last_seen.store(0);
    auto app = compiler::assemble_from_strings(kSensorCdl, kSensorCcl);
    app->start();

    auto& out = app->component("S").out_port_t<core::MyInteger>("readings");
    core::InPortBase& in = app->component("M").in_port("readings");
    constexpr int kReadings = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 1; i <= kReadings; ++i) {
        core::MyInteger* m = out.get_message();
        m->value = i;
        out.send(m, 3);
    }
    const auto send_time = std::chrono::steady_clock::now() - t0;
    // The monitor needs ~2ms per reading; a blocking port would pin the
    // sensor to that rate. The ring port must let it run free.
    EXPECT_LT(send_time, std::chrono::milliseconds(1000));

    for (int i = 0; i < 400 && in.in_flight() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    app->shutdown();

    // Conservation: every reading was either admitted or shed, and every
    // admitted-but-evicted one is accounted for.
    EXPECT_EQ(out.sent_count(), static_cast<std::uint64_t>(kReadings));
    EXPECT_EQ(in.delivered_count() + in.dropped_count(),
              static_cast<std::uint64_t>(kReadings));
    EXPECT_EQ(in.processed_count(),
              in.delivered_count() - in.overwritten_count());
    EXPECT_GT(in.overwritten_count() + in.dropped_count(), 0u);
    // Freshest-value semantics: the final reading always survives.
    EXPECT_EQ(SlowMonitor::last_seen.load(), kReadings);
}
