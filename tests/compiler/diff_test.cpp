// Assembly diff: two CCLs -> a live RecomposePlan, and the `compadresc
// diff` front-end (exit 0 = applicable plan, 1 = invalid live transition).
#include "compiler/diff.hpp"

#include "compiler/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace compadres;
using namespace compadres::compiler;
namespace fs = std::filesystem;

namespace {

const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>Src</ComponentName>
  <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Snk</ComponentName>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Snk2</ComponentName>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

const char* kBase = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>snk</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>8</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

// Same topology, In port flipped Block -> Ring.
const char* kRing = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>snk</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>8</BufferSize><Overflow>Ring</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

// Base plus a second sink fed by the same source.
const char* kGrown = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>snk</ToComponent><ToPort>in</ToPort></Link>
   <Link><PortType>External</PortType><ToComponent>snk2</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>8</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk2</InstanceName><ClassName>Snk2</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
 </Component>
</Application>)";

// Structural port change (BufferSize 8 -> 16): not a live transition.
const char* kResized = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>snk</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>16</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

// Memory layout change on top of the class change: both must be reported.
const char* kInvalid = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection><Port><PortName>out</PortName>
   <Link><PortType>External</PortType><ToComponent>snk</ToComponent><ToPort>in</ToPort></Link>
  </Port></Connection>
 </Component>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk2</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>8</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
 <RTSJAttributes><ImmortalSize>8000000</ImmortalSize></RTSJAttributes>
</Application>)";

// Base minus the immortal source: retiring src is not a live transition.
const char* kOnlySnk = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>snk</InstanceName><ClassName>Snk</ClassName>
  <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
  <Connection><Port><PortName>in</PortName>
   <PortAttributes><BufferSize>8</BufferSize><Overflow>Block</Overflow></PortAttributes>
  </Port></Connection>
 </Component>
</Application>)";

AssemblyPlan plan_of(const char* ccl) {
    return validate_and_plan(parse_cdl_string(kCdl), parse_ccl_string(ccl));
}

std::string remote_ccl(int band, const char* coalesce, int bands = 2) {
    std::ostringstream s;
    s << R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
 </Component>
 <Remote>
  <RemoteName>peer</RemoteName>
  <Bands>)" << bands
      << R"(</Bands>
  <Export><Component>src</Component><Port>out</Port><Route>telemetry</Route><Band>)"
      << band << "</Band>" << coalesce << R"(</Export>
 </Remote>
</Application>)";
    return s.str();
}

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("compadres-diff-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter++));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static inline int counter = 0;
};

std::string write_file(const TempDir& dir, const std::string& name,
                       const std::string& content) {
    const fs::path p = dir.path / name;
    std::ofstream f(p);
    f << content;
    return p.string();
}

} // namespace

TEST(DiffPlans, IdenticalPlansDiffToNothing) {
    const core::RecomposePlan plan = diff_plans(plan_of(kBase), plan_of(kBase));
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.application, "LiveApp");
}

TEST(DiffPlans, OverflowChangeBecomesLocalRepolicy) {
    const core::RecomposePlan plan = diff_plans(plan_of(kBase), plan_of(kRing));
    EXPECT_TRUE(plan.spawns.empty());
    EXPECT_TRUE(plan.route_adds.empty());
    ASSERT_EQ(plan.repolicies.size(), 1u);
    const core::RecomposeRepolicy& r = plan.repolicies[0];
    EXPECT_FALSE(r.remote);
    EXPECT_EQ(r.instance, "snk");
    EXPECT_EQ(r.port, "in");
    EXPECT_EQ(r.from.overflow, core::OverflowPolicy::kBlock);
    EXPECT_EQ(r.to.overflow, core::OverflowPolicy::kRingOverwrite);
}

TEST(DiffPlans, GrowthSpawnsAndRoutes) {
    const core::RecomposePlan plan =
        diff_plans(plan_of(kBase), plan_of(kGrown));
    ASSERT_EQ(plan.spawns.size(), 1u);
    EXPECT_EQ(plan.spawns[0].instance, "snk2");
    EXPECT_EQ(plan.spawns[0].class_name, "Snk2");
    ASSERT_EQ(plan.route_adds.size(), 1u);
    EXPECT_EQ(plan.route_adds[0].to_instance, "snk2");
    EXPECT_TRUE(plan.retires.empty());

    // The reverse transition retires the sink after unrouting it.
    const core::RecomposePlan shrink =
        diff_plans(plan_of(kGrown), plan_of(kBase));
    ASSERT_EQ(shrink.retires.size(), 1u);
    EXPECT_EQ(shrink.retires[0], "snk2");
    ASSERT_EQ(shrink.route_removes.size(), 1u);
    EXPECT_EQ(shrink.route_removes[0].to_instance, "snk2");
}

TEST(DiffPlans, InvalidTransitionsAreAllCollected) {
    try {
        diff_plans(plan_of(kBase), plan_of(kInvalid));
        FAIL() << "class + immortal-size change must not diff";
    } catch (const ValidationError& e) {
        EXPECT_GE(e.issues().size(), 2u) << e.what();
        EXPECT_NE(std::string(e.what()).find("ImmortalSize"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("changes class"),
                  std::string::npos);
    }
    // Structural port attributes are frozen.
    EXPECT_THROW(diff_plans(plan_of(kBase), plan_of(kResized)),
                 ValidationError);
    // Retiring an immortal component is not a live transition.
    try {
        diff_plans(plan_of(kBase), plan_of(kOnlySnk));
        FAIL() << "retiring the immortal source must not diff";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("immortal"), std::string::npos)
            << e.what();
    }
    // A remote cannot appear live (no startup handshake ran for it).
    EXPECT_THROW(
        diff_plans(plan_of(kBase),
                   validate_and_plan(parse_cdl_string(kCdl),
                                     parse_ccl_string(remote_ccl(0, "")))),
        ValidationError);
}

TEST(DiffPlans, RemotePolicyChangeBecomesRemoteRepolicy) {
    const AssemblyPlan from =
        validate_and_plan(parse_cdl_string(kCdl),
                          parse_ccl_string(remote_ccl(0, "")));
    const AssemblyPlan to = validate_and_plan(
        parse_cdl_string(kCdl),
        parse_ccl_string(remote_ccl(1, "<Coalesce>Off</Coalesce>")));
    const core::RecomposePlan plan = diff_plans(from, to);
    ASSERT_EQ(plan.repolicies.size(), 1u);
    const core::RecomposeRepolicy& r = plan.repolicies[0];
    EXPECT_TRUE(r.remote);
    EXPECT_EQ(r.remote_name, "peer");
    EXPECT_EQ(r.route, "telemetry");
    EXPECT_EQ(r.from.band, 0);
    EXPECT_EQ(r.to.band, 1);
    EXPECT_TRUE(r.from.coalesce);
    EXPECT_FALSE(r.to.coalesce);

    // The lane-group width is fixed by the startup handshake.
    const AssemblyPlan wider = validate_and_plan(
        parse_cdl_string(kCdl), parse_ccl_string(remote_ccl(0, "", 3)));
    EXPECT_THROW(diff_plans(from, wider), ValidationError);
}

TEST(DiffPlans, RemoteTransportAndHostAreFrozen) {
    const char* shape = R"(
<Application>
 <ApplicationName>LiveApp</ApplicationName>
 <Component>
  <InstanceName>src</InstanceName><ClassName>Src</ClassName>
  <ComponentType>Immortal</ComponentType>
 </Component>
 <Remote>
  <RemoteName>peer</RemoteName>%s
  <Export><Component>src</Component><Port>out</Port><Route>telemetry</Route></Export>
 </Remote>
</Application>)";
    auto remote_plan = [&](const char* knobs) {
        char buf[1024];
        std::snprintf(buf, sizeof buf, shape, knobs);
        return validate_and_plan(parse_cdl_string(kCdl),
                                 parse_ccl_string(buf));
    };
    const AssemblyPlan tcp = remote_plan("");
    const AssemblyPlan shm = remote_plan("\n  <Transport>shm</Transport>");
    const AssemblyPlan moved = remote_plan("\n  <Host>localhost</Host>");
    try {
        diff_plans(tcp, shm);
        FAIL() << "transport change should be rejected";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("<Transport> changes"),
                  std::string::npos);
    }
    try {
        diff_plans(tcp, moved);
        FAIL() << "host change should be rejected";
    } catch (const ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("<Host> changes"),
                  std::string::npos);
    }
    // Same transport and host diff clean.
    EXPECT_NO_THROW(diff_plans(shm, remote_plan("<Transport>shm</Transport>")));
}

TEST(CompadrescDiff, ExitCodesMatchTheContract) {
    TempDir dir;
    const std::string cdl = write_file(dir, "app.cdl.xml", kCdl);
    const std::string base = write_file(dir, "old.ccl.xml", kBase);
    const std::string ring = write_file(dir, "new.ccl.xml", kRing);
    const std::string bad = write_file(dir, "bad.ccl.xml", kInvalid);
    const std::string garbage = write_file(dir, "garbage.ccl.xml", "<not-xml");

    // Applicable transition: exit 0, plan on stdout, nothing applied.
    std::ostringstream out, err;
    EXPECT_EQ(compadresc_main({"diff", cdl, base, ring}, out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("~ repolicy snk.in"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("[block"), std::string::npos);

    // No changes still exits 0 and says so.
    std::ostringstream out2, err2;
    EXPECT_EQ(compadresc_main({"diff", cdl, base, base}, out2, err2), 0);
    EXPECT_NE(out2.str().find("(no changes)"), std::string::npos);

    // Invalid live transition: exit 1, issues on stderr.
    std::ostringstream out3, err3;
    EXPECT_EQ(compadresc_main({"diff", cdl, base, bad}, out3, err3), 1);
    EXPECT_NE(err3.str().find("ImmortalSize"), std::string::npos)
        << err3.str();

    // Unparseable input stays exit 2 (it is not a transition problem).
    std::ostringstream out4, err4;
    EXPECT_EQ(compadresc_main({"diff", cdl, base, garbage}, out4, err4), 2);

    // Wrong arity: usage, exit 1.
    std::ostringstream out5, err5;
    EXPECT_EQ(compadresc_main({"diff", cdl, base}, out5, err5), 1);
}
