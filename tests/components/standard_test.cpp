// Standard components: PeriodicSource and Watchdog behaviour.
#include "components/standard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

class StandardComponentsTest : public ::testing::Test {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        components::register_standard_components();
    }

    static core::InPortConfig sync_port() {
        core::InPortConfig cfg;
        cfg.buffer_size = 16;
        cfg.min_threads = cfg.max_threads = 0;
        return cfg;
    }
};

} // namespace

TEST_F(StandardComponentsTest, PeriodicSourceEmitsTicks) {
    core::Application app("t");
    auto& source = app.create_immortal<components::PeriodicSource>("Ticker");
    source.set_period_ns(3'000'000); // 3 ms
    std::atomic<int> got{0};
    std::mutex mu;
    std::condition_variable cv;
    auto& sink = app.create_immortal<core::Component>("Sink");
    sink.add_in_port<core::MyInteger>("in", "MyInteger", sync_port(),
                                      [&](core::MyInteger&, core::Smm&) {
                                          got.fetch_add(1);
                                          cv.notify_all();
                                      });
    app.connect(source, "tick", sink, "in");
    app.start();
    {
        std::unique_lock lk(mu);
        EXPECT_TRUE(cv.wait_for(lk, std::chrono::seconds(3),
                                [&] { return got.load() >= 5; }));
    }
    app.shutdown();
    EXPECT_GE(source.ticks_emitted(), 5u);
}

TEST_F(StandardComponentsTest, PeriodicSourceSkipsWhenDownstreamSaturated) {
    core::Application app("t");
    auto& source = app.create_immortal<components::PeriodicSource>("Ticker");
    source.set_period_ns(1'000'000); // 1 ms
    std::atomic<int> got{0};
    auto& sink = app.create_immortal<core::Component>("Sink");
    core::InPortConfig slow;
    slow.buffer_size = 2;
    slow.min_threads = slow.max_threads = 1;
    sink.add_in_port<core::MyInteger>("in", "MyInteger", slow,
                                      [&](core::MyInteger&, core::Smm&) {
                                          rt::sleep_ns(20'000'000); // 20 ms
                                          got.fetch_add(1);
                                      });
    app.connect(source, "tick", sink, "in", /*pool_capacity=*/4);
    app.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    app.shutdown();
    // The ticker must never have blocked: ticks were skipped, not queued
    // without bound, and the app tears down promptly.
    EXPECT_GT(got.load(), 0);
    EXPECT_LT(source.ticks_emitted(), 200u);
}

TEST_F(StandardComponentsTest, WatchdogStaysQuietWhileHeartbeatsFlow) {
    core::Application app("t");
    auto& dog = app.create_immortal<components::Watchdog>("Dog");
    dog.set_deadline_ns(30'000'000); // 30 ms
    auto& client = app.create_immortal<core::Component>("Client");
    auto& beat = client.add_out_port<core::MyInteger>("beat", "MyInteger");
    app.connect(client, "beat", dog, "heartbeat");
    app.start();
    for (int i = 0; i < 10; ++i) {
        beat.send(beat.get_message(), 5);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(dog.alarms_raised(), 0u);
    EXPECT_GE(dog.heartbeats_seen(), 10u);
    app.shutdown();
}

TEST_F(StandardComponentsTest, WatchdogRaisesAlarmOnSilence) {
    core::Application app("t");
    auto& dog = app.create_immortal<components::Watchdog>("Dog");
    dog.set_deadline_ns(15'000'000); // 15 ms
    std::atomic<int> alarms{0};
    std::mutex mu;
    std::condition_variable cv;
    auto& monitor = app.create_immortal<core::Component>("Monitor");
    monitor.add_in_port<core::MyInteger>("alarms", "MyInteger", sync_port(),
                                         [&](core::MyInteger&, core::Smm&) {
                                             alarms.fetch_add(1);
                                             cv.notify_all();
                                         });
    auto& client = app.create_immortal<core::Component>("Client");
    client.add_out_port<core::MyInteger>("beat", "MyInteger");
    app.connect(client, "beat", dog, "heartbeat");
    app.connect(dog, "alarm", monitor, "alarms");
    app.start();
    // Send nothing: the watchdog must bark within a few deadlines.
    {
        std::unique_lock lk(mu);
        EXPECT_TRUE(cv.wait_for(lk, std::chrono::seconds(3),
                                [&] { return alarms.load() >= 1; }));
    }
    EXPECT_GE(dog.alarms_raised(), 1u);
    app.shutdown();
}

TEST_F(StandardComponentsTest, WatchdogRecoversWhenHeartbeatsResume) {
    core::Application app("t");
    auto& dog = app.create_immortal<components::Watchdog>("Dog");
    // 30 ms deadline against 5 ms heartbeats: wide enough that scheduler
    // jitter under a parallel test run cannot fake a missed beat, small
    // enough that the silent phase below still barks.
    dog.set_deadline_ns(30'000'000);
    auto& client = app.create_immortal<core::Component>("Client");
    auto& beat = client.add_out_port<core::MyInteger>("beat", "MyInteger");
    app.connect(client, "beat", dog, "heartbeat");
    app.start();
    // Go silent long enough to bark...
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    const auto barks = dog.alarms_raised();
    EXPECT_GE(barks, 1u);
    // ...then resume heartbeats: no further alarms accumulate.
    for (int i = 0; i < 12; ++i) {
        beat.send(beat.get_message(), 5);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_LE(dog.alarms_raised() - barks, 1u);
    app.shutdown();
}

TEST_F(StandardComponentsTest, CreatableByNameFromRegistry) {
    core::Application app("t");
    core::Component& source = app.create_by_name(
        "PeriodicSource", "S", nullptr, core::ComponentType::kImmortal, 0);
    core::Component& dog = app.create_by_name(
        "Watchdog", "D", nullptr, core::ComponentType::kImmortal, 0);
    EXPECT_NE(dynamic_cast<components::PeriodicSource*>(&source), nullptr);
    EXPECT_NE(dynamic_cast<components::Watchdog*>(&dog), nullptr);
    EXPECT_NE(source.find_out_port("tick"), nullptr);
    EXPECT_NE(dog.find_in_port("heartbeat"), nullptr);
}
