// Topology fuzz: randomly generated component trees with randomly chosen
// LEGAL links must pass the validator, assemble, start, carry a message
// on every connection, and tear down cleanly. Random ILLEGAL mutations of
// the same topologies must be rejected. This exercises the validator, the
// SMM-placement rules, the scope pools, and the dispatch machinery
// against shapes no hand-written test would think of.
#include "compiler/assembler.hpp"
#include "core/messages.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>

using namespace compadres;

namespace {

std::atomic<int> g_received{0};
std::mutex g_mu;
std::condition_variable g_cv;

/// One component class with a forwarding In port and an Out port is enough
/// to express any topology.
class FuzzNode : public core::Component {
public:
    explicit FuzzNode(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_in_port<core::MyInteger>("in", "MyInteger", port_config("in"),
                                     [](core::MyInteger&, core::Smm&) {
                                         g_received.fetch_add(1);
                                         g_cv.notify_all();
                                     });
        add_out_port<core::MyInteger>("out", "MyInteger");
    }
};

struct Node {
    std::string name;
    int parent = -1; ///< index into nodes; -1 = top level
    int level = 0;   ///< 0 = immortal
};

struct Link {
    int from; ///< out side (node index)
    int to;   ///< in side
    const char* kind;
};

struct Topology {
    std::vector<Node> nodes;
    std::vector<Link> links;
};

/// Random tree of up to `max_nodes`, then random legal links: parent-child
/// (Internal), siblings (External), and descendant->ancestor shadow links
/// (External).
Topology random_topology(std::mt19937& rng, int max_nodes) {
    Topology topo;
    const int count = 2 + static_cast<int>(rng() % (max_nodes - 1));
    for (int i = 0; i < count; ++i) {
        Node node;
        node.name = "n" + std::to_string(i);
        if (i == 0 || rng() % 4 == 0) {
            node.parent = -1;
            node.level = 0; // top-level immortal
        } else {
            node.parent = static_cast<int>(rng() % i);
            node.level = topo.nodes[static_cast<std::size_t>(node.parent)].level + 1;
        }
        topo.nodes.push_back(node);
    }
    // Candidate legal pairs.
    const auto is_ancestor = [&](int anc, int node) {
        for (int p = topo.nodes[static_cast<std::size_t>(node)].parent; p != -1;
             p = topo.nodes[static_cast<std::size_t>(p)].parent) {
            if (p == anc) return true;
        }
        return false;
    };
    std::set<std::pair<int, int>> used;
    for (int attempt = 0; attempt < count * 3; ++attempt) {
        const int a = static_cast<int>(rng() % topo.nodes.size());
        const int b = static_cast<int>(rng() % topo.nodes.size());
        if (a == b || used.count({a, b}) != 0 || used.count({b, a}) != 0) continue;
        const Node& na = topo.nodes[static_cast<std::size_t>(a)];
        const Node& nb = topo.nodes[static_cast<std::size_t>(b)];
        const char* kind = nullptr;
        if (nb.parent == a || na.parent == b) {
            kind = "Internal";
        } else if (na.parent == nb.parent) {
            kind = "External"; // siblings (possibly both top-level)
        } else if (is_ancestor(a, b) || is_ancestor(b, a)) {
            kind = "External"; // shadow
        } else {
            continue; // cousins: illegal, skip
        }
        used.insert({a, b});
        topo.links.push_back({a, b, kind});
    }
    return topo;
}

std::string emit_ccl(const Topology& topo) {
    // Emit nested <Component> elements; links declared on the Out side.
    std::ostringstream out;
    out << "<Application><ApplicationName>Fuzz</ApplicationName>";
    // Children listing per parent.
    std::vector<std::vector<int>> children(topo.nodes.size());
    std::vector<int> roots;
    for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
        if (topo.nodes[i].parent == -1) {
            roots.push_back(static_cast<int>(i));
        } else {
            children[static_cast<std::size_t>(topo.nodes[i].parent)].push_back(
                static_cast<int>(i));
        }
    }
    std::function<void(int)> emit_node = [&](int idx) {
        const Node& node = topo.nodes[static_cast<std::size_t>(idx)];
        out << "<Component><InstanceName>" << node.name
            << "</InstanceName><ClassName>FuzzNode</ClassName>";
        if (node.level == 0) {
            out << "<ComponentType>Immortal</ComponentType>";
        } else {
            out << "<ComponentType>Scoped</ComponentType><ScopeLevel>"
                << node.level << "</ScopeLevel>";
        }
        // Links where this node is the Out side.
        std::ostringstream links;
        for (const Link& link : topo.links) {
            if (link.from != idx) continue;
            links << "<Link><PortType>" << link.kind
                  << "</PortType><ToComponent>"
                  << topo.nodes[static_cast<std::size_t>(link.to)].name
                  << "</ToComponent><ToPort>in</ToPort></Link>";
        }
        if (!links.str().empty()) {
            out << "<Connection><Port><PortName>out</PortName>" << links.str()
                << "</Port></Connection>";
        }
        for (const int child : children[static_cast<std::size_t>(idx)]) {
            emit_node(child);
        }
        out << "</Component>";
    };
    for (const int root : roots) emit_node(root);
    // Size the scoped-region pools for the generated population.
    std::map<int, int> per_level;
    for (const Node& node : topo.nodes) {
        if (node.level > 0) ++per_level[node.level];
    }
    if (!per_level.empty()) {
        out << "<RTSJAttributes>";
        for (const auto& [level, count] : per_level) {
            out << "<ScopedPool><ScopeLevel>" << level
                << "</ScopeLevel><ScopeSize>262144</ScopeSize><PoolSize>"
                << count + 1 << "</PoolSize></ScopedPool>";
        }
        out << "</RTSJAttributes>";
    }
    out << "</Application>";
    return out.str();
}

const char* kCdl = R"(
<Component>
 <ComponentName>FuzzNode</ComponentName>
 <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
</Component>)";

class TopologyFuzzTest : public ::testing::TestWithParam<unsigned> {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        core::ComponentRegistry::global().register_class<FuzzNode>("FuzzNode");
        g_received.store(0);
    }
};

} // namespace

TEST_P(TopologyFuzzTest, LegalTopologyAssemblesAndDelivers) {
    std::mt19937 rng(GetParam());
    const Topology topo = random_topology(rng, 10);
    const std::string ccl = emit_ccl(topo);

    auto app = compiler::assemble_from_strings(kCdl, ccl);
    EXPECT_EQ(app->component_count(), topo.nodes.size());
    app->start();

    // Send one message down every connection (from the Out side).
    int expected = 0;
    for (const Link& link : topo.links) {
        core::Component& from =
            app->component(topo.nodes[static_cast<std::size_t>(link.from)].name);
        auto& out = from.out_port_t<core::MyInteger>("out");
        core::MyInteger* msg = out.get_message();
        msg->value = link.to;
        out.send(msg, 5);
        // Fan-out: one send hits every target of this out port; count once
        // per target. Our generator links each out port possibly several
        // times, so derive the real expectation from the port itself.
        expected += 0; // adjusted below
    }
    // Each send delivered to ALL targets of that out port; total arrivals =
    // sum over links of (targets of that from-port) — but since we sent
    // once per link, total = sum over from-nodes of links_from^2 / ... —
    // simpler: compute after the fact: every send reaches every target.
    std::map<int, int> fanout;
    for (const Link& link : topo.links) fanout[link.from]++;
    for (const Link& link : topo.links) expected += fanout[link.from];

    std::unique_lock lk(g_mu);
    EXPECT_TRUE(g_cv.wait_for(lk, std::chrono::milliseconds(3000), [&] {
        return g_received.load() >= expected;
    })) << "received " << g_received.load() << " of " << expected << "\nCCL:\n"
        << ccl;
    lk.unlock();
    app->shutdown();
}

TEST_P(TopologyFuzzTest, MutatedTopologyIsRejected) {
    std::mt19937 rng(GetParam() + 1000);
    Topology topo = random_topology(rng, 8);
    if (topo.links.empty()) {
        // Give the mutator something to break.
        topo.links.push_back({0, static_cast<int>(topo.nodes.size()) - 1,
                              "Internal"});
    }
    // Mutations that must each produce a validation failure.
    const int mutation = static_cast<int>(rng() % 3);
    switch (mutation) {
        case 0: // flip a link kind
            topo.links[0].kind =
                std::string(topo.links[0].kind) == "Internal" ? "External"
                                                              : "Internal";
            break;
        case 1: // self-loop
            topo.links[0].to = topo.links[0].from;
            break;
        case 2: { // break a scope level (fall back to a self-loop when the
                  // random tree happens to have no scoped node)
            bool broke = false;
            for (Node& node : topo.nodes) {
                if (node.level > 0) {
                    node.level += 3;
                    broke = true;
                    break;
                }
            }
            if (!broke) topo.links[0].to = topo.links[0].from;
            break;
        }
    }
    const std::string ccl = emit_ccl(topo);
    EXPECT_THROW(
        {
            auto cdl_model = compiler::parse_cdl_string(kCdl);
            auto ccl_model = compiler::parse_ccl_string(ccl);
            compiler::validate_and_plan(cdl_model, ccl_model);
        },
        compiler::ValidationError)
        << "mutation " << mutation << " was accepted\nCCL:\n" << ccl;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFuzzTest,
                         ::testing::Range(1u, 21u));
