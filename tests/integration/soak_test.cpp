// Soak: sustained mixed traffic through a nontrivial assembly, checking
// conservation invariants afterwards — no lost or duplicated messages, no
// pool-slot leaks, no scope leaks, clean teardown. Run length stays under
// a couple of seconds so it lives in the normal suite.
#include "core/application.hpp"
#include "core/messages.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

class SoakTest : public ::testing::Test {
protected:
    void SetUp() override { core::register_builtin_message_types(); }
};

core::InPortConfig pooled(std::size_t buffer, std::size_t min_t,
                          std::size_t max_t) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = min_t;
    cfg.max_threads = max_t;
    return cfg;
}

} // namespace

TEST_F(SoakTest, SustainedFanInFanOutConservesMessages) {
    // 3 producers fan into a router; the router fans out to 2 sinks.
    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, 256 * 1024, 8}};
    core::Application app("soak", attrs);
    auto& hub = app.create_immortal<core::Component>("Hub");
    std::vector<core::Component*> producers;
    for (int i = 0; i < 3; ++i) {
        auto& p = app.create_scoped<core::Component>("P" + std::to_string(i),
                                                     hub, 1);
        p.add_out_port<core::MyInteger>("out", "MyInteger");
        producers.push_back(&p);
    }
    auto& router = app.create_scoped<core::Component>("Router", hub, 1);
    std::atomic<long> routed{0};
    router.add_in_port<core::MyInteger>(
        "in", "MyInteger", pooled(32, 2, 4),
        [&router, &routed](core::MyInteger& m, core::Smm&) {
            routed.fetch_add(1);
            auto& out = router.out_port_t<core::MyInteger>("out");
            core::MyInteger* fwd = out.get_message();
            fwd->value = m.value;
            out.send(fwd, 5);
        });
    router.add_out_port<core::MyInteger>("out", "MyInteger");

    std::atomic<long> sink_count{0};
    std::atomic<long> sink_sum{0};
    std::mutex mu;
    std::condition_variable cv;
    for (int i = 0; i < 2; ++i) {
        auto& sink = app.create_scoped<core::Component>("S" + std::to_string(i),
                                                        hub, 1);
        sink.add_in_port<core::MyInteger>(
            "in", "MyInteger", pooled(32, 1, 2),
            [&](core::MyInteger& m, core::Smm&) {
                sink_sum.fetch_add(m.value);
                sink_count.fetch_add(1);
                cv.notify_all();
            });
        app.connect(router, "out", sink, "in");
    }
    for (auto* p : producers) app.connect(*p, "out", router, "in");
    app.start();

    constexpr int kPerProducer = 1500;
    std::vector<std::thread> senders;
    for (int t = 0; t < 3; ++t) {
        senders.emplace_back([&, t] {
            auto& out = producers[static_cast<std::size_t>(t)]
                            ->out_port_t<core::MyInteger>("out");
            for (int i = 0; i < kPerProducer; ++i) {
                core::MyInteger* m = out.get_message();
                m->value = 1 + (i % 7);
                out.send(m, 1 + (i % 9));
            }
        });
    }
    for (auto& t : senders) t.join();

    const long expected_in = 3L * kPerProducer;
    const long expected_out = expected_in * 2; // fan-out of 2
    {
        std::unique_lock lk(mu);
        ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30), [&] {
            return sink_count.load() >= expected_out;
        })) << "sinks got " << sink_count.load() << " of " << expected_out;
    }
    EXPECT_EQ(routed.load(), expected_in);
    EXPECT_EQ(sink_count.load(), expected_out);
    // Value conservation: each input value appears exactly twice downstream.
    long sent_sum = 0;
    for (int i = 0; i < kPerProducer; ++i) sent_sum += 1 + (i % 7);
    EXPECT_EQ(sink_sum.load(), 3L * sent_sum * 2);

    // Pool-slot conservation after quiescence: every message returned.
    // (Checked before shutdown — the producers are scoped components and
    // shutdown reclaims their regions.)
    std::this_thread::sleep_for(std::chrono::milliseconds(50)); // drain tail
    for (auto* p : producers) {
        auto& out = p->out_port_t<core::MyInteger>("out");
        EXPECT_EQ(out.pool()->available(), out.pool()->capacity());
    }
    app.shutdown();
}

TEST_F(SoakTest, RepeatedLifecyclesDoNotLeakScopes) {
    for (int round = 0; round < 15; ++round) {
        core::RtsjAttributes attrs;
        attrs.scoped_pools = {{1, 128 * 1024, 2}};
        core::Application app("cycle", attrs);
        auto& parent = app.create_immortal<core::Component>("P");
        auto& child = app.create_scoped<core::Component>("C", parent, 1);
        auto& out = parent.add_out_port<core::MyInteger>("out", "MyInteger");
        std::atomic<int> got{0};
        child.add_in_port<core::MyInteger>(
            "in", "MyInteger", pooled(8, 1, 1),
            [&](core::MyInteger&, core::Smm&) { got.fetch_add(1); });
        app.connect(parent, "out", child, "in");
        app.start();
        for (int i = 0; i < 50; ++i) out.send(out.get_message(), 3);
        app.shutdown(); // drains, reclaims the scope into the pool
        EXPECT_EQ(got.load(), 50) << "round " << round;
        EXPECT_EQ(app.pool_for_level(1).available(), 2u) << "round " << round;
    }
}

TEST_F(SoakTest, DynamicChildrenChurnUnderTraffic) {
    core::ComponentRegistry::global().register_class<core::Component>(
        "PlainComponent");
    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, 128 * 1024, 3}};
    core::Application app("churn", attrs);
    auto& parent = app.create_immortal<core::Component>("P");

    // Static traffic keeps flowing while dynamic children come and go.
    auto& pinger = app.create_immortal<core::Component>("Pinger");
    auto& out = pinger.add_out_port<core::MyInteger>("out", "MyInteger");
    std::atomic<int> got{0};
    parent.add_in_port<core::MyInteger>(
        "in", "MyInteger", pooled(16, 1, 2),
        [&](core::MyInteger&, core::Smm&) { got.fetch_add(1); });
    app.connect(pinger, "out", parent, "in");
    app.start();

    std::atomic<bool> stop{false};
    std::thread churner([&] {
        int i = 0;
        while (!stop.load()) {
            core::ChildHandle handle = parent.smm().connect(
                "PlainComponent", "dyn" + std::to_string(i++));
            handle.release();
        }
    });
    for (int i = 0; i < 2000; ++i) out.send(out.get_message(), 4);
    stop.store(true);
    churner.join();
    for (int spin = 0; spin < 500 && got.load() < 2000; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(got.load(), 2000);
    app.shutdown();
    EXPECT_EQ(app.pool_for_level(1).available(), 3u); // no leaked scopes
}
