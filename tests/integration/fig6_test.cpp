// Integration: the paper's §3.1 co-located client/server example (Fig. 6,
// Listings in Figs. 7/8), assembled from actual CDL/CCL documents through
// the full compiler pipeline, then driven through round trips.
#include "compiler/assembler.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

using namespace compadres;

namespace {

std::atomic<int> g_replies{0};
std::mutex g_mu;
std::condition_variable g_cv;

bool wait_replies(int n) {
    std::unique_lock lk(g_mu);
    return g_cv.wait_for(lk, std::chrono::milliseconds(3000),
                         [&] { return g_replies.load() >= n; });
}

/// ImmortalComponent of Fig. 7: out-port P1 triggers the client.
class ImmortalComponent : public core::Component {
public:
    explicit ImmortalComponent(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_out_port<core::MyInteger>("P1", "MyInteger");
    }
};

/// Client of Fig. 7: P2 (trigger in), P3 (request out), P6 (reply in).
class Client : public core::Component {
public:
    explicit Client(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_in_port<core::MyInteger>(
            "P2", "MyInteger", port_config("P2"),
            [](core::MyInteger&, core::Smm& smm) {
                auto& p3 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P3"));
                core::MyInteger* request = p3.get_message();
                request->value = 3;
                p3.send(request, 3);
            });
        add_out_port<core::MyInteger>("P3", "MyInteger");
        add_in_port<core::MyInteger>("P6", "MyInteger", port_config("P6"),
                                     [](core::MyInteger&, core::Smm&) {
                                         g_replies.fetch_add(1);
                                         g_cv.notify_all();
                                     });
    }
};

/// Server of Fig. 8: P4 (request in), P5 (reply out).
class Server : public core::Component {
public:
    explicit Server(const core::ComponentContext& ctx) : core::Component(ctx) {
        add_in_port<core::MyInteger>(
            "P4", "MyInteger", port_config("P4"),
            [](core::MyInteger&, core::Smm& smm) {
                auto& p5 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P5"));
                core::MyInteger* reply = p5.get_message();
                reply->value = 4;
                p5.send(reply, 3);
            });
        add_out_port<core::MyInteger>("P5", "MyInteger");
    }
};

const char* kCdl = R"(
<CDL>
 <Component>
  <ComponentName>ImmortalComponent</ComponentName>
  <Port><PortName>P1</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Client</ComponentName>
  <Port><PortName>P2</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>P3</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>P6</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
 <Component>
  <ComponentName>Server</ComponentName>
  <Port><PortName>P4</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>P5</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)";

// The Fig. 6 composition: IMC immortal; MyClient/MyServer scoped siblings
// at level 1; P1->P2 internal; P3->P4 and P5->P6 external.
const char* kCcl = R"(
<Application>
 <ApplicationName>Fig6App</ApplicationName>
 <Component>
  <InstanceName>IMC</InstanceName>
  <ClassName>ImmortalComponent</ClassName>
  <ComponentType>Immortal</ComponentType>
  <Connection>
   <Port>
    <PortName>P1</PortName>
    <Link><PortType>Internal</PortType><ToComponent>MyClient</ToComponent><ToPort>P2</ToPort></Link>
   </Port>
  </Connection>
  <Component>
   <InstanceName>MyClient</InstanceName>
   <ClassName>Client</ClassName>
   <ComponentType>Scoped</ComponentType>
   <ScopeLevel>1</ScopeLevel>
   <Connection>
    <Port>
     <PortName>P2</PortName>
     <PortAttributes><BufferSize>10</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>5</MaxThreadpoolSize></PortAttributes>
    </Port>
    <Port>
     <PortName>P3</PortName>
     <Link><PortType>External</PortType><ToComponent>MyServer</ToComponent><ToPort>P4</ToPort></Link>
    </Port>
    <Port>
     <PortName>P6</PortName>
     <PortAttributes><BufferSize>20</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>5</MaxThreadpoolSize></PortAttributes>
    </Port>
   </Connection>
  </Component>
  <Component>
   <InstanceName>MyServer</InstanceName>
   <ClassName>Server</ClassName>
   <ComponentType>Scoped</ComponentType>
   <ScopeLevel>1</ScopeLevel>
   <Connection>
    <Port>
     <PortName>P4</PortName>
     <PortAttributes><BufferSize>20</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>5</MaxThreadpoolSize></PortAttributes>
    </Port>
    <Port>
     <PortName>P5</PortName>
     <Link><PortType>External</PortType><ToComponent>MyClient</ToComponent><ToPort>P6</ToPort></Link>
    </Port>
   </Connection>
  </Component>
 </Component>
 <RTSJAttributes>
  <ImmortalSize>4000000</ImmortalSize>
  <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>200000</ScopeSize><PoolSize>3</PoolSize></ScopedPool>
 </RTSJAttributes>
</Application>)";

class Fig6Integration : public ::testing::Test {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        auto& reg = core::ComponentRegistry::global();
        reg.register_class<ImmortalComponent>("ImmortalComponent");
        reg.register_class<Client>("Client");
        reg.register_class<Server>("Server");
        g_replies.store(0);
    }
};

} // namespace

TEST_F(Fig6Integration, AssemblesTheExactPaperTopology) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    EXPECT_EQ(app->name(), "Fig6App");
    EXPECT_EQ(app->component_count(), 3u);
    auto& imc = app->component("IMC");
    auto& client = app->component("MyClient");
    auto& server = app->component("MyServer");
    EXPECT_EQ(client.parent(), &imc);
    EXPECT_EQ(server.parent(), &imc);
    EXPECT_EQ(client.level(), 1);
    // Every pool sits in IMC's SMM (shared-object placement).
    auto& p3 = client.out_port_t<core::MyInteger>("P3");
    EXPECT_EQ(&p3.smm()->owner(), &imc);
    EXPECT_EQ(&p3.pool()->region(), &imc.region());
}

TEST_F(Fig6Integration, RoundTripCompletes) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    app->start();
    auto& p1 = app->component("IMC").out_port_t<core::MyInteger>("P1");
    core::MyInteger* trigger = p1.get_message();
    p1.send(trigger, 2);
    ASSERT_TRUE(wait_replies(1));
    app->shutdown();
}

TEST_F(Fig6Integration, SteadyStateMeasurementLoop) {
    // A miniature of the paper's measurement: warm up, then time
    // steady-state round trips and verify the statistics are sane.
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    app->start();
    auto& p1 = app->component("IMC").out_port_t<core::MyInteger>("P1");
    rt::StatsRecorder recorder(300);
    for (int i = 0; i < 300; ++i) {
        const auto t0 = rt::now_ns();
        core::MyInteger* trigger = p1.get_message();
        p1.send(trigger, 2);
        ASSERT_TRUE(wait_replies(i + 1));
        recorder.record(rt::now_ns() - t0);
    }
    recorder.discard_warmup(100);
    const auto s = recorder.summarize();
    EXPECT_EQ(s.count, 200u);
    EXPECT_GT(s.median, 0);
    EXPECT_LT(s.median, 100'000'000); // a round trip is far under 100 ms
    EXPECT_EQ(s.jitter, s.max - s.min);
    app->shutdown();
}

TEST_F(Fig6Integration, BackToBackTriggersAllComplete) {
    auto app = compiler::assemble_from_strings(kCdl, kCcl);
    app->start();
    auto& p1 = app->component("IMC").out_port_t<core::MyInteger>("P1");
    constexpr int kBurst = 200;
    for (int i = 0; i < kBurst; ++i) {
        core::MyInteger* trigger = p1.get_message();
        p1.send(trigger, 2);
    }
    ASSERT_TRUE(wait_replies(kBurst));
    app->shutdown();
    EXPECT_EQ(g_replies.load(), kBurst);
}

TEST_F(Fig6Integration, RepeatedAssembleTeardownCycles) {
    // The scope pools and registries must survive repeated app lifecycles
    // (failure injection for leaks of scopes, pools, or registrations).
    for (int round = 0; round < 5; ++round) {
        g_replies.store(0);
        auto app = compiler::assemble_from_strings(kCdl, kCcl);
        app->start();
        auto& p1 = app->component("IMC").out_port_t<core::MyInteger>("P1");
        core::MyInteger* trigger = p1.get_message();
        p1.send(trigger, 2);
        ASSERT_TRUE(wait_replies(1)) << "round " << round;
        app->shutdown();
    }
}
