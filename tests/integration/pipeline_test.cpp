// Integration: cross-ORB wire compatibility and a DRE-style multi-level
// sensor pipeline exercising nested components, priorities, and shadow
// ports together.
#include "core/application.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "orb/client_orb.hpp"
#include "orb/server_orb.hpp"
#include "rtzen/rtzen.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

using namespace compadres;

namespace {

orb::Servant echo_servant() {
    return [](const std::string&, const std::uint8_t* payload, std::size_t len,
              std::vector<std::uint8_t>& reply) {
        reply.assign(payload, payload + len);
        return true;
    };
}

} // namespace

TEST(CrossOrb, RtzenClientTalksToCompadresServer) {
    // Same GIOP on both sides: the baseline client interoperates with the
    // component server — the precondition for a fair Fig. 11 comparison.
    orb::ServerOrb server;
    server.register_servant("Echo", echo_servant());
    auto [client_wire, server_wire] = net::make_loopback_pair();
    server.attach(std::move(server_wire));
    rtzen::RtzenClientOrb client(std::move(client_wire));
    const std::uint8_t payload[] = {1, 2, 3, 4};
    EXPECT_EQ(client.invoke("Echo", "echo", payload, 4),
              std::vector<std::uint8_t>({1, 2, 3, 4}));
}

TEST(CrossOrb, CompadresClientTalksToRtzenServer) {
    rtzen::RtzenServerOrb server;
    server.register_servant("Echo", echo_servant());
    auto [client_wire, server_wire] = net::make_loopback_pair();
    server.attach(std::move(server_wire));
    orb::ClientOrb client(std::move(client_wire));
    const std::uint8_t payload[] = {9, 8, 7};
    EXPECT_EQ(client.invoke("Echo", "echo", payload, 3),
              std::vector<std::uint8_t>({9, 8, 7}));
}

// ---- DRE sensor pipeline ----
//
//   Fusion (immortal)
//     +-- SensorBank (L1)   -- samples --> Filter (L1)  [siblings]
//     |     +-- (shadow) raw alarms straight to Fusion
//     +-- Filter --> Fusion.fused (internal, child->parent)
namespace {

std::atomic<int> g_fused{0};
std::atomic<int> g_alarms{0};
std::mutex g_mu;
std::condition_variable g_cv;

bool wait_count(std::atomic<int>& counter, int n) {
    std::unique_lock lk(g_mu);
    return g_cv.wait_for(lk, std::chrono::milliseconds(3000),
                         [&] { return counter.load() >= n; });
}

core::InPortConfig pooled(std::size_t buffer, std::size_t threads) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.min_threads = 1;
    cfg.max_threads = threads;
    return cfg;
}

struct Pipeline {
    core::Application app{"sensors", [] {
        core::RtsjAttributes attrs;
        attrs.scoped_pools = {{1, 512 * 1024, 4}, {2, 256 * 1024, 4}};
        return attrs;
    }()};
    core::Component* fusion;
    core::Component* bank;
    core::Component* probe; // nested inside bank, uses a shadow port
    core::Component* filter;

    Pipeline() {
        core::register_builtin_message_types();
        fusion = &app.create_immortal<core::Component>("Fusion");
        bank = &app.create_scoped<core::Component>("SensorBank", *fusion, 1);
        probe = &app.create_scoped<core::Component>("Probe", *bank, 2);
        filter = &app.create_scoped<core::Component>("Filter", *fusion, 1);

        bank->add_out_port<core::SensorSample>("samples", "SensorSample");
        filter->add_in_port<core::SensorSample>(
            "raw", "SensorSample", pooled(16, 2),
            [this](core::SensorSample& s, core::Smm&) {
                if (s.value < 0) return; // drop invalid
                auto& out = filter->out_port_t<core::SensorSample>("clean");
                core::SensorSample* fwd = out.get_message();
                *fwd = s;
                fwd->value *= 2.0;
                out.send(fwd, 7);
            });
        filter->add_out_port<core::SensorSample>("clean", "SensorSample");
        fusion->add_in_port<core::SensorSample>(
            "fused", "SensorSample", pooled(16, 2),
            [](core::SensorSample&, core::Smm&) {
                g_fused.fetch_add(1);
                g_cv.notify_all();
            });
        // Shadow port: Probe (level 2) alerts Fusion (immortal grandparent^2)
        // directly, skipping SensorBank.
        probe->add_out_port<core::MyInteger>("alarm", "MyInteger");
        fusion->add_in_port<core::MyInteger>("alarms", "MyInteger",
                                             pooled(8, 1),
                                             [](core::MyInteger&, core::Smm&) {
                                                 g_alarms.fetch_add(1);
                                                 g_cv.notify_all();
                                             });

        app.connect(*bank, "samples", *filter, "raw");     // siblings
        app.connect(*filter, "clean", *fusion, "fused");   // child -> parent
        app.connect(*probe, "alarm", *fusion, "alarms");   // shadow
        app.start();
    }
};

} // namespace

TEST(SensorPipeline, SamplesFlowThroughFilterToFusion) {
    g_fused.store(0);
    Pipeline p;
    auto& out = p.bank->out_port_t<core::SensorSample>("samples");
    for (int i = 0; i < 30; ++i) {
        core::SensorSample* s = out.get_message();
        s->sensor_id = i;
        s->value = 1.5;
        out.send(s, 5);
    }
    ASSERT_TRUE(wait_count(g_fused, 30));
    p.app.shutdown();
}

TEST(SensorPipeline, FilterDropsInvalidSamples) {
    g_fused.store(0);
    Pipeline p;
    auto& out = p.bank->out_port_t<core::SensorSample>("samples");
    for (int i = 0; i < 10; ++i) {
        core::SensorSample* s = out.get_message();
        s->value = (i % 2 == 0) ? 1.0 : -1.0; // half invalid
        out.send(s, 5);
    }
    ASSERT_TRUE(wait_count(g_fused, 5));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(g_fused.load(), 5);
    p.app.shutdown();
}

TEST(SensorPipeline, ShadowAlarmsBypassTheBank) {
    g_alarms.store(0);
    Pipeline p;
    auto& alarm = p.probe->out_port_t<core::MyInteger>("alarm");
    // The alarm pool must live in Fusion's region (shadow placement).
    EXPECT_EQ(&alarm.pool()->region(), &p.fusion->region());
    for (int i = 0; i < 5; ++i) {
        core::MyInteger* m = alarm.get_message();
        m->value = i;
        alarm.send(m, 9);
    }
    ASSERT_TRUE(wait_count(g_alarms, 5));
    p.app.shutdown();
}

TEST(SensorPipeline, MixedTrafficBothPathsDeliver) {
    g_fused.store(0);
    g_alarms.store(0);
    Pipeline p;
    auto& samples = p.bank->out_port_t<core::SensorSample>("samples");
    auto& alarm = p.probe->out_port_t<core::MyInteger>("alarm");
    for (int i = 0; i < 20; ++i) {
        core::SensorSample* s = samples.get_message();
        s->value = 1.0;
        samples.send(s, 5);
        if (i % 4 == 0) {
            core::MyInteger* m = alarm.get_message();
            alarm.send(m, 9);
        }
    }
    ASSERT_TRUE(wait_count(g_fused, 20));
    ASSERT_TRUE(wait_count(g_alarms, 5));
    p.app.shutdown();
}
