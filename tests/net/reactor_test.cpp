// Epoll reactor: frame assembly, EPOLLOUT resumption, fan-in, shutdown.
//
// The reactor's contract lives at the edges: a frame split across TCP
// segments must assemble exactly once, a parked coalescer batch must
// resume on EPOLLOUT without a lost wakeup, EOF mid-frame must close the
// wire (never deliver a partial frame), and deregistration must flush or
// drop-and-count deterministically. Each test drives one edge through
// real sockets.
#include "cdr/giop.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

using namespace compadres;

namespace {

std::vector<std::uint8_t> make_frame(std::uint32_t request_id,
                                     std::size_t payload_size) {
    cdr::RequestHeader req;
    req.request_id = request_id;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}

/// accept() one connection while a client connects; returns both ends.
std::pair<std::unique_ptr<net::Transport>, std::unique_ptr<net::Transport>>
tcp_pair(net::TcpAcceptor& acceptor,
         const net::TcpOptions& client_options = {}) {
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client =
        net::tcp_connect("127.0.0.1", acceptor.bound_port(), client_options);
    accept_thread.join();
    return {std::move(client), std::move(server_side)};
}

/// Raw O_CLOEXEC-less client socket, for byte-level wire control the
/// Transport API deliberately doesn't expose (partial frames, one-byte
/// trickles).
int raw_connect(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    return fd;
}

/// Counts frames delivered by the reactor and wakes waiters.
struct FrameSink {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t frames = 0;
    std::size_t bytes = 0;
    bool closed = false;

    net::Reactor::FrameHandler on_frame() {
        return [this](net::FrameBuffer frame) {
            std::lock_guard<std::mutex> lk(mu);
            ++frames;
            bytes += frame.size();
            cv.notify_all();
        };
    }

    net::Reactor::ClosedHandler on_closed() {
        return [this] {
            std::lock_guard<std::mutex> lk(mu);
            closed = true;
            cv.notify_all();
        };
    }

    bool wait_frames(std::size_t n, std::chrono::seconds budget =
                                        std::chrono::seconds(20)) {
        std::unique_lock<std::mutex> lk(mu);
        return cv.wait_for(lk, budget, [&] { return frames >= n; });
    }

    bool wait_closed(std::chrono::seconds budget = std::chrono::seconds(20)) {
        std::unique_lock<std::mutex> lk(mu);
        return cv.wait_for(lk, budget, [&] { return closed; });
    }
};

} // namespace

TEST(Reactor, ThreadCountFromOptionsAndEnv) {
    {
        net::Reactor r(net::ReactorOptions{3});
        EXPECT_EQ(r.thread_count(), 3u);
    }
    ::setenv("COMPADRES_REACTOR_THREADS", "2", 1);
    {
        net::Reactor r; // options.threads == 0 defers to the env var
        EXPECT_EQ(r.thread_count(), 2u);
    }
    ::unsetenv("COMPADRES_REACTOR_THREADS");
    {
        net::Reactor r;
        EXPECT_GE(r.thread_count(), 1u);
        EXPECT_LE(r.thread_count(), 4u);
    }
}

TEST(Reactor, AssemblesFramesFromRegisteredWire) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    for (std::uint32_t i = 0; i < 50; ++i) client->send_frame(make_frame(i, 256));
    ASSERT_TRUE(sink.wait_frames(50));
    EXPECT_EQ(reactor.stats().frames_assembled, 50u);
    EXPECT_EQ(server_side->stats().frames_received, 50u);
}

TEST(Reactor, AssemblesFrameTrickledOneByteAtATime) {
    // Worst-case segmentation: every recv() returns one byte, so the
    // incremental header/body state machine crosses each boundary.
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    int fd = raw_connect(acceptor.bound_port());
    accept_thread.join();

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    const std::vector<std::uint8_t> frame = make_frame(9, 64);
    for (std::uint8_t byte : frame) {
        ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
    }
    ASSERT_TRUE(sink.wait_frames(1));
    EXPECT_EQ(sink.bytes, frame.size());
    ::close(fd);
    EXPECT_TRUE(sink.wait_closed());
}

TEST(Reactor, EofMidFrameClosesWireWithoutDelivering) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    int fd = raw_connect(acceptor.bound_port());
    accept_thread.join();

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    // One complete frame, then a header promising 100 body bytes of which
    // only 10 arrive before EOF.
    const std::vector<std::uint8_t> whole = make_frame(1, 32);
    ASSERT_EQ(::send(fd, whole.data(), whole.size(), 0),
              static_cast<ssize_t>(whole.size()));
    const std::vector<std::uint8_t> partial = make_frame(2, 100);
    ASSERT_EQ(::send(fd, partial.data(), partial.size() - 90, 0),
              static_cast<ssize_t>(partial.size() - 90));
    ::close(fd);

    ASSERT_TRUE(sink.wait_closed());
    EXPECT_EQ(sink.frames, 1u); // the partial never surfaced
    EXPECT_EQ(reactor.stats().wires_closed, 1u);
}

TEST(Reactor, OversizedFrameClosesWire) {
    net::TcpOptions server_options;
    server_options.max_frame_bytes = 1024;
    net::TcpAcceptor acceptor(0, server_options);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    client->send_frame(make_frame(1, 4096));
    ASSERT_TRUE(sink.wait_closed());
    EXPECT_EQ(sink.frames, 0u);
}

TEST(Reactor, ParkedWriterResumesOnWritable) {
    // Bounded socket buffers + a slow reader force the registered client's
    // coalescer to hit EAGAIN, park, and resume via EPOLLOUT. Every frame
    // must still arrive, in order, and the resumption must be visible in
    // the reactor's writable counter.
    net::TcpOptions bounded;
    bounded.send_buffer_bytes = 16 * 1024;
    bounded.recv_buffer_bytes = 16 * 1024;
    net::TcpAcceptor acceptor(0, bounded);
    auto [client, server_side] = tcp_pair(acceptor, bounded);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    const std::uint64_t wire =
        reactor.register_wire(*client, sink.on_frame(), sink.on_closed());
    (void)wire;

    constexpr std::uint32_t kFrames = 400;
    constexpr std::size_t kPayload = 4096;
    std::thread sender([&client] {
        for (std::uint32_t i = 0; i < kFrames; ++i) {
            client->send_frame(make_frame(i, kPayload));
        }
    });

    std::uint32_t next = 0;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        // A sluggish reader early on guarantees the send side backs up.
        if (i < 8) std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto frame = server_side->recv_frame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(
            cdr::decode_request(frame->data(), frame->size()).header.request_id,
            next++);
    }
    sender.join();

    // The peer holding all 400 frames does not mean the sent-counter is
    // final: the loop thread bumps it after the batch's sendmsg returns,
    // which can trail the last byte hitting the peer. Poll briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (client->stats().frames_sent < kFrames &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const net::TransportStats stats = client->stats();
    EXPECT_EQ(stats.frames_sent, kFrames);
    EXPECT_EQ(stats.frames_dropped, 0u);
    EXPECT_GE(reactor.stats().writable_events, 1u);
}

TEST(Reactor, LoopThreadReplyUnderBackpressureNeverFreezesTheLoop) {
    // The echo shape against a client that never reads its replies: the
    // handler sends on the same wire it receives from. Once the socket
    // buffer, the parked batch, and the coalescer intake all fill, a
    // loop-thread send that waited for intake space would be waiting on
    // the EPOLLOUT only this very thread can deliver — freezing the loop
    // and every wire on it, forever. The contract instead: the loop keeps
    // pumping inbound frames and un-sendable replies are dropped and
    // counted (stats().frames_dropped).
    net::TcpOptions bounded;
    bounded.send_buffer_bytes = 8 * 1024;
    bounded.recv_buffer_bytes = 8 * 1024;
    bounded.intake_capacity = 4;
    net::TcpAcceptor acceptor(0, bounded);
    auto [client, server_side] = tcp_pair(acceptor, bounded);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    net::Transport* server = server_side.get();
    const std::uint64_t wire = reactor.register_wire(
        *server_side,
        [&](net::FrameBuffer) {
            {
                std::lock_guard<std::mutex> lk(sink.mu);
                ++sink.frames;
                sink.cv.notify_all();
            }
            server->send_frame(make_frame(0, 4096)); // peer never reads it
        },
        sink.on_closed());

    constexpr std::uint32_t kFrames = 200;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        client->send_frame(make_frame(i, 64));
    }
    // Pre-fix this deadlocks after a handful of frames and times out.
    ASSERT_TRUE(sink.wait_frames(kFrames));
    EXPECT_GT(server->stats().frames_dropped, 0u);
    reactor.deregister_wire(wire);
}

TEST(Reactor, SpuriousWritableIsCountedAndHarmless) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    const std::uint64_t wire =
        reactor.register_wire(*client, sink.on_frame(), sink.on_closed());

    reactor.poke_writable(wire); // EPOLLOUT with nothing parked
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (reactor.stats().spurious_writables == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(reactor.stats().spurious_writables, 1u);

    // The wire keeps working after the spurious wakeup.
    client->send_frame(make_frame(3, 64));
    auto got = server_side->recv_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(cdr::decode_request(got->data(), got->size()).header.request_id,
              3u);
}

TEST(Reactor, DeregisterFlushesOrDropsPendingOutput) {
    // Satellite of the shutdown contract: a registered wire whose peer
    // stopped reading is deregistered with frames parked in the coalescer.
    // Deregistration must return promptly, flush what the kernel will
    // still take, and count the rest as dropped — bounded socket buffers
    // guarantee a remainder exists.
    net::TcpOptions bounded;
    bounded.send_buffer_bytes = 16 * 1024;
    bounded.recv_buffer_bytes = 16 * 1024;
    net::TcpAcceptor acceptor(0, bounded);
    auto [client, server_side] = tcp_pair(acceptor, bounded);

    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    const std::uint64_t wire =
        reactor.register_wire(*client, sink.on_frame(), sink.on_closed());

    std::atomic<bool> stop{false};
    std::thread sender([&] {
        try {
            while (!stop.load()) client->send_frame(make_frame(0, 4096));
        } catch (const net::TransportError&) {
            // close() below fails the in-flight send; expected
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    reactor.deregister_wire(wire); // prompt: flush what fits, drop the rest
    stop.store(true);
    client->close();
    sender.join();

    const net::TransportStats stats = client->stats();
    EXPECT_GT(stats.frames_sent, 0u);
    EXPECT_GT(stats.frames_dropped, 0u);
    reactor.deregister_wire(wire); // unknown id: no-op
}

TEST(Reactor, CloseWhilePeerStillSending) {
    // The inbound direction of the shutdown contract: deregister a wire
    // whose peer is mid-blast. No hang, no crash, no frame delivered after
    // deregistration returns.
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(net::ReactorOptions{2});
    FrameSink sink;
    const std::uint64_t wire =
        reactor.register_wire(*server_side, sink.on_frame());

    std::atomic<bool> stop{false};
    std::thread sender([&] {
        try {
            while (!stop.load()) client->send_frame(make_frame(0, 1024));
        } catch (const net::TransportError&) {
        }
    });
    ASSERT_TRUE(sink.wait_frames(10)); // traffic is flowing
    reactor.deregister_wire(wire);
    const std::size_t frames_at_deregister = [&] {
        std::lock_guard<std::mutex> lk(sink.mu);
        return sink.frames;
    }();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
        std::lock_guard<std::mutex> lk(sink.mu);
        EXPECT_EQ(sink.frames, frames_at_deregister);
    }
    stop.store(true);
    server_side->close();
    client->close();
    sender.join();
}

TEST(Reactor, StopIsIdempotentAndDeregistersWires) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(net::ReactorOptions{2});
    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());
    client->send_frame(make_frame(1, 64));
    ASSERT_TRUE(sink.wait_frames(1));

    reactor.stop();
    reactor.stop(); // idempotent
    EXPECT_EQ(reactor.stats().wires_registered, 1u);
    // Registration after stop would race a dead pool; deregister of a
    // stopped reactor is a no-op rather than a hang.
    reactor.deregister_wire(12345);
}

TEST(Reactor, FanIn64WiresOverBoundedPool) {
    // The headline shape: 64 client connections funnel into one acceptor,
    // every accepted wire served by a 2-thread reactor pool. All frames
    // from all wires must assemble; resident reader threads stay at 2.
    constexpr int kWires = 64;
    constexpr std::uint32_t kFramesPerWire = 25;
    net::TcpAcceptor acceptor(0);

    std::vector<std::unique_ptr<net::Transport>> servers(kWires);
    std::vector<std::unique_ptr<net::Transport>> clients(kWires);
    std::thread accept_thread([&] {
        for (int i = 0; i < kWires; ++i) servers[i] = acceptor.accept();
    });
    for (int i = 0; i < kWires; ++i) {
        clients[i] = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    }
    accept_thread.join();

    net::Reactor reactor(net::ReactorOptions{2});
    ASSERT_EQ(reactor.thread_count(), 2u);
    FrameSink sink;
    std::vector<std::uint64_t> ids;
    ids.reserve(kWires);
    for (auto& wire : servers) {
        ids.push_back(reactor.register_wire(*wire, sink.on_frame()));
    }
    EXPECT_EQ(reactor.stats().wires_registered,
              static_cast<std::uint64_t>(kWires));

    // 8 sender threads share the 64 client wires (the container may have
    // a single core; thread-per-client would measure scheduler thrash).
    std::vector<std::thread> senders;
    for (int t = 0; t < 8; ++t) {
        senders.emplace_back([&clients, t] {
            for (int w = t; w < kWires; w += 8) {
                for (std::uint32_t i = 0; i < kFramesPerWire; ++i) {
                    clients[w]->send_frame(
                        make_frame(i, 64 + (static_cast<std::size_t>(w) * 7) %
                                          1024));
                }
            }
        });
    }
    for (auto& s : senders) s.join();

    ASSERT_TRUE(sink.wait_frames(static_cast<std::size_t>(kWires) *
                                 kFramesPerWire));
    EXPECT_EQ(reactor.stats().frames_assembled,
              static_cast<std::uint64_t>(kWires) * kFramesPerWire);
    for (std::uint64_t id : ids) reactor.deregister_wire(id);
    for (auto& c : clients) c->close();
}

TEST(Reactor, PriorityBandPinsWireToLoop) {
    // Band pinning is observable indirectly: banded registration must
    // succeed and traffic must flow regardless of which loop owns the
    // wire. (Loop identity itself is private; the contract is band %
    // thread_count assignment, exercised here across both loops.)
    net::TcpAcceptor acceptor(0);
    FrameSink sink;

    std::vector<std::unique_ptr<net::Transport>> servers(4);
    std::vector<std::unique_ptr<net::Transport>> clients(4);
    std::thread accept_thread([&] {
        for (int i = 0; i < 4; ++i) servers[i] = acceptor.accept();
    });
    for (int i = 0; i < 4; ++i) {
        clients[i] = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    }
    accept_thread.join();

    // Declared after the transports: registered wires must not outlive
    // their transport, so the reactor (whose destructor deregisters
    // everything still pinned) has to go down first.
    net::Reactor reactor(net::ReactorOptions{2});

    for (int i = 0; i < 4; ++i) {
        reactor.register_wire(*servers[i], sink.on_frame(), {}, /*band=*/i);
    }
    for (int i = 0; i < 4; ++i) clients[i]->send_frame(make_frame(1, 128));
    ASSERT_TRUE(sink.wait_frames(4));
}

TEST(Reactor, LoopbackTransportHasNoHook) {
    auto [a, b] = net::make_loopback_pair();
    EXPECT_EQ(a->reactor_hook(), nullptr);
    net::Reactor reactor(net::ReactorOptions{1});
    FrameSink sink;
    EXPECT_THROW(reactor.register_wire(*a, sink.on_frame()),
                 net::TransportError);
}
