// ShmTransport: segment lifecycle, the compadres.shm handshake with its
// fallback ladder, ring backpressure, and the zero-loss failover seam.
#include "cdr/giop.hpp"
#include "net/shm_transport.hpp"
#include "net/tcp.hpp"
#include "remote/remote_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace compadres;

// fork-based tests (peer kill, orphan reclaim) are meaningless under the
// sanitizer runtimes, which do not survive fork+threads.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {

std::vector<std::uint8_t> data_frame(std::uint32_t seq,
                                     std::size_t payload_size = 32) {
    cdr::RequestHeader req;
    req.request_id = seq;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}

std::uint32_t frame_seq(const net::FrameBuffer& f) {
    return cdr::decode_request(f.data(), f.size()).header.request_id;
}

std::vector<std::uint8_t> band_frame(std::uint32_t seq, std::uint8_t band,
                                     std::size_t payload_size = 32) {
    std::vector<std::uint8_t> f = data_frame(seq, payload_size);
    cdr::set_frame_band(f.data(), band);
    return f;
}

/// The client half of the compadres.shm hello, built by hand so tests can
/// claim arbitrary versions and generations.
std::vector<std::uint8_t> hello_frame(const std::string& segment,
                                      std::uint64_t generation,
                                      std::uint32_t version) {
    cdr::RequestHeader req;
    req.request_id = 1;
    req.object_key = "compadres.shm";
    req.operation = "hello";
    cdr::OutputStream payload;
    payload.write_string(segment);
    payload.write_ulonglong(generation);
    payload.write_ulong(version);
    const std::vector<std::uint8_t> bytes = payload.take_buffer();
    return cdr::encode_request(req, bytes.data(), bytes.size());
}

struct HelloReply {
    bool ok = false;
    std::string detail;
};

HelloReply read_reply(net::Transport& wire) {
    const auto frame = wire.recv_frame();
    if (!frame.has_value()) return {};
    const cdr::DecodedReply rep = cdr::decode_reply(frame->data(),
                                                    frame->size());
    cdr::InputStream in(
        rep.payload, rep.payload_len,
        cdr::decode_header(frame->data(), frame->size()).byte_order);
    HelloReply r;
    r.ok = in.read_ulong() != 0;
    r.detail = in.read_string();
    return r;
}

struct NegotiatedPair {
    std::unique_ptr<net::Transport> client;
    std::unique_ptr<net::Transport> server;
    bool client_shm = false;
    bool server_shm = false;
    std::string detail;
};

NegotiatedPair negotiate(const net::ShmOptions& opts) {
    net::ShmAcceptor acceptor(0, opts);
    NegotiatedPair pair;
    std::thread accept_thread([&] {
        net::ShmConnectResult r = acceptor.accept();
        pair.server = std::move(r.transport);
        pair.server_shm = r.shm;
    });
    net::ShmConnectResult r =
        net::shm_upgrade_connect("127.0.0.1", acceptor.bound_port(), opts);
    accept_thread.join();
    pair.client = std::move(r.transport);
    pair.client_shm = r.shm;
    pair.detail = std::move(r.detail);
    return pair;
}

} // namespace

TEST(ShmHandshake, UpgradesCoLocatedPair) {
    NegotiatedPair pair = negotiate({});
    ASSERT_TRUE(pair.client_shm);
    ASSERT_TRUE(pair.server_shm);
    EXPECT_NE(pair.detail.find("segment"), std::string::npos);

    pair.client->send_frame(data_frame(7));
    pair.server->send_frame(data_frame(9));
    const auto at_server = pair.server->recv_frame();
    const auto at_client = pair.client->recv_frame();
    ASSERT_TRUE(at_server.has_value());
    ASSERT_TRUE(at_client.has_value());
    EXPECT_EQ(frame_seq(*at_server), 7u);
    EXPECT_EQ(frame_seq(*at_client), 9u);

    auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get());
    ASSERT_NE(shm, nullptr);
    EXPECT_TRUE(shm->shm_active());
    EXPECT_EQ(shm->counters().shm_frames_sent, 1u);
    EXPECT_EQ(shm->counters().shm_frames_received, 1u);
    EXPECT_EQ(shm->counters().tcp_frames_sent, 0u);

    pair.client->close();
    EXPECT_FALSE(pair.server->recv_frame().has_value());
}

TEST(ShmHandshake, ProtocolUnawareClientKeepsPlainTcpAndItsFirstFrame) {
    net::ShmAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server;
    bool server_shm = true;
    std::string detail;
    std::thread accept_thread([&] {
        net::ShmConnectResult r = acceptor.accept();
        server = std::move(r.transport);
        server_shm = r.shm;
        detail = std::move(r.detail);
    });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    client->send_frame(data_frame(42));
    accept_thread.join();

    EXPECT_FALSE(server_shm);
    EXPECT_NE(detail.find("no shm hello"), std::string::npos);
    // The frame that was mistaken for a hello is re-queued, not lost.
    const auto first = server->recv_frame();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(frame_seq(*first), 42u);
    server->send_frame(data_frame(43));
    const auto back = client->recv_frame();
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(frame_seq(*back), 43u);
}

TEST(ShmHandshake, NacksVersionMismatch) {
    auto seg = net::ShmSegment::create({});
    net::ShmAcceptor acceptor(0);
    net::ShmConnectResult server;
    std::thread accept_thread(
        [&] { server = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    client->send_frame(hello_frame(seg->name(), seg->generation(), 99));
    const HelloReply reply = read_reply(*client);
    accept_thread.join();

    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.detail.find("version mismatch"), std::string::npos);
    EXPECT_FALSE(server.shm);
    EXPECT_NE(server.detail.find("version mismatch"), std::string::npos);
}

TEST(ShmHandshake, NacksStaleGeneration) {
    auto seg = net::ShmSegment::create({});
    net::ShmAcceptor acceptor(0);
    net::ShmConnectResult server;
    std::thread accept_thread(
        [&] { server = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    client->send_frame(hello_frame(seg->name(), seg->generation() + 1,
                                   net::shm_detail::kVersion));
    const HelloReply reply = read_reply(*client);
    accept_thread.join();

    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.detail.find("stale generation"), std::string::npos);
    EXPECT_FALSE(server.shm);
}

TEST(ShmHandshake, NacksWhenClientCouldNotCreateASegment) {
    net::ShmAcceptor acceptor(0);
    net::ShmConnectResult server;
    std::thread accept_thread(
        [&] { server = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    client->send_frame(
        hello_frame(std::string(), 0, net::shm_detail::kVersion));
    const HelloReply reply = read_reply(*client);
    accept_thread.join();

    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.detail.find("could not create"), std::string::npos);
    EXPECT_FALSE(server.shm);
    // Both ends hold a plain TCP wire that still moves frames.
    client->send_frame(data_frame(5));
    const auto f = server.transport->recv_frame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(frame_seq(*f), 5u);
}

TEST(ShmSegment, RejectsDoubleAttach) {
    auto seg = net::ShmSegment::create({});
    auto first = net::ShmSegment::attach(seg->name(), seg->generation());
    ASSERT_NE(first, nullptr);
    try {
        net::ShmSegment::attach(seg->name(), seg->generation());
        FAIL() << "second attach should throw";
    } catch (const net::TransportError& e) {
        EXPECT_NE(std::string(e.what()).find("already attached"),
                  std::string::npos);
    }
}

TEST(ShmSegment, AttachReportsMissingSegmentAsCrossHost) {
    try {
        net::ShmSegment::attach("/compadres.0.0.nonexistent", 1);
        FAIL() << "attach to a missing name should throw";
    } catch (const net::TransportError& e) {
        EXPECT_NE(std::string(e.what()).find("cross-host"),
                  std::string::npos);
    }
}

TEST(ShmTransport, FullRingBackpressureBlocksThenDrains) {
    net::ShmOptions opts;
    opts.ring_capacity = 4;
    opts.wait_cycle_us = 2000;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);

    constexpr std::uint32_t kCount = 32;
    std::atomic<std::uint32_t> sent{0};
    std::thread sender([&] {
        for (std::uint32_t i = 0; i < kCount; ++i) {
            net::FrameBuffer fb = pair.client->frame_pool().adopt(
                data_frame(i));
            pair.client->send_frame(std::move(fb));
            sent.fetch_add(1);
        }
    });
    // With 4 slots the sender must stall far short of kCount while nobody
    // consumes.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_LE(sent.load(), 5u);
    for (std::uint32_t i = 0; i < kCount; ++i) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), i);
    }
    sender.join();
    EXPECT_EQ(sent.load(), kCount);
    pair.client->close();
}

TEST(ShmTransport, AbandonMidBurstLosesNothing) {
    NegotiatedPair pair = negotiate({});
    ASSERT_TRUE(pair.client_shm);
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get());
    ASSERT_NE(shm, nullptr);

    std::thread echo([&] {
        while (auto f = pair.server->recv_frame()) {
            pair.server->send_frame(std::move(*f));
        }
    });

    constexpr std::uint32_t kCount = 100;
    constexpr std::uint32_t kWindow = 16;
    std::vector<std::uint32_t> seen(kCount, 0);
    std::uint32_t sent = 0, received = 0;
    while (received < kCount) {
        while (sent < kCount && sent - received < kWindow) {
            pair.client->send_frame(data_frame(sent));
            ++sent;
            if (sent == kCount / 2) shm->abandon_shm("test drill");
        }
        const auto f = pair.client->recv_frame();
        ASSERT_TRUE(f.has_value());
        ++seen[frame_seq(*f)];
        ++received;
    }
    for (std::uint32_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(seen[i], 1u) << "sequence " << i;
    }
    EXPECT_FALSE(shm->shm_active());
    EXPECT_GE(shm->counters().failovers, 1u);
    EXPECT_GT(shm->counters().tcp_frames_sent, 0u);
    pair.client->close();
    echo.join();
}

TEST(ShmTransport, OversizeFrameFailsOverAndStaysOrdered) {
    net::ShmOptions opts;
    opts.arena_bytes = 64 * 1024;
    opts.max_frame_bytes = 1024;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);

    pair.client->send_frame(data_frame(1, 64));     // fits: rides the ring
    pair.client->send_frame(data_frame(2, 8192));   // oversize: failover
    pair.client->send_frame(data_frame(3, 64));     // post-failover: TCP
    for (std::uint32_t want = 1; want <= 3; ++want) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), want);
    }
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get());
    ASSERT_NE(shm, nullptr);
    EXPECT_FALSE(shm->shm_active());
    EXPECT_GE(shm->counters().failovers, 1u);
    pair.client->close();
}

// ---- zero-copy receive path ----

TEST(ShmZeroCopy, ReceiveBorrowsArenaViews) {
    NegotiatedPair pair = negotiate({});
    ASSERT_TRUE(pair.client_shm);
    for (std::uint32_t i = 0; i < 8; ++i) {
        pair.client->send_frame(data_frame(i));
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_TRUE(f->borrowed()) << "frame " << i << " was copied out";
        EXPECT_EQ(frame_seq(*f), i);
    } // each frame dies here: slot retired, tail advances
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.server.get());
    ASSERT_NE(shm, nullptr);
    const net::ShmCounters c = shm->counters();
    EXPECT_EQ(c.rx_borrowed, 8u);
    EXPECT_EQ(c.rx_copies, 0u);
    EXPECT_EQ(c.rx_pinned, 0u); // everything released and retired
    pair.client->close();
}

TEST(ShmZeroCopy, CopyModeStillDeliversPooledFrames) {
    net::ShmOptions opts;
    opts.borrowed_frames = false;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);
    for (std::uint32_t i = 0; i < 4; ++i) {
        pair.client->send_frame(data_frame(i));
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_FALSE(f->borrowed());
        EXPECT_EQ(frame_seq(*f), i);
    }
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.server.get());
    ASSERT_NE(shm, nullptr);
    const net::ShmCounters c = shm->counters();
    EXPECT_EQ(c.rx_copies, 4u);
    EXPECT_EQ(c.rx_borrowed, 0u);
    EXPECT_EQ(c.rx_pin_stalls, 0u); // copies by policy, not backpressure
    pair.client->close();
}

TEST(ShmZeroCopy, PinBudgetFallsBackToCopies) {
    net::ShmOptions opts;
    opts.ring_capacity = 8;
    opts.max_pinned_slots = 2;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);
    for (std::uint32_t i = 0; i < 6; ++i) {
        pair.client->send_frame(data_frame(i));
    }
    std::vector<net::FrameBuffer> pinned;
    for (std::uint32_t i = 0; i < 6; ++i) {
        auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), i);
        if (i < 2) {
            EXPECT_TRUE(f->borrowed());
            pinned.push_back(std::move(*f)); // hold: blocks the retire prefix
        } else {
            // Budget exhausted: the pop copies out so the app cannot wedge
            // the ring by hoarding views.
            EXPECT_FALSE(f->borrowed());
        }
    }
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.server.get());
    ASSERT_NE(shm, nullptr);
    {
        const net::ShmCounters c = shm->counters();
        EXPECT_EQ(c.rx_borrowed, 2u);
        EXPECT_EQ(c.rx_copies, 4u);
        EXPECT_EQ(c.rx_pin_stalls, 4u);
        // The copies released their slots, but the tail cannot pass the two
        // held views, so the whole window still counts as pinned.
        EXPECT_EQ(c.rx_pinned, 6u);
    }
    pinned.clear(); // retire the prefix: tail sweeps all six slots
    EXPECT_EQ(shm->counters().rx_pinned, 0u);
    pair.client->send_frame(data_frame(6));
    const auto f = pair.server->recv_frame();
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(f->borrowed()); // budget reopened
    pair.client->close();
}

TEST(ShmZeroCopy, ProducerStallsBehindPinnedSlotThenResumes) {
    net::ShmOptions opts;
    opts.ring_capacity = 8;
    opts.arena_bytes = 8 * 1024; // several wraps over the drill
    opts.wait_cycle_us = 2000;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);

    // Pin the first frame: a live view at the arena base.
    pair.client->send_frame(data_frame(0, 512));
    auto held = pair.server->recv_frame();
    ASSERT_TRUE(held.has_value());
    ASSERT_TRUE(held->borrowed());
    const std::vector<std::uint8_t> snapshot(held->data(),
                                             held->data() + held->size());

    constexpr std::uint32_t kCount = 64;
    std::atomic<std::uint32_t> sent{0};
    std::thread sender([&] {
        for (std::uint32_t i = 1; i <= kCount; ++i) {
            pair.client->send_frame(data_frame(i, 512));
            sent.fetch_add(1);
        }
    });
    // The ring tail is frozen at the pinned slot, so the producer stalls
    // after one ring's worth instead of lapping the arena over the view.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_LE(sent.load(), 8u);
    EXPECT_EQ(std::memcmp(held->data(), snapshot.data(), snapshot.size()), 0)
        << "producer overwrote a pinned slot";

    held->release(); // retire: the producer resumes and wraps freely
    for (std::uint32_t i = 1; i <= kCount; ++i) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), i);
        EXPECT_TRUE(f->borrowed());
    }
    sender.join();
    EXPECT_EQ(sent.load(), kCount);
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.server.get());
    ASSERT_NE(shm, nullptr);
    EXPECT_EQ(shm->counters().rx_copies, 0u);
    pair.client->close();
}

// Releases happen on whatever thread drops the frame; here a dedicated
// releaser races retire_band against the popper. The assertions are loose —
// the value of this test is the TSan run in CI.
TEST(ShmZeroCopy, CrossThreadReleaseRacesPop) {
    NegotiatedPair pair = negotiate({});
    ASSERT_TRUE(pair.client_shm);
    constexpr std::uint32_t kCount = 512;
    net::FrameRing handoff(64);
    std::thread releaser([&] {
        while (handoff.pop().has_value()) {
            // dropping the popped frame runs the release hook here
        }
    });
    std::thread sender([&] {
        for (std::uint32_t i = 0; i < kCount; ++i) {
            pair.client->send_frame(data_frame(i));
        }
    });
    for (std::uint32_t i = 0; i < kCount; ++i) {
        auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), i);
        ASSERT_TRUE(handoff.push(std::move(*f)));
    }
    sender.join();
    handoff.close();
    releaser.join();
    pair.client->close();
}

// ---- banded lanes ----

TEST(ShmBands, UrgentBandOvertakesQueuedBulk) {
    net::ShmOptions opts;
    opts.bands = 2;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);
    auto* server = dynamic_cast<net::ShmTransport*>(pair.server.get());
    auto* client = dynamic_cast<net::ShmTransport*>(pair.client.get());
    ASSERT_NE(server, nullptr);
    ASSERT_NE(client, nullptr);
    EXPECT_EQ(client->bands(), 2u);
    EXPECT_EQ(server->counters().bands, 2u);

    // Three bulk frames queue on band 1, then one urgent on band 0 —
    // nothing consumed yet. The receiver drains band 0 first, so the
    // urgent frame overtakes the earlier bulk queue.
    for (std::uint32_t i = 1; i <= 3; ++i) {
        pair.client->send_frame(band_frame(i, 1, 256));
    }
    pair.client->send_frame(band_frame(9, 0));
    const std::uint32_t expect[] = {9, 1, 2, 3};
    for (const std::uint32_t want : expect) {
        const auto f = pair.server->recv_frame();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(frame_seq(*f), want);
    }
    const net::ShmCounters tx = client->counters();
    EXPECT_EQ(tx.band_tx_frames[0], 1u);
    EXPECT_EQ(tx.band_tx_frames[1], 3u);
    const net::ShmCounters rx = server->counters();
    EXPECT_EQ(rx.band_rx_frames[0], 1u);
    EXPECT_EQ(rx.band_rx_frames[1], 3u);
    pair.client->close();
}

TEST(ShmBands, AbandonWithBandedQueuesLosesNothing) {
    net::ShmOptions opts;
    opts.bands = 2;
    NegotiatedPair pair = negotiate(opts);
    ASSERT_TRUE(pair.client_shm);
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get());
    ASSERT_NE(shm, nullptr);

    std::thread echo([&] {
        while (auto f = pair.server->recv_frame()) {
            pair.server->send_frame(std::move(*f));
        }
    });

    constexpr std::uint32_t kCount = 100;
    constexpr std::uint32_t kWindow = 16;
    std::vector<std::uint32_t> seen(kCount, 0);
    std::uint32_t sent = 0, received = 0;
    net::FrameBuffer pinned; // first echo, held across the failover
    std::vector<std::uint8_t> pinned_bytes;
    while (received < kCount) {
        while (sent < kCount && sent - received < kWindow) {
            // Even sequences ride the urgent lane, odd ones the bulk lane.
            pair.client->send_frame(
                band_frame(sent, static_cast<std::uint8_t>(sent % 2), 128));
            ++sent;
            if (sent == kCount / 2) shm->abandon_shm("banded drill");
        }
        auto f = pair.client->recv_frame();
        ASSERT_TRUE(f.has_value());
        ++seen[frame_seq(*f)];
        ++received;
        if (received == 1) {
            pinned_bytes.assign(f->data(), f->data() + f->size());
            pinned = std::move(*f);
        }
    }
    for (std::uint32_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(seen[i], 1u) << "sequence " << i;
    }
    ASSERT_EQ(pinned.size(), pinned_bytes.size());
    EXPECT_EQ(std::memcmp(pinned.data(), pinned_bytes.data(), pinned.size()),
              0)
        << "pinned view changed across the failover";
    EXPECT_FALSE(shm->shm_active());
    EXPECT_GE(shm->counters().failovers, 1u);
    pinned.release();
    pair.client->close();
    echo.join();
}

TEST(PlannedWire, ShmRemoteDialsTheSegment) {
    net::ShmAcceptor acceptor(0);
    compiler::PlannedRemote remote;
    remote.transport = compiler::RemoteTransport::kShm;
    remote.host = "127.0.0.1";
    remote.bands = 1;
    std::unique_ptr<net::Transport> server;
    std::thread accept_thread(
        [&] { server = acceptor.accept().transport; });
    remote::PlannedWire wire =
        remote::connect_planned_wire(remote, acceptor.bound_port());
    accept_thread.join();

    EXPECT_TRUE(wire.shm);
    EXPECT_NE(dynamic_cast<net::ShmTransport*>(wire.transport.get()),
              nullptr);
    wire.transport->send_frame(data_frame(11));
    const auto f = server->recv_frame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(frame_seq(*f), 11u);
}

TEST(PlannedWire, SingleBandTcpRemoteDialsPlainTcp) {
    net::TcpAcceptor acceptor(0);
    compiler::PlannedRemote remote; // defaults: tcp, loopback, bands
    remote.bands = 1;
    std::unique_ptr<net::Transport> server;
    std::thread accept_thread([&] { server = acceptor.accept(); });
    remote::PlannedWire wire =
        remote::connect_planned_wire(remote, acceptor.bound_port());
    accept_thread.join();

    EXPECT_FALSE(wire.shm);
    EXPECT_EQ(dynamic_cast<net::ShmTransport*>(wire.transport.get()),
              nullptr);
    wire.transport->send_frame(data_frame(12));
    const auto f = server->recv_frame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(frame_seq(*f), 12u);
}

TEST(ShmSweep, LiveCreatorSegmentSurvivesSweep) {
    auto seg = net::ShmSegment::create({});
    net::sweep_orphan_segments();
    // Our pid is embedded in the name and we are alive: the segment must
    // still be attachable.
    auto attached = net::ShmSegment::attach(seg->name(), seg->generation());
    EXPECT_NE(attached, nullptr);
}

#if !COMPADRES_UNDER_SANITIZER

TEST(ShmTransport, PeerDeathDrainsRingThenFailsOver) {
    net::ShmAcceptor acceptor(0);
    int ready[2];
    ASSERT_EQ(pipe(ready), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: connect, push 10 frames into the segment, report, then
        // hang until SIGKILL — a crashed co-located peer.
        close(ready[0]);
        try {
            net::ShmConnectResult r = net::shm_upgrade_connect(
                "127.0.0.1", acceptor.bound_port());
            if (!r.shm) _exit(2);
            for (std::uint32_t i = 0; i < 10; ++i) {
                r.transport->send_frame(data_frame(i));
            }
            char byte = 1;
            if (write(ready[1], &byte, 1) != 1) _exit(3);
            pause();
        } catch (...) {
            _exit(4);
        }
        _exit(0);
    }
    close(ready[1]);
    net::ShmConnectResult server = acceptor.accept();
    ASSERT_TRUE(server.shm);
    char byte = 0;
    ASSERT_EQ(read(ready[0], &byte, 1), 1);
    close(ready[0]);
    ASSERT_EQ(kill(child, SIGKILL), 0);
    ASSERT_EQ(waitpid(child, nullptr, 0), child); // reap: pid must be gone

    // Everything the peer published before dying is still in the segment
    // and must be delivered; only then does the wire close.
    for (std::uint32_t i = 0; i < 10; ++i) {
        const auto f = server.transport->recv_frame();
        ASSERT_TRUE(f.has_value()) << "frame " << i << " lost to peer death";
        EXPECT_EQ(frame_seq(*f), i);
    }
    EXPECT_FALSE(server.transport->recv_frame().has_value());
    auto* shm = dynamic_cast<net::ShmTransport*>(server.transport.get());
    ASSERT_NE(shm, nullptr);
    EXPECT_FALSE(shm->shm_active());
}

// A peer dying while the survivor holds borrowed frames must not yank the
// mapping out from under them: the keepalive each view carries pins the
// session (and with it the segment) past transport close and destruction.
TEST(ShmTransport, PeerDeathWithPinnedSlotsKeepsViewsValid) {
    net::ShmAcceptor acceptor(0);
    int ready[2];
    ASSERT_EQ(pipe(ready), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        close(ready[0]);
        try {
            net::ShmConnectResult r = net::shm_upgrade_connect(
                "127.0.0.1", acceptor.bound_port());
            if (!r.shm) _exit(2);
            for (std::uint32_t i = 0; i < 10; ++i) {
                r.transport->send_frame(data_frame(i, 64));
            }
            char byte = 1;
            if (write(ready[1], &byte, 1) != 1) _exit(3);
            pause();
        } catch (...) {
            _exit(4);
        }
        _exit(0);
    }
    close(ready[1]);
    net::ShmConnectResult server = acceptor.accept();
    ASSERT_TRUE(server.shm);
    char byte = 0;
    ASSERT_EQ(read(ready[0], &byte, 1), 1);
    close(ready[0]);
    ASSERT_EQ(kill(child, SIGKILL), 0);
    ASSERT_EQ(waitpid(child, nullptr, 0), child);

    std::vector<net::FrameBuffer> pinned;
    for (std::uint32_t i = 0; i < 10; ++i) {
        auto f = server.transport->recv_frame();
        ASSERT_TRUE(f.has_value()) << "frame " << i << " lost to peer death";
        EXPECT_TRUE(f->borrowed());
        pinned.push_back(std::move(*f));
    }
    EXPECT_FALSE(server.transport->recv_frame().has_value());

    // Tear the transport down with every view still outstanding, then read
    // through them: the bytes must still be the mapped slots.
    server.transport->close();
    server.transport.reset();
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(frame_seq(pinned[i]), i);
    }
    pinned.clear(); // hooks run against the dead session: bookkeeping only
}

TEST(ShmSweep, ReclaimsSegmentOfDeadCreator) {
    int names[2];
    ASSERT_EQ(pipe(names), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: create a segment and die without the destructor — the
        // orphan a crashed process leaves in /dev/shm.
        close(names[0]);
        try {
            auto seg = net::ShmSegment::create({});
            const std::string& name = seg->name();
            if (write(names[1], name.c_str(), name.size() + 1) < 0) _exit(3);
            _exit(0); // no dtor: the name stays linked
        } catch (...) {
            _exit(4);
        }
    }
    close(names[1]);
    char buf[128] = {};
    ASSERT_GT(read(names[0], buf, sizeof buf - 1), 0);
    close(names[0]);
    ASSERT_EQ(waitpid(child, nullptr, 0), child);

    const std::string name(buf);
    EXPECT_GE(net::sweep_orphan_segments(), 1u);
    errno = 0;
    EXPECT_EQ(shm_open(name.c_str(), O_RDWR, 0), -1);
    EXPECT_EQ(errno, ENOENT);
}

#endif // !COMPADRES_UNDER_SANITIZER
