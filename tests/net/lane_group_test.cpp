// Priority-banded connection lanes: handshake assembly, band routing,
// per-lane pool injection, deterministic close, and lane failover.
#include "cdr/giop.hpp"
#include "net/frame_pool.hpp"
#include "net/lane_group.hpp"
#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace compadres;

namespace {

std::vector<std::uint8_t> make_frame(std::uint32_t request_id,
                                     std::size_t payload_size,
                                     std::uint8_t band) {
    cdr::RequestHeader req;
    req.request_id = request_id;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    std::vector<std::uint8_t> frame =
        cdr::encode_request(req, payload.data(), payload.size());
    cdr::set_frame_band(frame.data(), band);
    return frame;
}

/// Connected client/server group pair through one acceptor.
struct GroupPair {
    std::unique_ptr<net::LaneGroup> client;
    std::unique_ptr<net::LaneGroup> server;

    explicit GroupPair(const net::LaneGroupOptions& options = {}) {
        net::LaneAcceptor acceptor(0, options);
        std::thread accept_thread([&] { server = acceptor.accept(); });
        client =
            net::lane_connect("127.0.0.1", acceptor.bound_port(), options);
        accept_thread.join();
    }
};

} // namespace

TEST(LanePolicy, PriorityMapsUrgentToLaneZeroAndBulkToLast) {
    net::LanePolicy policy;
    EXPECT_EQ(policy.band_for_priority(10, 2), 0u);
    EXPECT_EQ(policy.band_for_priority(36, 2), 0u);
    EXPECT_EQ(policy.band_for_priority(9, 2), 1u);
    EXPECT_EQ(policy.band_for_priority(0, 4), 3u);
    // Single-lane groups have nowhere else to go.
    EXPECT_EQ(policy.band_for_priority(0, 1), 0u);
    EXPECT_EQ(policy.band_for_priority(99, 1), 0u);
}

TEST(LanePolicy, FrameBandClampsToGroupWidth) {
    const auto frame = make_frame(1, 8, 5);
    EXPECT_EQ(net::LanePolicy::band_for_frame(frame.data(), 8), 5u);
    // A frame stamped for a wider group still flows on a narrower one,
    // on its least-urgent lane.
    EXPECT_EQ(net::LanePolicy::band_for_frame(frame.data(), 2), 1u);
    EXPECT_EQ(net::LanePolicy::band_for_frame(frame.data(), 1), 0u);
}

TEST(LaneGroup, HandshakeAssemblesMatchingGroups) {
    GroupPair pair;
    ASSERT_NE(pair.client, nullptr);
    ASSERT_NE(pair.server, nullptr);
    EXPECT_EQ(pair.client->lane_count(), 2u);
    EXPECT_EQ(pair.server->lane_count(), 2u);
    EXPECT_EQ(pair.client->group_id(), pair.server->group_id());
    pair.client->close();
    pair.server->close();
}

TEST(LaneGroup, FramesRouteToTheirBandsLane) {
    GroupPair pair;
    pair.client->send_frame(make_frame(1, 16, 0));
    pair.client->send_frame(make_frame(2, 16, 1));

    // The hello never reaches the application: the first frame on each
    // lane is payload, and band i's frame arrives on lane i.
    const auto on_lane0 = pair.server->lane(0).recv_frame();
    const auto on_lane1 = pair.server->lane(1).recv_frame();
    ASSERT_TRUE(on_lane0.has_value());
    ASSERT_TRUE(on_lane1.has_value());
    EXPECT_EQ(cdr::frame_band(on_lane0->data()), 0u);
    EXPECT_EQ(cdr::frame_band(on_lane1->data()), 1u);
    EXPECT_EQ(
        cdr::decode_request(on_lane0->data(), on_lane0->size()).header.request_id,
        1u);
    EXPECT_EQ(
        cdr::decode_request(on_lane1->data(), on_lane1->size()).header.request_id,
        2u);
    pair.client->close();
    pair.server->close();
}

TEST(LaneGroup, MergedRecvDeliversBothBands) {
    GroupPair pair;
    pair.client->send_frame(make_frame(7, 16, 0));
    pair.client->send_frame(make_frame(8, 16, 1));

    std::set<std::uint32_t> ids;
    for (int i = 0; i < 2; ++i) {
        const auto frame = pair.server->recv_frame();
        ASSERT_TRUE(frame.has_value());
        ids.insert(
            cdr::decode_request(frame->data(), frame->size()).header.request_id);
    }
    EXPECT_EQ(ids, (std::set<std::uint32_t>{7, 8}));
    pair.client->close();
    pair.server->close();
}

TEST(LaneGroup, InterleavedConnectsAssembleSeparateGroups) {
    net::LaneGroupOptions options;
    net::LaneAcceptor acceptor(0, options);
    std::unique_ptr<net::LaneGroup> server_a;
    std::unique_ptr<net::LaneGroup> server_b;
    std::thread accept_thread([&] {
        server_a = acceptor.accept();
        server_b = acceptor.accept();
    });
    // Two clients race their lane connects through the same acceptor; the
    // group ids in the hellos keep the interleaved lanes apart.
    std::unique_ptr<net::LaneGroup> client_a;
    std::unique_ptr<net::LaneGroup> client_b;
    std::thread connect_a([&] {
        client_a = net::lane_connect("127.0.0.1", acceptor.bound_port());
    });
    std::thread connect_b([&] {
        client_b = net::lane_connect("127.0.0.1", acceptor.bound_port());
    });
    connect_a.join();
    connect_b.join();
    accept_thread.join();
    ASSERT_NE(server_a, nullptr);
    ASSERT_NE(server_b, nullptr);

    const std::set<std::uint64_t> client_ids{client_a->group_id(),
                                             client_b->group_id()};
    const std::set<std::uint64_t> server_ids{server_a->group_id(),
                                             server_b->group_id()};
    EXPECT_EQ(client_ids, server_ids);
    EXPECT_EQ(client_ids.size(), 2u);

    // Traffic stays within its own group.
    net::LaneGroup& peer_of_a =
        server_a->group_id() == client_a->group_id() ? *server_a : *server_b;
    client_a->send_frame(make_frame(42, 8, 0));
    const auto got = peer_of_a.lane(0).recv_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(cdr::decode_request(got->data(), got->size()).header.request_id,
              42u);

    client_a->close();
    client_b->close();
    server_a->close();
    server_b->close();
}

TEST(LaneGroup, StrayConnectionDoesNotPoisonTheAcceptor) {
    net::LaneAcceptor acceptor(0);
    std::unique_ptr<net::LaneGroup> server;
    std::thread accept_thread([&] { server = acceptor.accept(); });

    // A connection that dies before sending any hello is skipped.
    net::tcp_connect("127.0.0.1", acceptor.bound_port())->close();

    auto client = net::lane_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->group_id(), client->group_id());
    client->close();
    server->close();
}

TEST(LaneGroup, PerLanePoolsAreDistinctAndServeInboundFrames) {
    GroupPair pair;
    EXPECT_NE(&pair.server->pool_for_band(0), &pair.server->pool_for_band(1));
    EXPECT_NE(&pair.server->pool_for_band(0), &net::FrameBufferPool::global());
    EXPECT_NE(&pair.server->pool_for_band(1), &net::FrameBufferPool::global());

    const std::uint64_t before0 = pair.server->pool_for_band(0).stats().acquires;
    const std::uint64_t before1 = pair.server->pool_for_band(1).stats().acquires;
    pair.client->send_frame(make_frame(1, 64, 0));
    pair.client->send_frame(make_frame(2, 64, 1));
    ASSERT_TRUE(pair.server->lane(0).recv_frame().has_value());
    ASSERT_TRUE(pair.server->lane(1).recv_frame().has_value());
    EXPECT_GT(pair.server->pool_for_band(0).stats().acquires, before0);
    EXPECT_GT(pair.server->pool_for_band(1).stats().acquires, before1);
    pair.client->close();
    pair.server->close();
}

TEST(LaneGroup, GlobalPoolWhenPerLanePoolsOff) {
    net::LaneGroupOptions options;
    options.per_lane_pools = false;
    GroupPair pair(options);
    EXPECT_EQ(&pair.client->pool_for_band(0), &net::FrameBufferPool::global());
    EXPECT_EQ(&pair.client->pool_for_band(1), &net::FrameBufferPool::global());
    pair.client->close();
    pair.server->close();
}

// The deterministic-close regression: frames queued on a backed-up lane
// must be delivered — not dropped by the close — and only then may the
// peer see any lane's FIN. Small socket buffers and a reader that starts
// late guarantee a deep queue exists at close() time.
TEST(LaneGroup, CloseFlushesQueuedFramesBeforeFin) {
    net::LaneGroupOptions options;
    options.tcp.send_buffer_bytes = 16 * 1024;
    options.tcp.recv_buffer_bytes = 16 * 1024;
    GroupPair pair(options);

    constexpr int kFrames = 200;
    constexpr std::size_t kPayload = 3072;
    std::atomic<int> received{0};
    std::atomic<bool> lane0_eof_before_flush{false};
    std::thread bulk_reader([&] {
        // Let the send side back up first.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        while (pair.server->lane(1).recv_frame().has_value()) ++received;
    });
    std::thread urgent_reader([&] {
        // Lane 0 carries nothing; its recv returns only at EOF — which
        // close() must withhold until lane 1's queue has flushed.
        EXPECT_FALSE(pair.server->lane(0).recv_frame().has_value());
        if (received.load() < kFrames) lane0_eof_before_flush = true;
    });

    for (int i = 0; i < kFrames; ++i) {
        pair.client->send_frame(make_frame(static_cast<std::uint32_t>(i),
                                           kPayload, 1));
    }
    pair.client->close(); // blocks until every lane's queue is on the wire

    bulk_reader.join();
    urgent_reader.join();
    EXPECT_EQ(received.load(), kFrames);

    const net::TransportStats lane1 = pair.client->lane_stats(1);
    EXPECT_EQ(lane1.frames_dropped, 0u);
    // Every frame accepted by send_frame is accounted sent (the +1 is the
    // lane handshake hello).
    EXPECT_EQ(lane1.frames_sent, static_cast<std::uint64_t>(kFrames) + 1);
    pair.server->close();
}

TEST(LaneGroup, DeadLaneFailsOverWithCountedEventNotRoutePoisoning) {
    GroupPair pair;
    EXPECT_EQ(pair.client->lane_failovers(), 0u);
    EXPECT_TRUE(pair.client->lane_alive(1));

    // Kill the bulk lane server-side; the client discovers the death on a
    // subsequent send (RST surfaces asynchronously, so keep sending).
    pair.server->lane(1).close();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (pair.client->lane_failovers() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        pair.client->send_frame(make_frame(9, 16, 1)); // must not throw
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(pair.client->lane_failovers(), 1u);
    EXPECT_FALSE(pair.client->lane_alive(1));
    EXPECT_TRUE(pair.client->lane_alive(0));

    // Band 1 now rides the surviving lane 0 — the route is degraded, not
    // poisoned: the frame still carries its stamped band.
    pair.client->send_frame(make_frame(10, 16, 1));
    std::optional<net::FrameBuffer> got;
    do {
        got = pair.server->lane(0).recv_frame();
        ASSERT_TRUE(got.has_value());
    } while (cdr::decode_request(got->data(), got->size()).header.request_id !=
             10u);
    EXPECT_EQ(cdr::frame_band(got->data()), 1u);

    pair.client->close();
    pair.server->close();
}

TEST(LaneGroup, SendAfterCloseThrows) {
    GroupPair pair;
    pair.client->close();
    EXPECT_THROW(pair.client->send_frame(make_frame(1, 8, 0)),
                 net::TransportError);
    pair.server->close();
}

TEST(LaneGroup, StatsSumAcrossLanes) {
    GroupPair pair;
    pair.client->send_frame(make_frame(1, 16, 0));
    pair.client->send_frame(make_frame(2, 16, 1));
    ASSERT_TRUE(pair.server->lane(0).recv_frame().has_value());
    ASSERT_TRUE(pair.server->lane(1).recv_frame().has_value());
    // 2 payload frames + 2 handshake hellos (the acceptor reads the
    // hellos through the same lane transports, so both sides count them).
    EXPECT_EQ(pair.client->stats().frames_sent, 4u);
    EXPECT_EQ(pair.server->stats().frames_received, 4u);
    pair.client->close();
    pair.server->close();
}
