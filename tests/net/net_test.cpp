// Transports: loopback pair and TCP with GIOP framing.
#include "cdr/giop.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace compadres;

namespace {
std::vector<std::uint8_t> make_frame(std::uint32_t request_id,
                                     std::size_t payload_size) {
    cdr::RequestHeader req;
    req.request_id = request_id;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}
} // namespace

TEST(Loopback, FramesCrossInBothDirections) {
    auto [a, b] = net::make_loopback_pair();
    a->send_frame(make_frame(1, 8));
    b->send_frame(make_frame(2, 8));
    const auto at_b = b->recv_frame();
    const auto at_a = a->recv_frame();
    ASSERT_TRUE(at_b.has_value());
    ASSERT_TRUE(at_a.has_value());
    EXPECT_EQ(cdr::decode_request(at_b->data(), at_b->size()).header.request_id,
              1u);
    EXPECT_EQ(cdr::decode_request(at_a->data(), at_a->size()).header.request_id,
              2u);
}

TEST(Loopback, PreservesFrameBoundariesAndOrder) {
    auto [a, b] = net::make_loopback_pair();
    for (std::uint32_t i = 0; i < 10; ++i) a->send_frame(make_frame(i, 16 + i));
    for (std::uint32_t i = 0; i < 10; ++i) {
        const auto frame = b->recv_frame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(
            cdr::decode_request(frame->data(), frame->size()).header.request_id,
            i);
    }
}

TEST(Loopback, CloseUnblocksReceiver) {
    auto [a, b] = net::make_loopback_pair();
    std::thread closer([&a = a] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        a->close();
    });
    EXPECT_FALSE(b->recv_frame().has_value());
    closer.join();
}

TEST(Loopback, SendAfterCloseThrows) {
    auto [a, b] = net::make_loopback_pair();
    b->close();
    EXPECT_THROW(a->send_frame(make_frame(1, 4)), net::TransportError);
}

TEST(Tcp, AcceptorPicksFreePort) {
    net::TcpAcceptor acceptor(0);
    EXPECT_GT(acceptor.bound_port(), 0);
}

TEST(Tcp, ConnectSendReceive) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread(
        [&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    ASSERT_NE(server_side, nullptr);

    client->send_frame(make_frame(77, 100));
    const auto got = server_side->recv_frame();
    ASSERT_TRUE(got.has_value());
    const auto decoded = cdr::decode_request(got->data(), got->size());
    EXPECT_EQ(decoded.header.request_id, 77u);
    EXPECT_EQ(decoded.payload_len, 100u);

    // And back.
    cdr::ReplyHeader rep;
    rep.request_id = 77;
    server_side->send_frame(cdr::encode_reply(rep, nullptr, 0));
    const auto reply = client->recv_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(cdr::decode_reply(reply->data(), reply->size()).header.request_id,
              77u);
}

TEST(Tcp, LargeFrameCrossesIntact) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    std::vector<std::uint8_t> payload(512 * 1024);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    cdr::RequestHeader req;
    req.object_key = "big";
    req.operation = "op";
    client->send_frame(cdr::encode_request(req, payload.data(), payload.size()));
    const auto got = server_side->recv_frame();
    ASSERT_TRUE(got.has_value());
    const auto decoded = cdr::decode_request(got->data(), got->size());
    ASSERT_EQ(decoded.payload_len, payload.size());
    EXPECT_EQ(std::memcmp(decoded.payload, payload.data(), payload.size()), 0);
}

TEST(Tcp, PeerCloseYieldsNullopt) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    client->close();
    EXPECT_FALSE(server_side->recv_frame().has_value());
}

TEST(Tcp, ConnectToClosedPortThrows) {
    // Bind-then-close to find a port that is (very likely) not listening.
    std::uint16_t dead_port;
    {
        net::TcpAcceptor a(0);
        dead_port = a.bound_port();
    }
    EXPECT_THROW(net::tcp_connect("127.0.0.1", dead_port), net::TransportError);
}

TEST(Tcp, BadAddressThrows) {
    EXPECT_THROW(net::tcp_connect("not-an-ip", 1234), net::TransportError);
}

TEST(Tcp, ManySequentialRoundTrips) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    std::thread echo([&] {
        for (;;) {
            auto frame = server_side->recv_frame();
            if (!frame.has_value()) return;
            server_side->send_frame(*frame);
        }
    });
    for (std::uint32_t i = 0; i < 200; ++i) {
        client->send_frame(make_frame(i, 64));
        const auto back = client->recv_frame();
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(
            cdr::decode_request(back->data(), back->size()).header.request_id,
            i);
    }
    client->close();
    echo.join();
}
