// Transports: loopback pair and TCP with GIOP framing.
#include "cdr/giop.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace compadres;

namespace {
std::vector<std::uint8_t> make_frame(std::uint32_t request_id,
                                     std::size_t payload_size) {
    cdr::RequestHeader req;
    req.request_id = request_id;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}
} // namespace

TEST(Loopback, FramesCrossInBothDirections) {
    auto [a, b] = net::make_loopback_pair();
    a->send_frame(make_frame(1, 8));
    b->send_frame(make_frame(2, 8));
    const auto at_b = b->recv_frame();
    const auto at_a = a->recv_frame();
    ASSERT_TRUE(at_b.has_value());
    ASSERT_TRUE(at_a.has_value());
    EXPECT_EQ(cdr::decode_request(at_b->data(), at_b->size()).header.request_id,
              1u);
    EXPECT_EQ(cdr::decode_request(at_a->data(), at_a->size()).header.request_id,
              2u);
}

TEST(Loopback, PreservesFrameBoundariesAndOrder) {
    auto [a, b] = net::make_loopback_pair();
    for (std::uint32_t i = 0; i < 10; ++i) a->send_frame(make_frame(i, 16 + i));
    for (std::uint32_t i = 0; i < 10; ++i) {
        const auto frame = b->recv_frame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(
            cdr::decode_request(frame->data(), frame->size()).header.request_id,
            i);
    }
}

TEST(Loopback, CloseUnblocksReceiver) {
    auto [a, b] = net::make_loopback_pair();
    std::thread closer([&a = a] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        a->close();
    });
    EXPECT_FALSE(b->recv_frame().has_value());
    closer.join();
}

TEST(Loopback, SendAfterCloseThrows) {
    auto [a, b] = net::make_loopback_pair();
    b->close();
    EXPECT_THROW(a->send_frame(make_frame(1, 4)), net::TransportError);
}

TEST(Tcp, AcceptorPicksFreePort) {
    net::TcpAcceptor acceptor(0);
    EXPECT_GT(acceptor.bound_port(), 0);
}

TEST(Tcp, ConnectSendReceive) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread(
        [&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    ASSERT_NE(server_side, nullptr);

    client->send_frame(make_frame(77, 100));
    const auto got = server_side->recv_frame();
    ASSERT_TRUE(got.has_value());
    const auto decoded = cdr::decode_request(got->data(), got->size());
    EXPECT_EQ(decoded.header.request_id, 77u);
    EXPECT_EQ(decoded.payload_len, 100u);

    // And back.
    cdr::ReplyHeader rep;
    rep.request_id = 77;
    server_side->send_frame(cdr::encode_reply(rep, nullptr, 0));
    const auto reply = client->recv_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(cdr::decode_reply(reply->data(), reply->size()).header.request_id,
              77u);
}

TEST(Tcp, LargeFrameCrossesIntact) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    std::vector<std::uint8_t> payload(512 * 1024);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    cdr::RequestHeader req;
    req.object_key = "big";
    req.operation = "op";
    client->send_frame(cdr::encode_request(req, payload.data(), payload.size()));
    const auto got = server_side->recv_frame();
    ASSERT_TRUE(got.has_value());
    const auto decoded = cdr::decode_request(got->data(), got->size());
    ASSERT_EQ(decoded.payload_len, payload.size());
    EXPECT_EQ(std::memcmp(decoded.payload, payload.data(), payload.size()), 0);
}

TEST(Tcp, PeerCloseYieldsNullopt) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    client->close();
    EXPECT_FALSE(server_side->recv_frame().has_value());
}

TEST(Tcp, ConnectToClosedPortThrows) {
    // Bind-then-close to find a port that is (very likely) not listening.
    std::uint16_t dead_port;
    {
        net::TcpAcceptor a(0);
        dead_port = a.bound_port();
    }
    EXPECT_THROW(net::tcp_connect("127.0.0.1", dead_port), net::TransportError);
}

TEST(Tcp, BadAddressThrows) {
    EXPECT_THROW(net::tcp_connect("not-an-ip", 1234), net::TransportError);
}

TEST(Tcp, ManySequentialRoundTrips) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    std::thread echo([&] {
        for (;;) {
            auto frame = server_side->recv_frame();
            if (!frame.has_value()) return;
            server_side->send_frame(std::move(*frame));
        }
    });
    for (std::uint32_t i = 0; i < 200; ++i) {
        client->send_frame(make_frame(i, 64));
        const auto back = client->recv_frame();
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(
            cdr::decode_request(back->data(), back->size()).header.request_id,
            i);
    }
    client->close();
    echo.join();
}

namespace {

/// accept() one connection while a client connects; returns both ends.
std::pair<std::unique_ptr<net::Transport>, std::unique_ptr<net::Transport>>
tcp_pair(net::TcpAcceptor& acceptor, const net::TcpOptions& client_options = {}) {
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client =
        net::tcp_connect("127.0.0.1", acceptor.bound_port(), client_options);
    accept_thread.join();
    return {std::move(client), std::move(server_side)};
}

} // namespace

TEST(Tcp, OversizedFrameRejectedBeforeAllocation) {
    net::TcpOptions server_options;
    server_options.max_frame_bytes = 1024; // applies to accepted transports
    net::TcpAcceptor acceptor(0, server_options);
    auto [client, server_side] = tcp_pair(acceptor);

    client->send_frame(make_frame(1, 4096));
    EXPECT_THROW(server_side->recv_frame(), net::TransportError);
}

TEST(Tcp, TruncatedMidFrameThrows) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    // A header that promises a 100-byte body followed by only 10 bytes;
    // closing the connection leaves the receiver mid-frame.
    cdr::OutputStream out;
    out.write_raw(cdr::GiopHeader::kMagic, 4);
    out.write_octet(1);
    out.write_octet(0);
    out.write_octet(static_cast<std::uint8_t>(cdr::native_order()));
    out.write_octet(static_cast<std::uint8_t>(cdr::GiopMsgType::kRequest));
    out.write_ulong(100);
    for (int i = 0; i < 10; ++i) out.write_octet(0xAB);
    client->send_frame(out.buffer());
    client->close();
    EXPECT_THROW(server_side->recv_frame(), net::TransportError);
}

TEST(Tcp, SendToVanishedPeerThrowsInsteadOfSigpipe) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    server_side.reset(); // peer gone; the fd is closed with data unread
    // The first sends land in the socket buffer; once the RST arrives a
    // send must surface as TransportError on this thread. Under the old
    // raw write() path the process would die on SIGPIPE here.
    bool threw = false;
    try {
        for (int i = 0; i < 1000 && !threw; ++i) {
            client->send_frame(make_frame(static_cast<std::uint32_t>(i),
                                          16 * 1024));
        }
    } catch (const net::TransportError&) {
        threw = true;
    }
    EXPECT_TRUE(threw);
}

TEST(Tcp, CoalescerBatchesUnderBurst) {
    // Clamp kernel buffering on both ends: with autotuned buffers the whole
    // burst can vanish into the kernel without any sendmsg ever blocking,
    // and an unblocked coalescer legitimately flushes one frame at a time.
    net::TcpOptions bounded;
    bounded.send_buffer_bytes = 16 * 1024;
    bounded.recv_buffer_bytes = 16 * 1024;
    net::TcpAcceptor acceptor(0, bounded);
    auto [client, server_side] = tcp_pair(acceptor, bounded);

    constexpr int kSenders = 4;
    constexpr int kPerSender = 200;
    constexpr std::size_t kPayload = 4096;
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
        senders.emplace_back([&client] {
            for (int i = 0; i < kPerSender; ++i) {
                client->send_frame(make_frame(static_cast<std::uint32_t>(i),
                                              kPayload));
            }
        });
    }
    // A delayed reader lets the socket buffer fill, so senders pile into
    // the intake and drains flush multi-frame batches.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < kSenders * kPerSender; ++i) {
        ASSERT_TRUE(server_side->recv_frame().has_value());
    }
    for (auto& s : senders) s.join();

    const net::TransportStats stats = client->stats();
    EXPECT_EQ(stats.frames_sent, static_cast<std::uint64_t>(kSenders) *
                                     kPerSender);
    EXPECT_GE(stats.max_batch_frames, 2u);
    EXPECT_LT(stats.send_syscalls, stats.frames_sent);
    EXPECT_EQ(stats.frames_dropped, 0u);
}

TEST(Tcp, CloseDropsQueuedFramesDeterministically) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    // Two senders against a reader that never reads: the first blocks in
    // sendmsg once the socket buffer fills, the second fills the intake.
    std::vector<std::thread> senders;
    for (int t = 0; t < 2; ++t) {
        senders.emplace_back([&client] {
            try {
                for (int i = 0; i < 10'000; ++i) {
                    client->send_frame(
                        make_frame(static_cast<std::uint32_t>(i), 64 * 1024));
                }
            } catch (const net::TransportError&) {
                // expected: close() below fails the in-flight sends
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    client->close(); // must flush-or-drop, never hang
    for (auto& s : senders) s.join();

    const net::TransportStats stats = client->stats();
    EXPECT_GT(stats.frames_dropped, 0u);
}

TEST(Tcp, DirectPolicySurvivesReactorFlipMidSend) {
    // enter_reactor_mode can flip the fd to O_NONBLOCK while a kDirect
    // send is blocked in sendmsg: the next partial-write step then sees
    // EAGAIN. That must park the remainder for EPOLLOUT resumption (here
    // stood in for by a polling flusher thread), never poison the
    // transport as a hard send failure.
    net::TcpOptions direct;
    direct.policy = net::WritePolicy::kDirect;
    direct.send_buffer_bytes = 16 * 1024;
    direct.recv_buffer_bytes = 16 * 1024;
    net::TcpAcceptor acceptor(0, direct);
    auto [client, server_side] = tcp_pair(acceptor, direct);

    constexpr int kFrames = 32;
    std::thread sender([&client] {
        for (int i = 0; i < kFrames; ++i) {
            client->send_frame(
                make_frame(static_cast<std::uint32_t>(i), 32 * 1024));
        }
    });
    // Let the sender fill the socket and block inside sendmsg, then flip.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    net::ReactorHook* hook = client->reactor_hook();
    ASSERT_NE(hook, nullptr);
    hook->enter_reactor_mode([] {}); // writability requests polled below
    std::atomic<bool> done{false};
    std::thread flusher([&] {
        while (!done.load()) {
            hook->flush_pending_writes();
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });
    for (int i = 0; i < kFrames; ++i) {
        ASSERT_TRUE(server_side->recv_frame().has_value());
    }
    sender.join();
    done.store(true);
    flusher.join();

    // Sent-counter accounting trails the last byte reaching the peer
    // (the flusher bumps it after its sendmsg returns). Poll briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (client->stats().frames_sent <
               static_cast<std::uint64_t>(kFrames) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const net::TransportStats stats = client->stats();
    EXPECT_EQ(stats.frames_sent, static_cast<std::uint64_t>(kFrames));
    EXPECT_EQ(stats.frames_dropped, 0u);
}
