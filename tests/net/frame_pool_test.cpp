// FrameBufferPool / FrameBuffer / FrameRing — the wire allocation seam.
#include "net/frame_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace compadres;

TEST(FrameBufferPool, RecyclesStorageWithinSizeClass) {
    net::FrameBufferPool pool;
    const auto before = pool.stats();
    {
        net::FrameBuffer b = pool.acquire(256);
        EXPECT_EQ(b.size(), 256u);
        EXPECT_GE(b.capacity(), 512u); // misses reserve the full class
    } // destruction recycles
    {
        net::FrameBuffer b = pool.acquire(300); // same 512-byte class
        EXPECT_EQ(b.size(), 300u);
    } // recycles again
    const auto after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 2u);
    EXPECT_EQ(after.allocations - before.allocations, 1u);
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.recycled - before.recycled, 2u);
}

TEST(FrameBufferPool, SteadyStateHitsEveryTime) {
    net::FrameBufferPool pool;
    { net::FrameBuffer warm = pool.acquire(1000); } // prime the 4 KiB class
    const auto warm_stats = pool.stats();
    for (int i = 0; i < 100; ++i) {
        net::FrameBuffer b = pool.acquire(1000);
        b.data()[0] = static_cast<std::uint8_t>(i);
    }
    const auto after = pool.stats();
    EXPECT_EQ(after.hits - warm_stats.hits, 100u);
    EXPECT_EQ(after.allocations, warm_stats.allocations);
}

TEST(FrameBufferPool, OversizeRequestsAreNotPooled) {
    net::FrameBufferPool pool;
    { net::FrameBuffer b = pool.acquire(8 * 1024 * 1024); }
    const auto stats = pool.stats();
    EXPECT_EQ(stats.oversize, 1u);
    // Oversize storage re-enters the largest class it covers (1 MiB), so
    // even jumbo frames stop allocating after the first.
    EXPECT_EQ(stats.recycled, 1u);
}

TEST(FrameBufferPool, AdoptWrapsFilledStorageWithoutCopy) {
    net::FrameBufferPool pool;
    std::vector<std::uint8_t> storage = pool.acquire_storage(64);
    storage.assign({1, 2, 3});
    const std::uint8_t* raw = storage.data();
    net::FrameBuffer frame = pool.adopt(std::move(storage));
    EXPECT_EQ(frame.data(), raw);
    ASSERT_EQ(frame.size(), 3u);
    EXPECT_EQ(frame.data()[2], 3);
}

TEST(FrameBuffer, MoveTransfersOwnership) {
    net::FrameBufferPool pool;
    net::FrameBuffer a = pool.acquire(16);
    a.data()[0] = 42;
    net::FrameBuffer b = std::move(a);
    EXPECT_EQ(a.size(), 0u); // NOLINT(bugprone-use-after-move): post-move probe
    ASSERT_EQ(b.size(), 16u);
    EXPECT_EQ(b.data()[0], 42);
    b.release();
    EXPECT_EQ(pool.stats().recycled, 1u);
}

namespace {
struct HookLog {
    int calls = 0;
    std::uint32_t last_token = 0;
    static void hook(void* ctx, std::uint32_t token) noexcept {
        auto* log = static_cast<HookLog*>(ctx);
        ++log->calls;
        log->last_token = token;
    }
};
} // namespace

TEST(FrameBuffer, BorrowWrapsExternalStorageAndRunsHookOnce) {
    std::uint8_t arena[32] = {9, 8, 7};
    HookLog log;
    {
        net::FrameBuffer f =
            net::FrameBuffer::borrow(arena, 3, &HookLog::hook, &log, 0x42);
        EXPECT_TRUE(f.borrowed());
        EXPECT_EQ(f.data(), arena); // a view, not a copy
        ASSERT_EQ(f.size(), 3u);
        EXPECT_EQ(f.data()[0], 9);
        EXPECT_EQ(log.calls, 0); // alive: slot still pinned
        f.release();
        EXPECT_EQ(log.calls, 1);
        EXPECT_EQ(log.last_token, 0x42u);
        EXPECT_FALSE(f.borrowed()); // released: now an empty plain frame
    } // destruction must not re-run the hook
    EXPECT_EQ(log.calls, 1);
}

TEST(FrameBuffer, MoveTransfersBorrowWithoutRunningHook) {
    std::uint8_t arena[8] = {1};
    HookLog log;
    net::FrameBuffer a =
        net::FrameBuffer::borrow(arena, 8, &HookLog::hook, &log, 7);
    net::FrameBuffer b = std::move(a);
    EXPECT_EQ(log.calls, 0);
    EXPECT_FALSE(a.borrowed()); // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.borrowed());
    EXPECT_EQ(b.data(), arena);
    net::FrameBuffer c;
    c = std::move(b);
    EXPECT_EQ(log.calls, 0); // move-assign into an empty frame: no release
    c.release();
    EXPECT_EQ(log.calls, 1);
}

TEST(FrameBuffer, BorrowedResizeShrinksInPlaceGrowMaterializes) {
    std::uint8_t arena[16] = {1, 2, 3, 4, 5, 6, 7, 8};
    HookLog log;
    net::FrameBuffer f =
        net::FrameBuffer::borrow(arena, 8, &HookLog::hook, &log, 1);
    f.resize(4); // shrink: still a view
    EXPECT_TRUE(f.borrowed());
    EXPECT_EQ(f.data(), arena);
    EXPECT_EQ(log.calls, 0);
    f.resize(12); // grow: arena slot cannot extend — copy out, retire slot
    EXPECT_FALSE(f.borrowed());
    EXPECT_NE(f.data(), arena);
    EXPECT_EQ(log.calls, 1);
    ASSERT_EQ(f.size(), 12u);
    EXPECT_EQ(f.data()[3], 4); // shrunk view's bytes survived the copy
}

TEST(FrameBuffer, BorrowKeepaliveHeldUntilRelease) {
    std::uint8_t arena[4] = {};
    HookLog log;
    auto owner = std::make_shared<int>(7);
    std::weak_ptr<int> watch = owner;
    {
        net::FrameBuffer f = net::FrameBuffer::borrow(
            arena, 4, &HookLog::hook, &log, 0, owner);
        owner.reset(); // the frame is now the only thing pinning it
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired()); // frame death dropped the keepalive
    EXPECT_EQ(log.calls, 1);
}

TEST(FrameBufferPool, AcquireBatchFillsAllSlotsUnderOneLock) {
    net::FrameBufferPool pool;
    pool.prewarm(256, 4);
    const auto before = pool.stats();
    net::FrameBuffer bufs[6];
    const std::size_t hits = pool.acquire_batch(256, bufs, 6);
    EXPECT_EQ(hits, 4u); // free list had 4; the rest were fresh
    for (auto& b : bufs) {
        ASSERT_EQ(b.size(), 256u);
        b.data()[0] = 1; // storage is real and writable
    }
    const auto after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 6u);
    EXPECT_EQ(after.hits - before.hits, 4u);
    EXPECT_EQ(after.allocations - before.allocations, 2u);
}

TEST(FrameBufferPool, BorrowedStatTracksExternalFrames) {
    net::FrameBufferPool pool;
    EXPECT_EQ(pool.stats().borrowed, 0u);
    pool.note_borrowed();
    pool.note_borrowed();
    EXPECT_EQ(pool.stats().borrowed, 2u);
    // Borrowed frames never touch acquire/recycle books.
    EXPECT_EQ(pool.stats().acquires, 0u);
    EXPECT_EQ(pool.stats().recycled, 0u);
}

TEST(FrameBufferPool, ScrubOnReleaseZeroesPooledStorageOnly) {
    net::FramePoolOptions opts;
    opts.scrub_on_release = true;
    net::FrameBufferPool pool(opts);
    EXPECT_TRUE(pool.scrub_on_release());
    {
        net::FrameBuffer b = pool.acquire(64);
        std::memset(b.data(), 0xAB, 64);
    } // recycle scrubs
    net::FrameBuffer again = pool.acquire(64);
    for (std::size_t i = 0; i < 64; ++i) {
        ASSERT_EQ(again.data()[i], 0u) << "byte " << i << " leaked";
    }
    // A borrowed frame released while scrub is on must leave its (external)
    // bytes alone — they belong to the arena owner.
    std::uint8_t arena[4] = {1, 2, 3, 4};
    HookLog log;
    net::FrameBuffer::borrow(arena, 4, &HookLog::hook, &log, 0).release();
    EXPECT_EQ(arena[0], 1);
    EXPECT_EQ(log.calls, 1);
    pool.set_scrub_on_release(false);
    EXPECT_FALSE(pool.scrub_on_release());
}

// Note the declaration order throughout: a frame recycles into its home
// pool on destruction, so a ring holding frames must die before the pool
// that backs them.
TEST(FrameRing, PreservesFifoOrder) {
    net::FrameBufferPool pool;
    net::FrameRing ring(8);
    for (std::uint8_t i = 0; i < 5; ++i) {
        net::FrameBuffer f = pool.acquire(4);
        f.data()[0] = i;
        ASSERT_TRUE(ring.push(std::move(f)));
    }
    for (std::uint8_t i = 0; i < 5; ++i) {
        auto f = ring.pop();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->data()[0], i);
    }
}

TEST(FrameRing, BlockedPushUnblocksOnPop) {
    net::FrameBufferPool pool;
    net::FrameRing ring(1);
    ASSERT_TRUE(ring.push(pool.acquire(4)));
    std::thread pusher([&] { EXPECT_TRUE(ring.push(pool.acquire(4))); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(ring.pop().has_value());
    pusher.join();
    EXPECT_EQ(ring.size(), 1u);
}

TEST(FrameRing, CloseDrainsThenReturnsEmpty) {
    net::FrameBufferPool pool;
    net::FrameRing ring(4);
    ASSERT_TRUE(ring.push(pool.acquire(4)));
    ring.close();
    EXPECT_FALSE(ring.push(pool.acquire(4)));
    EXPECT_TRUE(ring.pop().has_value()); // queued frame still poppable
    EXPECT_FALSE(ring.pop().has_value());
}

TEST(FrameRing, CloseUnblocksWaitingPopper) {
    net::FrameRing ring(4);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ring.close();
    });
    EXPECT_FALSE(ring.pop().has_value());
    closer.join();
}
