// FrameBufferPool / FrameBuffer / FrameRing — the wire allocation seam.
#include "net/frame_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace compadres;

TEST(FrameBufferPool, RecyclesStorageWithinSizeClass) {
    net::FrameBufferPool pool;
    const auto before = pool.stats();
    {
        net::FrameBuffer b = pool.acquire(256);
        EXPECT_EQ(b.size(), 256u);
        EXPECT_GE(b.capacity(), 512u); // misses reserve the full class
    } // destruction recycles
    {
        net::FrameBuffer b = pool.acquire(300); // same 512-byte class
        EXPECT_EQ(b.size(), 300u);
    } // recycles again
    const auto after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 2u);
    EXPECT_EQ(after.allocations - before.allocations, 1u);
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.recycled - before.recycled, 2u);
}

TEST(FrameBufferPool, SteadyStateHitsEveryTime) {
    net::FrameBufferPool pool;
    { net::FrameBuffer warm = pool.acquire(1000); } // prime the 4 KiB class
    const auto warm_stats = pool.stats();
    for (int i = 0; i < 100; ++i) {
        net::FrameBuffer b = pool.acquire(1000);
        b.data()[0] = static_cast<std::uint8_t>(i);
    }
    const auto after = pool.stats();
    EXPECT_EQ(after.hits - warm_stats.hits, 100u);
    EXPECT_EQ(after.allocations, warm_stats.allocations);
}

TEST(FrameBufferPool, OversizeRequestsAreNotPooled) {
    net::FrameBufferPool pool;
    { net::FrameBuffer b = pool.acquire(8 * 1024 * 1024); }
    const auto stats = pool.stats();
    EXPECT_EQ(stats.oversize, 1u);
    // Oversize storage re-enters the largest class it covers (1 MiB), so
    // even jumbo frames stop allocating after the first.
    EXPECT_EQ(stats.recycled, 1u);
}

TEST(FrameBufferPool, AdoptWrapsFilledStorageWithoutCopy) {
    net::FrameBufferPool pool;
    std::vector<std::uint8_t> storage = pool.acquire_storage(64);
    storage.assign({1, 2, 3});
    const std::uint8_t* raw = storage.data();
    net::FrameBuffer frame = pool.adopt(std::move(storage));
    EXPECT_EQ(frame.data(), raw);
    ASSERT_EQ(frame.size(), 3u);
    EXPECT_EQ(frame.data()[2], 3);
}

TEST(FrameBuffer, MoveTransfersOwnership) {
    net::FrameBufferPool pool;
    net::FrameBuffer a = pool.acquire(16);
    a.data()[0] = 42;
    net::FrameBuffer b = std::move(a);
    EXPECT_EQ(a.size(), 0u); // NOLINT(bugprone-use-after-move): post-move probe
    ASSERT_EQ(b.size(), 16u);
    EXPECT_EQ(b.data()[0], 42);
    b.release();
    EXPECT_EQ(pool.stats().recycled, 1u);
}

// Note the declaration order throughout: a frame recycles into its home
// pool on destruction, so a ring holding frames must die before the pool
// that backs them.
TEST(FrameRing, PreservesFifoOrder) {
    net::FrameBufferPool pool;
    net::FrameRing ring(8);
    for (std::uint8_t i = 0; i < 5; ++i) {
        net::FrameBuffer f = pool.acquire(4);
        f.data()[0] = i;
        ASSERT_TRUE(ring.push(std::move(f)));
    }
    for (std::uint8_t i = 0; i < 5; ++i) {
        auto f = ring.pop();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->data()[0], i);
    }
}

TEST(FrameRing, BlockedPushUnblocksOnPop) {
    net::FrameBufferPool pool;
    net::FrameRing ring(1);
    ASSERT_TRUE(ring.push(pool.acquire(4)));
    std::thread pusher([&] { EXPECT_TRUE(ring.push(pool.acquire(4))); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(ring.pop().has_value());
    pusher.join();
    EXPECT_EQ(ring.size(), 1u);
}

TEST(FrameRing, CloseDrainsThenReturnsEmpty) {
    net::FrameBufferPool pool;
    net::FrameRing ring(4);
    ASSERT_TRUE(ring.push(pool.acquire(4)));
    ring.close();
    EXPECT_FALSE(ring.push(pool.acquire(4)));
    EXPECT_TRUE(ring.pop().has_value()); // queued frame still poppable
    EXPECT_FALSE(ring.pop().has_value());
}

TEST(FrameRing, CloseUnblocksWaitingPopper) {
    net::FrameRing ring(4);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ring.close();
    });
    EXPECT_FALSE(ring.pop().has_value());
    closer.join();
}
