// Reactor backend seam: the epoll and io_uring loops must be
// behaviorally identical, and the uring-only machinery — runtime
// fallback to epoll on setup failure, multishot-recv re-arm after
// provided-buffer exhaustion, frames larger than one registered chunk —
// must hold under pressure.
//
// Every cross-backend test runs value-parameterized over both backends;
// uring rungs GTEST_SKIP on kernels that deny io_uring (seccomp'd CI
// runners) so the suite stays green everywhere while exercising the
// real rings wherever they exist.
#include "cdr/giop.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "net/uring.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace compadres;

namespace {

std::vector<std::uint8_t> make_frame(std::uint32_t request_id,
                                     std::size_t payload_size) {
    cdr::RequestHeader req;
    req.request_id = request_id;
    req.object_key = "K";
    req.operation = "op";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}

std::pair<std::unique_ptr<net::Transport>, std::unique_ptr<net::Transport>>
tcp_pair(net::TcpAcceptor& acceptor,
         const net::TcpOptions& client_options = {}) {
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client =
        net::tcp_connect("127.0.0.1", acceptor.bound_port(), client_options);
    accept_thread.join();
    return {std::move(client), std::move(server_side)};
}

struct FrameSink {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t frames = 0;
    std::size_t bytes = 0;
    bool closed = false;

    net::Reactor::FrameHandler on_frame() {
        return [this](net::FrameBuffer frame) {
            std::lock_guard<std::mutex> lk(mu);
            ++frames;
            bytes += frame.size();
            cv.notify_all();
        };
    }

    net::Reactor::ClosedHandler on_closed() {
        return [this] {
            std::lock_guard<std::mutex> lk(mu);
            closed = true;
            cv.notify_all();
        };
    }

    bool wait_frames(std::size_t n, std::chrono::seconds budget =
                                        std::chrono::seconds(20)) {
        std::unique_lock<std::mutex> lk(mu);
        return cv.wait_for(lk, budget, [&] { return frames >= n; });
    }
};

class ReactorBackendTest
    : public ::testing::TestWithParam<net::ReactorBackend> {
protected:
    void SetUp() override {
        if (GetParam() == net::ReactorBackend::kUring &&
            !net::uring_available()) {
            GTEST_SKIP() << "kernel denies io_uring; uring rungs skipped";
        }
    }

    net::ReactorOptions options(std::size_t threads) const {
        net::ReactorOptions o;
        o.threads = threads;
        o.backend = GetParam();
        return o;
    }

    bool is_uring() const {
        return GetParam() == net::ReactorBackend::kUring;
    }
};

} // namespace

TEST_P(ReactorBackendTest, RoundTripsFramesAndReportsBackend) {
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(options(1));
    EXPECT_STREQ(reactor.backend_name(), is_uring() ? "uring" : "epoll");

    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());
    for (std::uint32_t i = 0; i < 50; ++i) {
        client->send_frame(make_frame(i, 256));
    }
    ASSERT_TRUE(sink.wait_frames(50));

    const net::ReactorStats rs = reactor.stats();
    EXPECT_EQ(rs.frames_assembled, 50u);
    EXPECT_EQ(rs.uring_fallbacks, 0u);
    if (is_uring()) {
        EXPECT_EQ(rs.uring_loops, 1u);
        // The headline property: receives complete in-ring, the loop
        // never issues a read() syscall.
        EXPECT_EQ(rs.read_syscalls, 0u);
    } else {
        EXPECT_EQ(rs.uring_loops, 0u);
        EXPECT_GT(rs.read_syscalls, 0u);
    }
}

TEST_P(ReactorBackendTest, LoopThreadEchoRepliesArrive) {
    // The reply path that the corked-SQE machinery carries on uring: the
    // frame handler sends on a second registered wire from the loop
    // thread. Every echo must come back through a normal blocking reader.
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::Reactor reactor(options(1));
    FrameSink sink;
    net::Transport* server = server_side.get();
    reactor.register_wire(
        *server_side,
        [&](net::FrameBuffer frame) {
            {
                std::lock_guard<std::mutex> lk(sink.mu);
                ++sink.frames;
                sink.cv.notify_all();
            }
            server->send_frame(
                std::vector<std::uint8_t>(frame.data(),
                                          frame.data() + frame.size()));
        },
        sink.on_closed());

    constexpr std::uint32_t kFrames = 64;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        client->send_frame(make_frame(i, 128));
    }
    std::uint32_t next = 0;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        auto echo = client->recv_frame();
        ASSERT_TRUE(echo.has_value());
        EXPECT_EQ(
            cdr::decode_request(echo->data(), echo->size()).header.request_id,
            next++);
    }
    ASSERT_TRUE(sink.wait_frames(kFrames));
    if (is_uring()) {
        // Loop-thread replies left as gather-send SQEs, not sendmsg.
        EXPECT_GT(reactor.stats().send_sqes, 0u);
    }
}

TEST_P(ReactorBackendTest, EnvVarSelectsBackend) {
    ::setenv("COMPADRES_REACTOR_BACKEND", is_uring() ? "uring" : "epoll", 1);
    net::Reactor reactor(net::ReactorOptions{1}); // backend = kDefault
    ::unsetenv("COMPADRES_REACTOR_BACKEND");
    EXPECT_STREQ(reactor.backend_name(), is_uring() ? "uring" : "epoll");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ReactorBackendTest,
    ::testing::Values(net::ReactorBackend::kEpoll,
                      net::ReactorBackend::kUring),
    [](const ::testing::TestParamInfo<net::ReactorBackend>& info) {
        return info.param == net::ReactorBackend::kUring ? "Uring" : "Epoll";
    });

TEST(ReactorUring, FallbackToEpollOnSetupFailure) {
    // A queue depth beyond IORING_MAX_ENTRIES makes io_uring_setup fail
    // with EINVAL (the shim deliberately omits IORING_SETUP_CLAMP), so
    // every loop must fall back to epoll — counted, still fully working.
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    // Declared after the transports: the reactor's destructor deregisters
    // whatever is still pinned, so it must go down before the wires do.
    net::ReactorOptions o;
    o.threads = 2;
    o.backend = net::ReactorBackend::kUring;
    o.uring_entries = 1u << 30;
    net::Reactor reactor(o);

    EXPECT_STREQ(reactor.backend_name(), "epoll");
    EXPECT_EQ(reactor.stats().uring_fallbacks, 2u);
    EXPECT_EQ(reactor.stats().uring_loops, 0u);

    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());
    client->send_frame(make_frame(7, 64));
    ASSERT_TRUE(sink.wait_frames(1));
}

TEST(ReactorUring, MultishotRecvRearmsAfterBufferExhaustion) {
    // One provided buffer on the whole loop and a blast of frames: the
    // multishot recv must terminate with ENOBUFS, and the loop must
    // recycle + re-arm until every frame assembles. The counter proves
    // the exhaustion path actually ran rather than the test passing by
    // never hitting it.
    if (!net::uring_available()) {
        GTEST_SKIP() << "kernel denies io_uring";
    }
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::ReactorOptions o;
    o.threads = 1;
    o.backend = net::ReactorBackend::kUring;
    o.uring_buffers = 1;
    net::Reactor reactor(o);
    ASSERT_STREQ(reactor.backend_name(), "uring");

    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    constexpr std::uint32_t kFrames = 300;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        client->send_frame(make_frame(i, 2048));
    }
    ASSERT_TRUE(sink.wait_frames(kFrames));
    EXPECT_EQ(reactor.stats().frames_assembled, kFrames);
    EXPECT_GE(reactor.stats().recv_enobufs, 1u);
}

TEST(ReactorUring, FrameLargerThanOneChunkAssembles) {
    // Provided buffers are fixed 4 KiB chunks; a frame bigger than that
    // must span several recv completions and still assemble exactly once.
    if (!net::uring_available()) {
        GTEST_SKIP() << "kernel denies io_uring";
    }
    net::TcpAcceptor acceptor(0);
    auto [client, server_side] = tcp_pair(acceptor);

    net::ReactorOptions o;
    o.threads = 1;
    o.backend = net::ReactorBackend::kUring;
    net::Reactor reactor(o);

    FrameSink sink;
    reactor.register_wire(*server_side, sink.on_frame(), sink.on_closed());

    const std::vector<std::uint8_t> big = make_frame(1, 64 * 1024);
    client->send_frame(big);
    ASSERT_TRUE(sink.wait_frames(1));
    EXPECT_EQ(sink.bytes, big.size());
}

TEST(ReactorUring, TwoWiresContendForOneBufferRing) {
    // Buffer exhaustion with several wires live: chunks stolen by wire A
    // must recycle in time for wire B's re-arm, with no frame lost on
    // either and per-wire delivery still in order (checked via bytes).
    if (!net::uring_available()) {
        GTEST_SKIP() << "kernel denies io_uring";
    }
    net::TcpAcceptor acceptor(0);
    auto [client_a, server_a] = tcp_pair(acceptor);
    auto [client_b, server_b] = tcp_pair(acceptor);

    net::ReactorOptions o;
    o.threads = 1;
    o.backend = net::ReactorBackend::kUring;
    o.uring_buffers = 2;
    net::Reactor reactor(o);

    FrameSink sink;
    reactor.register_wire(*server_a, sink.on_frame(), sink.on_closed());
    reactor.register_wire(*server_b, sink.on_frame(), sink.on_closed());

    constexpr std::uint32_t kPerWire = 150;
    std::thread blast_a([&] {
        for (std::uint32_t i = 0; i < kPerWire; ++i) {
            client_a->send_frame(make_frame(i, 1024));
        }
    });
    for (std::uint32_t i = 0; i < kPerWire; ++i) {
        client_b->send_frame(make_frame(i, 1024));
    }
    blast_a.join();

    ASSERT_TRUE(sink.wait_frames(2u * kPerWire));
    EXPECT_EQ(reactor.stats().frames_assembled, 2u * kPerWire);
}
