// XML substrate: parsing, navigation, error reporting, write round-trips.
#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace xml = compadres::xml;

TEST(Xml, ParsesSimpleElement) {
    auto root = xml::parse("<Root/>");
    EXPECT_EQ(root->name, "Root");
    EXPECT_TRUE(root->children.empty());
    EXPECT_TRUE(root->text.empty());
}

TEST(Xml, ParsesTextContent) {
    auto root = xml::parse("<Name>Server</Name>");
    EXPECT_EQ(root->text, "Server");
}

TEST(Xml, TrimsWhitespaceAroundText) {
    auto root = xml::parse("<N>\n   hello world \n</N>");
    EXPECT_EQ(root->text, "hello world");
}

TEST(Xml, ParsesNestedElements) {
    auto root = xml::parse(
        "<Component><ComponentName>Server</ComponentName>"
        "<Port><PortName>DataOut</PortName></Port></Component>");
    ASSERT_EQ(root->children.size(), 2u);
    EXPECT_EQ(root->child_text("ComponentName"), "Server");
    ASSERT_NE(root->child("Port"), nullptr);
    EXPECT_EQ(root->child("Port")->child_text("PortName"), "DataOut");
}

TEST(Xml, ChildrenNamedReturnsAllMatches) {
    auto root = xml::parse("<R><P>1</P><Q>x</Q><P>2</P><P>3</P></R>");
    const auto ports = root->children_named("P");
    ASSERT_EQ(ports.size(), 3u);
    EXPECT_EQ(ports[0]->text, "1");
    EXPECT_EQ(ports[2]->text, "3");
}

TEST(Xml, ChildTextFallback) {
    auto root = xml::parse("<R><A>v</A></R>");
    EXPECT_EQ(root->child_text("A", "d"), "v");
    EXPECT_EQ(root->child_text("Missing", "d"), "d");
}

TEST(Xml, ParsesAttributes) {
    auto root = xml::parse(R"(<Port name="P1" type='In' idx="3"/>)");
    ASSERT_NE(root->attribute("name"), nullptr);
    EXPECT_EQ(*root->attribute("name"), "P1");
    EXPECT_EQ(*root->attribute("type"), "In");
    EXPECT_EQ(*root->attribute("idx"), "3");
    EXPECT_EQ(root->attribute("missing"), nullptr);
}

TEST(Xml, ParsesXmlDeclarationAndComments) {
    auto root = xml::parse(
        "<?xml version=\"1.0\"?>\n<!-- a comment -->\n"
        "<R><!-- inner --><A>1</A></R>\n<!-- trailing -->");
    EXPECT_EQ(root->name, "R");
    EXPECT_EQ(root->child_text("A"), "1");
}

TEST(Xml, ParsesCdata) {
    auto root = xml::parse("<R><![CDATA[a < b && c > d]]></R>");
    EXPECT_EQ(root->text, "a < b && c > d");
}

TEST(Xml, DecodesEntities) {
    auto root = xml::parse("<R>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</R>");
    EXPECT_EQ(root->text, "<tag> & \"q\" 'a'");
}

TEST(Xml, DecodesNumericCharacterReferences) {
    auto root = xml::parse("<R>&#65;&#x42;</R>");
    EXPECT_EQ(root->text, "AB");
}

TEST(Xml, EntitiesInAttributes) {
    auto root = xml::parse(R"(<R v="a&amp;b"/>)");
    EXPECT_EQ(*root->attribute("v"), "a&b");
}

TEST(Xml, LineNumbersAreTracked) {
    auto root = xml::parse("<R>\n  <A/>\n  <B/>\n</R>");
    EXPECT_EQ(root->line, 1);
    EXPECT_EQ(root->child("A")->line, 2);
    EXPECT_EQ(root->child("B")->line, 3);
}

TEST(XmlErrors, MismatchedClosingTag) {
    EXPECT_THROW(xml::parse("<A><B></A></B>"), xml::XmlError);
}

TEST(XmlErrors, UnterminatedElement) {
    EXPECT_THROW(xml::parse("<A><B/>"), xml::XmlError);
}

TEST(XmlErrors, TrailingContent) {
    EXPECT_THROW(xml::parse("<A/><B/>"), xml::XmlError);
}

TEST(XmlErrors, EmptyDocument) {
    EXPECT_THROW(xml::parse(""), xml::XmlError);
    EXPECT_THROW(xml::parse("   \n  "), xml::XmlError);
}

TEST(XmlErrors, UnknownEntity) {
    EXPECT_THROW(xml::parse("<A>&bogus;</A>"), xml::XmlError);
}

TEST(XmlErrors, BadAttributeQuoting) {
    EXPECT_THROW(xml::parse("<A v=unquoted/>"), xml::XmlError);
}

TEST(XmlErrors, UnterminatedComment) {
    EXPECT_THROW(xml::parse("<A><!-- never closed </A>"), xml::XmlError);
}

TEST(XmlErrors, ReportsLineAndColumn) {
    try {
        xml::parse("<A>\n<B>\n</C>\n</A>");
        FAIL() << "expected XmlError";
    } catch (const xml::XmlError& e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos);
    }
}

TEST(XmlErrors, MissingFileThrows) {
    EXPECT_THROW(xml::parse_file("/nonexistent/path.xml"), std::runtime_error);
}

TEST(XmlWrite, RoundTripsStructure) {
    const char* doc =
        "<Application><ApplicationName>MyApp</ApplicationName>"
        "<Component><InstanceName>S</InstanceName>"
        "<Port k=\"v&amp;w\">text</Port></Component></Application>";
    auto original = xml::parse(doc);
    const std::string written = xml::write(*original);
    auto reparsed = xml::parse(written);
    EXPECT_EQ(reparsed->name, "Application");
    EXPECT_EQ(reparsed->child_text("ApplicationName"), "MyApp");
    const xml::XmlNode* port = reparsed->child("Component")->child("Port");
    ASSERT_NE(port, nullptr);
    EXPECT_EQ(port->text, "text");
    EXPECT_EQ(*port->attribute("k"), "v&w");
}

TEST(XmlWrite, EscapesSpecialCharacters) {
    xml::XmlNode node;
    node.name = "N";
    node.text = "a<b>&c";
    node.attributes.emplace_back("q", "say \"hi\" & bye");
    const std::string out = xml::write(node);
    auto reparsed = xml::parse(out);
    EXPECT_EQ(reparsed->text, "a<b>&c");
    EXPECT_EQ(*reparsed->attribute("q"), "say \"hi\" & bye");
}

TEST(Xml, ParsesThePaperListing11Shape) {
    // The CDL example from the paper (Listing 1.1), wrapped in a root.
    const char* doc = R"(
<CDL>
 <Component>
  <ComponentName>Server</ComponentName>
  <Port><PortName>DataOut</PortName><PortType>Out</PortType>
        <MessageType>String</MessageType></Port>
  <Port><PortName>DataIn</PortName><PortType>In</PortType>
        <MessageType>CustomType</MessageType></Port>
 </Component>
 <Component><ComponentName>Calculator</ComponentName></Component>
</CDL>)";
    auto root = xml::parse(doc);
    const auto comps = root->children_named("Component");
    ASSERT_EQ(comps.size(), 2u);
    EXPECT_EQ(comps[0]->child_text("ComponentName"), "Server");
    EXPECT_EQ(comps[0]->children_named("Port").size(), 2u);
}

// Deep-nesting sweep: parser must handle depth without recursion issues.
class XmlDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlDepthTest, NestedDocumentParses) {
    const int depth = GetParam();
    std::string doc;
    for (int i = 0; i < depth; ++i) doc += "<n" + std::to_string(i) + ">";
    doc += "x";
    for (int i = depth - 1; i >= 0; --i) doc += "</n" + std::to_string(i) + ">";
    auto root = xml::parse(doc);
    const xml::XmlNode* cur = root.get();
    for (int i = 1; i < depth; ++i) {
        ASSERT_EQ(cur->children.size(), 1u);
        cur = cur->children[0].get();
    }
    EXPECT_EQ(cur->text, "x");
}

INSTANTIATE_TEST_SUITE_P(Depths, XmlDepthTest,
                         ::testing::Values(1, 2, 8, 64, 256));
