// RtThread: the paper's dispatch rule assigns message priorities to pool
// threads; on an unprivileged host SCHED_FIFO degrades gracefully, which
// these tests pin down (they must pass with or without CAP_SYS_NICE).
#include "rt/clock.hpp"
#include "rt/thread.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace rt = compadres::rt;

TEST(Priority, ClampsIntoValidRange) {
    EXPECT_EQ(rt::Priority::clamped(-5).value, rt::Priority::kMin);
    EXPECT_EQ(rt::Priority::clamped(0).value, rt::Priority::kMin);
    EXPECT_EQ(rt::Priority::clamped(50).value, 50);
    EXPECT_EQ(rt::Priority::clamped(1000).value, rt::Priority::kMax);
}

TEST(RtThread, RunsBodyAndJoins) {
    std::atomic<bool> ran{false};
    {
        rt::RtThread t("test-worker", rt::Priority{10}, [&] { ran.store(true); });
        t.join();
    }
    EXPECT_TRUE(ran.load());
}

TEST(RtThread, DestructorJoins) {
    std::atomic<int> value{0};
    {
        rt::RtThread t("dtor-join", rt::Priority{10}, [&] { value.store(42); });
    }
    EXPECT_EQ(value.load(), 42);
}

TEST(RtThread, JoinIsIdempotent) {
    rt::RtThread t("double-join", rt::Priority{10}, [] {});
    t.join();
    t.join(); // must not crash or throw
    EXPECT_FALSE(t.joinable());
}

TEST(RtThread, ReportsNameAndPriority) {
    rt::RtThread t("named", rt::Priority{33}, [] {});
    EXPECT_EQ(t.name(), "named");
    EXPECT_EQ(t.priority().value, 33);
    t.join();
}

TEST(RtThread, PriorityRequestEitherGrantedOrCounted) {
    const auto denied_before = rt::rt_denied_count();
    rt::RtThread t("prio-check", rt::Priority{20}, [] {});
    t.join();
    // Either the kernel granted SCHED_FIFO (priority_applied) or the denial
    // counter moved — never silent failure.
    if (!t.priority_applied()) {
        EXPECT_GT(rt::rt_denied_count(), denied_before);
    }
}

TEST(RtThread, DefaultConstructedIsNotJoinable) {
    rt::RtThread t;
    EXPECT_FALSE(t.joinable());
}

TEST(Clock, MonotonicNeverGoesBackwards) {
    std::int64_t prev = rt::now_ns();
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t now = rt::now_ns();
        ASSERT_GE(now, prev);
        prev = now;
    }
}

TEST(Clock, BusyWaitWaitsAtLeastRequested) {
    const auto t0 = rt::now_ns();
    rt::busy_wait_ns(2'000'000); // 2 ms
    EXPECT_GE(rt::now_ns() - t0, 2'000'000);
}

TEST(Clock, SleepWaitsAtLeastRequested) {
    const auto t0 = rt::now_ns();
    rt::sleep_ns(5'000'000); // 5 ms
    EXPECT_GE(rt::now_ns() - t0, 5'000'000);
}
