// PeriodicTask: absolute-time releases, overrun accounting, clean stop.
#include "rt/periodic.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace rt = compadres::rt;

TEST(Periodic, RejectsNonPositivePeriod) {
    EXPECT_THROW(rt::PeriodicTask("bad", rt::Priority{}, 0, [] {}),
                 std::invalid_argument);
    EXPECT_THROW(rt::PeriodicTask("bad", rt::Priority{}, -5, [] {}),
                 std::invalid_argument);
}

TEST(Periodic, ReleasesRepeatedly) {
    std::atomic<int> runs{0};
    rt::PeriodicTask task("ticker", rt::Priority{}, 2'000'000 /* 2 ms */,
                          [&] { runs.fetch_add(1); });
    task.start();
    for (int i = 0; i < 200 && runs.load() < 5; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    task.stop();
    EXPECT_GE(runs.load(), 5);
    EXPECT_EQ(task.release_count(), static_cast<std::uint64_t>(runs.load()));
}

TEST(Periodic, StopHaltsReleases) {
    std::atomic<int> runs{0};
    rt::PeriodicTask task("stopper", rt::Priority{}, 1'000'000,
                          [&] { runs.fetch_add(1); });
    task.start();
    while (runs.load() < 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    task.stop();
    const int at_stop = runs.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(runs.load(), at_stop);
}

TEST(Periodic, StopIsIdempotentAndRestartable) {
    std::atomic<int> runs{0};
    rt::PeriodicTask task("restart", rt::Priority{}, 1'000'000,
                          [&] { runs.fetch_add(1); });
    task.start();
    while (runs.load() < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    task.stop();
    task.stop();
    const int first_phase = runs.load();
    task.start();
    while (runs.load() < first_phase + 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    task.stop();
    EXPECT_GE(runs.load(), first_phase + 2);
}

TEST(Periodic, StopWithoutStartIsSafe) {
    rt::PeriodicTask task("never", rt::Priority{}, 1'000'000, [] {});
    task.stop(); // no crash
}

TEST(Periodic, DestructorStops) {
    std::atomic<int> runs{0};
    {
        rt::PeriodicTask task("dtor", rt::Priority{}, 1'000'000,
                              [&] { runs.fetch_add(1); });
        task.start();
        while (runs.load() < 2) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    SUCCEED(); // destructor joined without hanging
}

TEST(Periodic, OverrunsAreCountedAndSkipped) {
    std::atomic<int> runs{0};
    // 1 ms period, 5 ms body: every release overruns several periods.
    rt::PeriodicTask task("overrunner", rt::Priority{}, 1'000'000, [&] {
        runs.fetch_add(1);
        compadres::rt::busy_wait_ns(5'000'000);
    });
    task.start();
    while (runs.load() < 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    task.stop();
    EXPECT_GE(task.overrun_count(), 3u);
    // Skip policy: releases are far fewer than elapsed/period would allow.
    EXPECT_LE(task.release_count(), 10u);
}

TEST(Periodic, WellBehavedBodyHasFewOverruns) {
    rt::PeriodicTask task("calm", rt::Priority{}, 5'000'000, [] {});
    task.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    task.stop();
    // An empty body cannot overrun by itself; on a loaded non-RT host a
    // release may still be delayed past the next boundary, which counts as
    // a miss (that is correct semantics), so allow a small number.
    EXPECT_LE(task.overrun_count(), 2u);
    EXPECT_GE(task.release_count(), 3u);
}

TEST(Periodic, ReleaseJitterIsRecorded) {
    rt::PeriodicTask task("jitter", rt::Priority{}, 2'000'000, [] {});
    task.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    task.stop();
    const auto jitter = task.release_jitter();
    EXPECT_GE(jitter.count, 5u);
    // Releases never fire before their scheduled time.
    EXPECT_GE(jitter.min, 0);
}

TEST(Periodic, PeriodIsApproximatelyHonoured) {
    std::vector<std::int64_t> stamps;
    std::mutex mu;
    rt::PeriodicTask task("spacing", rt::Priority{}, 5'000'000, [&] {
        std::lock_guard lk(mu);
        stamps.push_back(rt::now_ns());
    });
    task.start();
    while (true) {
        {
            std::lock_guard lk(mu);
            if (stamps.size() >= 8) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    task.stop();
    std::lock_guard lk(mu);
    // Individual gaps may compress when a late release is followed by an
    // on-schedule one (absolute anchoring), so the robust invariant is
    // density: between any two observed releases there can be at most
    // one release per period boundary, i.e. count - 1 <= elapsed/period + 1.
    const auto elapsed = stamps.back() - stamps.front();
    const auto max_releases = elapsed / 5'000'000 + 1;
    EXPECT_LE(static_cast<std::int64_t>(stamps.size()) - 1, max_releases);
    // And the task does make progress: not pathologically slow.
    EXPECT_LT(elapsed / static_cast<std::int64_t>(stamps.size() - 1),
              100'000'000);
}
