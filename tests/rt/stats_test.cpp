// StatsRecorder: the measurement methodology of every bench depends on
// these statistics being exactly right (median, jitter = max - min,
// nearest-rank percentiles over steady-state samples).
#include "rt/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace rt = compadres::rt;

TEST(Stats, EmptyRecorderSummarizesToZeros) {
    rt::StatsRecorder rec;
    const auto s = rec.summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.min, 0);
    EXPECT_EQ(s.max, 0);
    EXPECT_EQ(s.median, 0);
    EXPECT_EQ(s.jitter, 0);
}

TEST(Stats, SingleSample) {
    rt::StatsRecorder rec;
    rec.record(42);
    const auto s = rec.summarize();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 42);
    EXPECT_EQ(s.max, 42);
    EXPECT_EQ(s.median, 42);
    EXPECT_EQ(s.mean, 42);
    EXPECT_EQ(s.jitter, 0);
}

TEST(Stats, JitterIsRangeOfObservations) {
    // Paper §3.1: "The range of the observations, i.e., jitter".
    rt::StatsRecorder rec;
    for (const auto v : {100, 150, 125, 90, 180}) rec.record(v);
    EXPECT_EQ(rec.summarize().jitter, 180 - 90);
}

TEST(Stats, MedianOfOddCount) {
    rt::StatsRecorder rec;
    for (const auto v : {5, 1, 3}) rec.record(v);
    EXPECT_EQ(rec.summarize().median, 3);
}

TEST(Stats, MedianIsUpperOfEvenCount) {
    rt::StatsRecorder rec;
    for (const auto v : {1, 2, 3, 4}) rec.record(v);
    EXPECT_EQ(rec.summarize().median, 3);
}

TEST(Stats, MeanIsIntegerAverage) {
    rt::StatsRecorder rec;
    for (const auto v : {10, 20, 31}) rec.record(v);
    EXPECT_EQ(rec.summarize().mean, 61 / 3);
}

TEST(Stats, DiscardWarmupDropsPrefix) {
    rt::StatsRecorder rec;
    for (int i = 0; i < 10; ++i) rec.record(i);
    rec.discard_warmup(4);
    EXPECT_EQ(rec.count(), 6u);
    EXPECT_EQ(rec.summarize().min, 4);
}

TEST(Stats, DiscardWarmupMoreThanCountClears) {
    rt::StatsRecorder rec;
    rec.record(1);
    rec.discard_warmup(5);
    EXPECT_EQ(rec.count(), 0u);
}

TEST(Stats, PercentileZeroIsMin) {
    rt::StatsRecorder rec;
    for (int i = 1; i <= 100; ++i) rec.record(i);
    EXPECT_EQ(rec.percentile(0.0), 1);
}

TEST(Stats, PercentileHundredIsMax) {
    rt::StatsRecorder rec;
    for (int i = 1; i <= 100; ++i) rec.record(i);
    EXPECT_EQ(rec.percentile(100.0), 100);
}

TEST(Stats, NearestRankPercentiles) {
    rt::StatsRecorder rec;
    for (int i = 1; i <= 100; ++i) rec.record(i); // values 1..100
    EXPECT_EQ(rec.percentile(50.0), 50);
    EXPECT_EQ(rec.percentile(90.0), 90);
    EXPECT_EQ(rec.percentile(99.0), 99);
}

TEST(Stats, PercentileOutOfRangeThrows) {
    rt::StatsRecorder rec;
    rec.record(1);
    EXPECT_THROW(rec.percentile(-1.0), std::invalid_argument);
    EXPECT_THROW(rec.percentile(100.5), std::invalid_argument);
}

TEST(Stats, PercentilesIndependentOfInsertionOrder) {
    std::vector<std::int64_t> values(1000);
    std::iota(values.begin(), values.end(), 0);
    std::mt19937 rng(7);
    std::shuffle(values.begin(), values.end(), rng);
    rt::StatsRecorder rec;
    for (const auto v : values) rec.record(v);
    EXPECT_EQ(rec.percentile(50.0), 499);
    EXPECT_EQ(rec.summarize().median, 500);
    EXPECT_EQ(rec.summarize().min, 0);
    EXPECT_EQ(rec.summarize().max, 999);
}

TEST(Stats, HistogramCountsEveryBucket) {
    rt::StatsRecorder rec;
    for (int i = 0; i < 100; ++i) rec.record(i);
    const auto h = rec.histogram(0, 100, 10);
    ASSERT_EQ(h.size(), 10u);
    for (const auto count : h) EXPECT_EQ(count, 10u);
}

TEST(Stats, HistogramClampsOutliers) {
    rt::StatsRecorder rec;
    rec.record(-50);
    rec.record(500);
    const auto h = rec.histogram(0, 100, 4);
    EXPECT_EQ(h.front(), 1u);
    EXPECT_EQ(h.back(), 1u);
}

TEST(Stats, HistogramBadSpecThrows) {
    rt::StatsRecorder rec;
    EXPECT_THROW(rec.histogram(0, 100, 0), std::invalid_argument);
    EXPECT_THROW(rec.histogram(100, 100, 4), std::invalid_argument);
}

TEST(Stats, FormatRowUsesMicroseconds) {
    rt::StatsSummary s;
    s.count = 3;
    s.median = 1'500;   // 1.5 us
    s.jitter = 92'000;  // 92 us
    s.min = 1'000;
    s.max = 93'000;
    const std::string row = rt::StatsRecorder::format_row_us("Mackinac", s);
    EXPECT_NE(row.find("Mackinac"), std::string::npos);
    EXPECT_NE(row.find("median="), std::string::npos);
    EXPECT_NE(row.find("92.0us"), std::string::npos);
}

// Property sweep: for uniformly random data, summarize() must agree with a
// direct computation on the sorted sample set.
class StatsPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StatsPropertyTest, SummaryMatchesDirectComputation) {
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<std::int64_t> dist(0, 1'000'000);
    rt::StatsRecorder rec;
    std::vector<std::int64_t> values;
    const std::size_t n = 1 + GetParam() * 37 % 500;
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = dist(rng);
        values.push_back(v);
        rec.record(v);
    }
    std::sort(values.begin(), values.end());
    const auto s = rec.summarize();
    EXPECT_EQ(s.count, values.size());
    EXPECT_EQ(s.min, values.front());
    EXPECT_EQ(s.max, values.back());
    EXPECT_EQ(s.median, values[values.size() / 2]);
    EXPECT_EQ(s.jitter, values.back() - values.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));
