// Credit gate + intake queue: the single-rendezvous delivery fabric.
#include "rt/intake_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace compadres;

TEST(CreditGate, TryAcquireHonorsBudget) {
    rt::CreditGate gate(2);
    EXPECT_EQ(gate.limit(), 2u);
    EXPECT_TRUE(gate.try_acquire());
    EXPECT_TRUE(gate.try_acquire());
    EXPECT_FALSE(gate.try_acquire());
    EXPECT_EQ(gate.in_use(), 2u);
    EXPECT_EQ(gate.available(), 0u);
    gate.release();
    EXPECT_TRUE(gate.try_acquire());
    gate.release();
    gate.release();
    EXPECT_EQ(gate.in_use(), 0u);
}

TEST(CreditGate, ZeroLimitClampsToOne) {
    rt::CreditGate gate(0);
    EXPECT_EQ(gate.limit(), 1u);
    EXPECT_TRUE(gate.try_acquire());
    EXPECT_FALSE(gate.try_acquire());
}

TEST(CreditGate, AcquireBlocksUntilReleaseAndCountsStall) {
    rt::CreditGate gate(1);
    gate.acquire();
    EXPECT_EQ(gate.stall_count(), 0u); // uncontended: no stall recorded
    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
        gate.acquire(); // budget exhausted: must wait
        acquired.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(acquired.load());
    gate.release();
    waiter.join();
    EXPECT_TRUE(acquired.load());
    EXPECT_EQ(gate.stall_count(), 1u);
    gate.release();
}

TEST(CreditGate, TracksDepthHighWater) {
    rt::CreditGate gate(4);
    EXPECT_EQ(gate.depth_high_water(), 0u);
    gate.acquire();
    gate.acquire();
    gate.acquire();
    EXPECT_EQ(gate.depth_high_water(), 3u);
    gate.release();
    gate.release();
    gate.acquire();
    EXPECT_EQ(gate.depth_high_water(), 3u); // high-water, not current depth
}

TEST(CreditGate, MultiProducerStressStaysBalanced) {
    // Also the TSan workload: concurrent CAS acquires, blocking acquires,
    // and only-if-waiters wakes must race cleanly.
    rt::CreditGate gate(3);
    constexpr int kThreads = 4;
    constexpr int kIterations = 2000;
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&] {
            for (int i = 0; i < kIterations; ++i) {
                gate.acquire();
                gate.release();
            }
        });
    }
    for (auto& p : producers) p.join();
    EXPECT_EQ(gate.in_use(), 0u);
    EXPECT_LE(gate.depth_high_water(), gate.limit());
}

TEST(IntakeQueue, PopsHighestPriorityFifoAmongEquals) {
    rt::IntakeQueue<int> q;
    ASSERT_TRUE(q.push(1, 2));
    ASSERT_TRUE(q.push(2, 9));
    ASSERT_TRUE(q.push(3, 2));
    ASSERT_TRUE(q.push(4, 9));
    auto a = q.pop();
    auto b = q.pop();
    auto c = q.pop();
    auto d = q.pop();
    ASSERT_TRUE(a && b && c && d);
    EXPECT_EQ(a->first, 2); // priority 9, first in
    EXPECT_EQ(b->first, 4); // priority 9, second in
    EXPECT_EQ(c->first, 1); // priority 2, FIFO among equals
    EXPECT_EQ(d->first, 3);
    EXPECT_EQ(a->second, 9);
}

TEST(IntakeQueue, TryPopDistinguishesEmptyFromDrained) {
    rt::IntakeQueue<int> q;
    std::pair<int, int> out;
    EXPECT_EQ(q.try_pop(out), rt::IntakePop::kEmpty);
    q.push(7, 1);
    EXPECT_EQ(q.try_pop(out), rt::IntakePop::kOk);
    EXPECT_EQ(out.first, 7);
    q.push(8, 1);
    q.close();
    EXPECT_EQ(q.try_pop(out), rt::IntakePop::kOk); // backlog drains
    EXPECT_EQ(out.first, 8);
    EXPECT_EQ(q.try_pop(out), rt::IntakePop::kDrained);
    EXPECT_TRUE(q.drained());
}

TEST(IntakeQueue, PushFailsAfterClose) {
    rt::IntakeQueue<int> q;
    q.close();
    EXPECT_FALSE(q.push(1, 1));
    EXPECT_FALSE(q.pop().has_value());
}

TEST(IntakeQueue, StealOldestIfTakesLowestSequenceMatch) {
    rt::IntakeQueue<int> q;
    q.push(10, 5); // oldest even
    q.push(11, 9);
    q.push(12, 7); // newer even, higher priority than 10
    auto stolen = q.steal_oldest_if([](int v) { return v % 2 == 0; });
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(*stolen, 10); // oldest match wins regardless of priority
    EXPECT_EQ(q.size(), 2u);
    // Remaining order is still priority-correct after the re-heapify.
    EXPECT_EQ(q.pop()->first, 11);
    EXPECT_EQ(q.pop()->first, 12);
    EXPECT_FALSE(q.steal_oldest_if([](int) { return true; }).has_value());
}

TEST(IntakeQueue, CountsPushLockAcquisitions) {
    rt::IntakeQueue<int> q;
    EXPECT_EQ(q.push_lock_count(), 0u);
    for (int i = 0; i < 5; ++i) q.push(i, 0);
    EXPECT_EQ(q.push_lock_count(), 5u);
    std::pair<int, int> out;
    while (q.try_pop(out) == rt::IntakePop::kOk) {
    }
    EXPECT_EQ(q.push_lock_count(), 5u); // pops are not counted
}

TEST(IntakeQueue, CreditGatedProducersConsumersStress) {
    // The delivery-fabric shape: producers acquire a credit, push, the
    // consumer pops and releases. TSan-clean and fully balanced at the end.
    rt::CreditGate gate(8);
    rt::IntakeQueue<int> q;
    constexpr int kProducers = 3;
    constexpr int kPerProducer = 1500;
    std::atomic<int> consumed{0};
    std::thread consumer([&] {
        while (auto item = q.pop()) {
            gate.release();
            consumed.fetch_add(1);
        }
    });
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerProducer; ++i) {
                gate.acquire();
                ASSERT_TRUE(q.push(t * kPerProducer + i, i % 7));
            }
        });
    }
    for (auto& p : producers) p.join();
    while (q.size() != 0) std::this_thread::yield();
    q.close();
    consumer.join();
    EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
    EXPECT_EQ(gate.in_use(), 0u);
    EXPECT_EQ(q.push_lock_count(),
              static_cast<std::uint64_t>(kProducers * kPerProducer));
}
