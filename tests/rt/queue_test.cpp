// Bounded queues: port buffers and transports depend on their bounding,
// blocking, priority-ordering, and close semantics.
#include "rt/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rt = compadres::rt;

TEST(BoundedQueue, FifoOrder) {
    rt::BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i) ASSERT_EQ(q.push(i), rt::PushResult::kOk);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, TryPushFullReturnsFull) {
    rt::BoundedQueue<int> q(2);
    EXPECT_EQ(q.try_push(1), rt::PushResult::kOk);
    EXPECT_EQ(q.try_push(2), rt::PushResult::kOk);
    EXPECT_EQ(q.try_push(3), rt::PushResult::kFull);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
    rt::BoundedQueue<int> q(2);
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
    rt::BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_EQ(q.try_push(1), rt::PushResult::kOk);
    EXPECT_EQ(q.try_push(2), rt::PushResult::kFull);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
    rt::BoundedQueue<int> q(1);
    ASSERT_EQ(q.push(1), rt::PushResult::kOk);
    std::atomic<bool> pushed{false};
    std::thread t([&] {
        q.push(2);
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    t.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, BlockingPopWaitsForData) {
    rt::BoundedQueue<int> q(1);
    std::atomic<int> got{-1};
    std::thread t([&] { got.store(q.pop().value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(got.load(), -1);
    q.push(7);
    t.join();
    EXPECT_EQ(got.load(), 7);
}

TEST(BoundedQueue, CloseUnblocksPopWithNullopt) {
    rt::BoundedQueue<int> q(1);
    std::atomic<bool> got_nullopt{false};
    std::thread t([&] { got_nullopt.store(!q.pop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    t.join();
    EXPECT_TRUE(got_nullopt.load());
}

TEST(BoundedQueue, CloseRejectsPush) {
    rt::BoundedQueue<int> q(4);
    q.close();
    EXPECT_EQ(q.push(1), rt::PushResult::kClosed);
    EXPECT_EQ(q.try_push(1), rt::PushResult::kClosed);
}

TEST(BoundedQueue, PopDrainsAfterClose) {
    rt::BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverything) {
    rt::BoundedQueue<int> q(16);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::atomic<long> sum{0};
    std::atomic<int> received{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            for (;;) {
                auto v = q.pop();
                if (!v.has_value()) return;
                sum.fetch_add(*v);
                received.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                q.push(p * kPerProducer + i);
            }
        });
    }
    for (auto& t : producers) t.join();
    q.close();
    for (auto& t : consumers) t.join();
    const int total = kProducers * kPerProducer;
    EXPECT_EQ(received.load(), total);
    EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

TEST(PriorityQueue, HigherPriorityPopsFirst) {
    rt::PriorityBoundedQueue<std::string> q(8);
    q.push("low", 1);
    q.push("high", 9);
    q.push("mid", 5);
    EXPECT_EQ(q.pop()->first, "high");
    EXPECT_EQ(q.pop()->first, "mid");
    EXPECT_EQ(q.pop()->first, "low");
}

TEST(PriorityQueue, PopReturnsPriorityAlongside) {
    rt::PriorityBoundedQueue<int> q(4);
    q.push(42, 7);
    const auto item = q.pop();
    EXPECT_EQ(item->first, 42);
    EXPECT_EQ(item->second, 7);
}

TEST(PriorityQueue, EqualPrioritiesAreFifo) {
    rt::PriorityBoundedQueue<int> q(16);
    for (int i = 0; i < 10; ++i) q.push(i, 5);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop()->first, i);
}

TEST(PriorityQueue, MixedPrioritiesStableWithinLevel) {
    rt::PriorityBoundedQueue<int> q(16);
    q.push(1, 5);
    q.push(2, 9);
    q.push(3, 5);
    q.push(4, 9);
    EXPECT_EQ(q.pop()->first, 2);
    EXPECT_EQ(q.pop()->first, 4);
    EXPECT_EQ(q.pop()->first, 1);
    EXPECT_EQ(q.pop()->first, 3);
}

TEST(PriorityQueue, TryPushFullAndClosed) {
    rt::PriorityBoundedQueue<int> q(1);
    EXPECT_EQ(q.try_push(1, 1), rt::PushResult::kOk);
    EXPECT_EQ(q.try_push(2, 1), rt::PushResult::kFull);
    q.close();
    EXPECT_EQ(q.try_push(3, 1), rt::PushResult::kClosed);
}

TEST(PriorityQueue, CloseDrainsInPriorityOrder) {
    rt::PriorityBoundedQueue<int> q(8);
    q.push(1, 1);
    q.push(2, 2);
    q.close();
    EXPECT_EQ(q.pop()->first, 2);
    EXPECT_EQ(q.pop()->first, 1);
    EXPECT_FALSE(q.pop().has_value());
}

// Parameterized: all permutations of three priorities must pop sorted.
class PriorityOrderTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PriorityOrderTest, AlwaysPopsDescendingPriority) {
    const auto [a, b, c] = GetParam();
    rt::PriorityBoundedQueue<int> q(4);
    q.push(a, a);
    q.push(b, b);
    q.push(c, c);
    std::vector<int> out;
    for (int i = 0; i < 3; ++i) out.push_back(q.pop()->second);
    EXPECT_TRUE(std::is_sorted(out.rbegin(), out.rend()));
}

INSTANTIATE_TEST_SUITE_P(
    Permutations, PriorityOrderTest,
    ::testing::Values(std::tuple{1, 2, 3}, std::tuple{1, 3, 2},
                      std::tuple{2, 1, 3}, std::tuple{2, 3, 1},
                      std::tuple{3, 1, 2}, std::tuple{3, 2, 1}));
