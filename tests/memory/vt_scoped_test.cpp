// VTScopedMemory: the variable-time allocator the paper chose NOT to use —
// correctness of first-fit, split, coalesce, and the fragmentation
// behaviour that motivates the LT choice.
#include "memory/vt_scoped.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

namespace mem = compadres::memory;

TEST(VtScoped, AllocatesAndFrees) {
    mem::VTScopedMemory region(4096);
    void* a = region.allocate(100);
    void* b = region.allocate(200);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_GE(region.used(), 300u);
    region.free(a);
    region.free(b);
    EXPECT_EQ(region.used(), 0u);
}

TEST(VtScoped, PayloadsAreMaxAligned) {
    mem::VTScopedMemory region(4096);
    for (int i = 0; i < 5; ++i) {
        void* p = region.allocate(24);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                      alignof(std::max_align_t),
                  0u);
    }
}

TEST(VtScoped, FreedMemoryIsReusable) {
    mem::VTScopedMemory region(1024);
    void* a = region.allocate(256);
    region.free(a);
    void* b = region.allocate(256);
    EXPECT_EQ(a, b); // first fit hands back the same block
}

TEST(VtScoped, SplitLeavesRemainderUsable) {
    mem::VTScopedMemory region(4096);
    region.allocate(64);
    // The initial block was split; the remainder must still serve.
    EXPECT_NO_THROW(region.allocate(2048));
}

TEST(VtScoped, CoalescingMergesNeighbours) {
    mem::VTScopedMemory region(4096);
    void* a = region.allocate(512);
    void* b = region.allocate(512);
    void* c = region.allocate(512);
    region.free(a);
    region.free(c); // c merges with the free tail immediately
    EXPECT_EQ(region.free_block_count(), 2u); // {a} and {c+tail}
    region.free(b);                           // bridges everything
    EXPECT_EQ(region.free_block_count(), 1u);
    // And the coalesced block serves a large request.
    EXPECT_NO_THROW(region.allocate(2048));
}

TEST(VtScoped, DoubleFreeThrows) {
    mem::VTScopedMemory region(1024);
    void* a = region.allocate(64);
    region.free(a);
    EXPECT_THROW(region.free(a), mem::ScopeViolation);
}

TEST(VtScoped, FreeNullIsNoop) {
    mem::VTScopedMemory region(1024);
    EXPECT_NO_THROW(region.free(nullptr));
}

TEST(VtScoped, ExhaustionThrows) {
    mem::VTScopedMemory region(1024);
    EXPECT_THROW(region.allocate(4096), mem::RegionExhausted);
}

TEST(VtScoped, FragmentationCanStarveLargeRequests) {
    // The defining VT failure mode: enough total free bytes, but no
    // contiguous block — exactly what a bump allocator cannot suffer.
    mem::VTScopedMemory region(64 * 1024);
    std::vector<void*> blocks;
    for (;;) {
        try {
            blocks.push_back(region.allocate(512));
        } catch (const mem::RegionExhausted&) {
            break;
        }
    }
    // Free every other block: half the arena is free but shredded.
    for (std::size_t i = 0; i < blocks.size(); i += 2) {
        region.free(blocks[i]);
    }
    EXPECT_GT(region.free_block_count(), 10u);
    EXPECT_THROW(region.allocate(8 * 1024), mem::RegionExhausted);
    // A small request still fits in a fragment.
    EXPECT_NO_THROW(region.allocate(256));
}

TEST(VtScoped, EnterExitResetsArena) {
    mem::VTScopedMemory region(4096);
    region.enter();
    region.allocate(1024);
    region.allocate(1024);
    EXPECT_GT(region.used(), 0u);
    region.exit();
    EXPECT_EQ(region.used(), 0u);
    EXPECT_EQ(region.free_block_count(), 1u);
}

TEST(VtScoped, ExitWithoutEnterThrows) {
    mem::VTScopedMemory region(1024);
    EXPECT_THROW(region.exit(), mem::ScopeViolation);
}

TEST(VtScoped, OverAlignedRequestRejected) {
    mem::VTScopedMemory region(4096);
    EXPECT_THROW(region.allocate(64, 64), mem::RegionExhausted);
}

TEST(VtScoped, WritesDoNotCorruptNeighbours) {
    mem::VTScopedMemory region(16 * 1024);
    auto* a = static_cast<std::uint8_t*>(region.allocate(256));
    auto* b = static_cast<std::uint8_t*>(region.allocate(256));
    auto* c = static_cast<std::uint8_t*>(region.allocate(256));
    std::memset(a, 0xAA, 256);
    std::memset(b, 0xBB, 256);
    std::memset(c, 0xCC, 256);
    for (int i = 0; i < 256; ++i) {
        ASSERT_EQ(a[i], 0xAA);
        ASSERT_EQ(b[i], 0xBB);
        ASSERT_EQ(c[i], 0xCC);
    }
    // Freeing b while a and c hold their contents must not disturb them.
    region.free(b);
    for (int i = 0; i < 256; ++i) {
        ASSERT_EQ(a[i], 0xAA);
        ASSERT_EQ(c[i], 0xCC);
    }
}

// Property sweep: random alloc/free sequences keep the allocator
// consistent (no overlap, used() accounting exact, full coalescing back
// to one block at the end).
class VtScopedFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(VtScopedFuzzTest, RandomWorkloadStaysConsistent) {
    std::mt19937 rng(GetParam());
    mem::VTScopedMemory region(256 * 1024);
    struct Live {
        std::uint8_t* p;
        std::size_t size;
        std::uint8_t fill;
    };
    std::vector<Live> live;
    std::size_t lower_bound = 0; // sum of aligned requested sizes
    const auto aligned = [](std::size_t n) {
        const std::size_t a = alignof(std::max_align_t);
        return std::max((n + a - 1) & ~(a - 1), a);
    };
    // A block may be handed out slightly larger than requested when the
    // remainder was too small to split off.
    const std::size_t per_block_slack = 64;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng() % 2 == 0) {
            const std::size_t size = 1 + rng() % 800;
            std::uint8_t* p = nullptr;
            try {
                p = static_cast<std::uint8_t*>(region.allocate(size));
            } catch (const mem::RegionExhausted&) {
                continue;
            }
            const auto fill = static_cast<std::uint8_t>(rng());
            std::memset(p, fill, size);
            live.push_back({p, size, fill});
            lower_bound += aligned(size);
        } else {
            const std::size_t idx = rng() % live.size();
            const Live item = live[idx];
            for (std::size_t i = 0; i < item.size; ++i) {
                ASSERT_EQ(item.p[i], item.fill) << "corruption at step " << step;
            }
            region.free(item.p);
            lower_bound -= aligned(item.size);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        ASSERT_GE(region.used(), lower_bound);
        ASSERT_LE(region.used(), lower_bound + live.size() * per_block_slack);
    }
    for (const Live& item : live) region.free(item.p);
    EXPECT_EQ(region.used(), 0u);
    EXPECT_EQ(region.free_block_count(), 1u); // fully coalesced
}

INSTANTIATE_TEST_SUITE_P(Seeds, VtScopedFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));
