// MemoryRegion basics: bump allocation, alignment, exhaustion, finalizers.
#include "memory/immortal.hpp"
#include "memory/region.hpp"
#include "memory/region_allocator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace mem = compadres::memory;

TEST(Region, AllocationsAreDistinctAndInBounds) {
    mem::ImmortalMemory region(4096);
    void* a = region.allocate(64);
    void* b = region.allocate(64);
    EXPECT_NE(a, b);
    EXPECT_GE(reinterpret_cast<std::uintptr_t>(b),
              reinterpret_cast<std::uintptr_t>(a) + 64);
}

TEST(Region, RespectsAlignment) {
    mem::ImmortalMemory region(4096);
    region.allocate(1); // misalign the bump pointer
    for (const std::size_t align : {2ul, 4ul, 8ul, 16ul, 64ul}) {
        void* p = region.allocate(8, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "alignment " << align;
        region.allocate(1);
    }
}

TEST(Region, UsedGrowsWithAllocations) {
    mem::ImmortalMemory region(4096);
    EXPECT_EQ(region.used(), 0u);
    region.allocate(100);
    EXPECT_GE(region.used(), 100u);
    EXPECT_EQ(region.allocation_count(), 1u);
}

TEST(Region, ExhaustionThrowsRegionExhausted) {
    mem::ImmortalMemory region(128);
    EXPECT_THROW(region.allocate(4096), mem::RegionExhausted);
}

TEST(Region, ExhaustionMessageNamesRegion) {
    mem::ImmortalMemory region(16, "tiny");
    try {
        region.allocate(1024);
        FAIL() << "expected RegionExhausted";
    } catch (const mem::RegionExhausted& e) {
        EXPECT_NE(std::string(e.what()).find("tiny"), std::string::npos);
    }
}

TEST(Region, ExhaustedRegionStillUsableForSmallerAllocations) {
    mem::ImmortalMemory region(256);
    EXPECT_THROW(region.allocate(1024), mem::RegionExhausted);
    EXPECT_NO_THROW(region.allocate(32));
}

TEST(Region, MakeConstructsObject) {
    mem::ImmortalMemory region(4096);
    struct Point {
        int x, y;
    };
    Point* p = region.make<Point>(3, 4);
    EXPECT_EQ(p->x, 3);
    EXPECT_EQ(p->y, 4);
}

namespace {
struct DtorCounter {
    explicit DtorCounter(int* counter, int id = 0) : counter_(counter), id_(id) {}
    ~DtorCounter() {
        ++*counter_;
        if (order_ != nullptr) order_->push_back(id_);
    }
    int* counter_;
    int id_;
    std::vector<int>* order_ = nullptr;
};
} // namespace

TEST(Region, FinalizersRunOnDestruction) {
    int destroyed = 0;
    {
        mem::ImmortalMemory region(4096);
        region.make<DtorCounter>(&destroyed);
        region.make<DtorCounter>(&destroyed);
        EXPECT_EQ(destroyed, 0);
    }
    EXPECT_EQ(destroyed, 2);
}

TEST(Region, FinalizersRunInReverseAllocationOrder) {
    int destroyed = 0;
    std::vector<int> order;
    {
        mem::ImmortalMemory region(4096);
        for (int i = 0; i < 4; ++i) {
            auto* obj = region.make<DtorCounter>(&destroyed, i);
            obj->order_ = &order;
        }
    }
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Region, TriviallyDestructibleTypesRegisterNoFinalizer) {
    mem::ImmortalMemory region(256);
    const std::size_t before = region.used();
    region.make<int>(7);
    // An int plus at most alignment padding — no finalizer node (which
    // would add ~24 bytes).
    EXPECT_LE(region.used() - before, sizeof(int) + alignof(int));
}

TEST(Region, DepthOfImmortalIsZero) {
    mem::ImmortalMemory region(256);
    EXPECT_EQ(region.depth(), 0);
    EXPECT_EQ(region.parent(), nullptr);
}

TEST(Region, KindToString) {
    EXPECT_STREQ(mem::to_string(mem::RegionKind::kHeap), "heap");
    EXPECT_STREQ(mem::to_string(mem::RegionKind::kImmortal), "immortal");
    EXPECT_STREQ(mem::to_string(mem::RegionKind::kScoped), "scoped");
}

TEST(RegionAllocator, VectorAllocatesInsideRegion) {
    mem::ImmortalMemory region(64 * 1024);
    const std::size_t before = region.used();
    std::vector<int, mem::RegionAllocator<int>> v{
        mem::RegionAllocator<int>(region)};
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_GE(region.used(), before + 100 * sizeof(int));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(RegionAllocator, EqualityTracksRegionIdentity) {
    mem::ImmortalMemory a(1024), b(1024);
    mem::RegionAllocator<int> alloc_a(a), alloc_a2(a), alloc_b(b);
    EXPECT_TRUE(alloc_a == alloc_a2);
    EXPECT_FALSE(alloc_a == alloc_b);
}

TEST(RegionAllocator, RebindsAcrossTypes) {
    mem::ImmortalMemory region(4096);
    mem::RegionAllocator<int> ints(region);
    mem::RegionAllocator<double> doubles(ints);
    EXPECT_EQ(&doubles.region(), &region);
}

TEST(HeapMemory, CollectResetsArena) {
    mem::HeapMemory heap(4096);
    heap.allocate(1000);
    EXPECT_GT(heap.used(), 0u);
    heap.collect();
    EXPECT_EQ(heap.used(), 0u);
}

// Allocation-size sweep: any mix of sizes fits as long as the arithmetic
// says it should, and never overlaps.
class RegionFillTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegionFillTest, FillsWithoutOverlap) {
    const std::size_t chunk = GetParam();
    mem::ImmortalMemory region(16 * 1024);
    std::vector<std::uint8_t*> chunks;
    while (true) {
        std::uint8_t* p = nullptr;
        try {
            p = static_cast<std::uint8_t*>(region.allocate(chunk, 1));
        } catch (const mem::RegionExhausted&) {
            break;
        }
        std::memset(p, static_cast<int>(chunks.size() & 0xFF), chunk);
        chunks.push_back(p);
    }
    EXPECT_EQ(chunks.size(), 16 * 1024 / chunk);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        for (std::size_t j = 0; j < chunk; ++j) {
            ASSERT_EQ(chunks[i][j], static_cast<std::uint8_t>(i & 0xFF));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, RegionFillTest,
                         ::testing::Values(1, 2, 8, 64, 256, 1024));
