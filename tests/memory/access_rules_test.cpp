// The paper's Table 1, reproduced as a parameterized truth table.
//
// Fig. 3 structure: Heap and Immortal at the top; scoped area A entered
// from immortal; B and C siblings entered from A. A reference stored in
// region X may point into region Y iff Y outlives X: same region, heap
// (unless no-heap), immortal, or a proper ancestor scope.
#include "memory/immortal.hpp"
#include "memory/scoped.hpp"

#include <gtest/gtest.h>

namespace mem = compadres::memory;

namespace {

/// The five regions of Fig. 3, wired into the paper's shape.
struct Fig3 {
    mem::HeapMemory heap{1024, "heap"};
    mem::ImmortalMemory immortal{1024, "immortal"};
    mem::LTScopedMemory a{1024, "A"};
    mem::LTScopedMemory b{1024, "B"};
    mem::LTScopedMemory c{1024, "C"};

    Fig3() {
        a.enter(immortal);
        b.enter(a);
        c.enter(a);
    }
    ~Fig3() {
        c.exit();
        b.exit();
        a.exit();
    }

    mem::MemoryRegion& by_name(const std::string& name) {
        if (name == "heap") return heap;
        if (name == "immortal") return immortal;
        if (name == "A") return a;
        if (name == "B") return b;
        return c;
    }
};

struct Rule {
    const char* from;
    const char* to;
    bool allowed;          // with ordinary real-time threads
    bool allowed_no_heap;  // with NoHeapRealtimeThread semantics
};

// Table 1 of the paper, completed with the diagonal (same-region access is
// trivially legal) and the no-heap column from the table's caption.
constexpr Rule kTable1[] = {
    {"heap", "heap", true, false},
    {"heap", "immortal", true, true},
    {"heap", "A", false, false},
    {"heap", "B", false, false},
    {"heap", "C", false, false},
    {"immortal", "heap", true, false},
    {"immortal", "immortal", true, true},
    {"immortal", "A", false, false},
    {"immortal", "B", false, false},
    {"immortal", "C", false, false},
    {"A", "heap", true, false},
    {"A", "immortal", true, true},
    {"A", "A", true, true},
    {"A", "B", false, false},
    {"A", "C", false, false},
    {"B", "heap", true, false},
    {"B", "immortal", true, true},
    {"B", "A", true, true},
    {"B", "B", true, true},
    {"B", "C", false, false}, // sibling: the key restriction of the model
    {"C", "heap", true, false},
    {"C", "immortal", true, true},
    {"C", "A", true, true},
    {"C", "B", false, false},
    {"C", "C", true, true},
};

} // namespace

class Table1Test : public ::testing::TestWithParam<Rule> {};

TEST_P(Table1Test, MatchesPaper) {
    Fig3 fig;
    const Rule& rule = GetParam();
    mem::MemoryRegion& from = fig.by_name(rule.from);
    mem::MemoryRegion& to = fig.by_name(rule.to);
    EXPECT_EQ(mem::can_reference(from, to, /*no_heap=*/false), rule.allowed)
        << rule.from << " -> " << rule.to;
    EXPECT_EQ(mem::can_reference(from, to, /*no_heap=*/true),
              rule.allowed_no_heap)
        << rule.from << " -> " << rule.to << " (no-heap)";
}

INSTANTIATE_TEST_SUITE_P(AllCells, Table1Test, ::testing::ValuesIn(kTable1),
                         [](const ::testing::TestParamInfo<Rule>& info) {
                             return std::string(info.param.from) + "_to_" +
                                    info.param.to;
                         });

TEST(AccessRules, AssertThrowsOnIllegalReference) {
    Fig3 fig;
    EXPECT_THROW(mem::assert_can_reference(fig.b, fig.c), mem::ScopeViolation);
    EXPECT_NO_THROW(mem::assert_can_reference(fig.b, fig.a));
}

TEST(AccessRules, ViolationMessageNamesBothRegions) {
    Fig3 fig;
    try {
        mem::assert_can_reference(fig.b, fig.c);
        FAIL() << "expected ScopeViolation";
    } catch (const mem::ScopeViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'B'"), std::string::npos);
        EXPECT_NE(what.find("'C'"), std::string::npos);
    }
}

TEST(AccessRules, GrandchildMayReferenceGrandparent) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory a(1024, "A"), b(1024, "B"), c(1024, "C");
    a.enter(immortal);
    b.enter(a);
    c.enter(b);
    EXPECT_TRUE(mem::can_reference(c, a));  // ancestor
    EXPECT_FALSE(mem::can_reference(a, c)); // descendant: illegal
    c.exit();
    b.exit();
    a.exit();
}
