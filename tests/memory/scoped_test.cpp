// LTScopedMemory: entry counting, reclamation, the single-parent rule,
// and the wedge-pattern ScopeHandle.
#include "memory/immortal.hpp"
#include "memory/scoped.hpp"

#include <gtest/gtest.h>

namespace mem = compadres::memory;

TEST(Scoped, FirstEntryBindsParent) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    EXPECT_EQ(scope.parent(), nullptr);
    scope.enter(immortal);
    EXPECT_EQ(scope.parent(), &immortal);
    scope.exit();
}

TEST(Scoped, ReclaimUnbindsParent) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    scope.enter(immortal);
    scope.exit();
    EXPECT_EQ(scope.parent(), nullptr);
    EXPECT_EQ(scope.entry_count(), 0);
}

TEST(Scoped, SingleParentRuleRejectsSecondParent) {
    // Paper §2.2: "a memory region can have only one parent ... a single
    // scope cannot have two or more threads from different parent scopes
    // enter it."
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory parent_a(1024, "A");
    mem::LTScopedMemory parent_b(1024, "B");
    parent_a.enter(immortal);
    parent_b.enter(immortal);
    mem::LTScopedMemory child(1024, "child");
    child.enter(parent_a);
    EXPECT_THROW(child.enter(parent_b), mem::ScopeViolation);
    child.exit();
    parent_b.exit();
    parent_a.exit();
}

TEST(Scoped, SameParentMayEnterRepeatedly) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    scope.enter(immortal);
    scope.enter(immortal);
    EXPECT_EQ(scope.entry_count(), 2);
    scope.exit();
    EXPECT_EQ(scope.entry_count(), 1);
    EXPECT_EQ(scope.parent(), &immortal); // still live
    scope.exit();
    EXPECT_EQ(scope.entry_count(), 0);
}

TEST(Scoped, ReEntryFromScopeItselfAllowed) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    scope.enter(immortal);
    scope.enter(scope); // code running inside the scope re-enters
    EXPECT_EQ(scope.entry_count(), 2);
    scope.exit();
    scope.exit();
}

TEST(Scoped, NewParentAllowedAfterReclaim) {
    // After reclamation the scope rejoins the stack anywhere — this is what
    // lets ScopePool reuse areas under different parents.
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory parent_a(1024, "A");
    mem::LTScopedMemory parent_b(1024, "B");
    parent_a.enter(immortal);
    parent_b.enter(immortal);
    mem::LTScopedMemory child(1024, "child");
    child.enter(parent_a);
    child.exit();
    EXPECT_NO_THROW(child.enter(parent_b));
    child.exit();
    parent_b.exit();
    parent_a.exit();
}

TEST(Scoped, ExitWithoutEnterThrows) {
    mem::LTScopedMemory scope(1024);
    EXPECT_THROW(scope.exit(), mem::ScopeViolation);
}

TEST(Scoped, ReclaimRunsFinalizersAndResets) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(4096);
    int destroyed = 0;
    struct D {
        int* c;
        ~D() { ++*c; }
    };
    scope.enter(immortal);
    scope.make<D>(&destroyed);
    EXPECT_GT(scope.used(), 0u);
    scope.exit();
    EXPECT_EQ(destroyed, 1);
    EXPECT_EQ(scope.used(), 0u);
    EXPECT_EQ(scope.reclaim_count(), 1u);
}

TEST(Scoped, MemoryReusableAfterReclaim) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(256);
    for (int round = 0; round < 10; ++round) {
        scope.enter(immortal);
        scope.allocate(200); // would exhaust on the second round if leaked
        scope.exit();
    }
    EXPECT_EQ(scope.reclaim_count(), 10u);
}

TEST(Scoped, DepthFollowsNesting) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory l1(1024, "L1"), l2(1024, "L2"), l3(1024, "L3");
    l1.enter(immortal);
    l2.enter(l1);
    l3.enter(l2);
    EXPECT_EQ(l1.depth(), 1);
    EXPECT_EQ(l2.depth(), 2);
    EXPECT_EQ(l3.depth(), 3);
    EXPECT_TRUE(l3.has_ancestor(&l1));
    EXPECT_TRUE(l3.has_ancestor(&immortal));
    EXPECT_FALSE(l1.has_ancestor(&l3));
    l3.exit();
    l2.exit();
    l1.exit();
}

TEST(ScopeHandle, KeepsScopeAliveWhileHeld) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    {
        mem::ScopeHandle handle(scope, immortal);
        EXPECT_EQ(scope.entry_count(), 1);
        EXPECT_TRUE(static_cast<bool>(handle));
    }
    EXPECT_EQ(scope.entry_count(), 0);
}

TEST(ScopeHandle, MoveTransfersOwnership) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    mem::ScopeHandle a(scope, immortal);
    mem::ScopeHandle b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(scope.entry_count(), 1);
    b.release();
    EXPECT_EQ(scope.entry_count(), 0);
}

TEST(ScopeHandle, ReleaseIsIdempotent) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory scope(1024);
    mem::ScopeHandle handle(scope, immortal);
    handle.release();
    handle.release();
    EXPECT_EQ(scope.entry_count(), 0);
}

TEST(ScopeHandle, MoveAssignReleasesPrevious) {
    mem::ImmortalMemory immortal(1024);
    mem::LTScopedMemory s1(1024, "s1"), s2(1024, "s2");
    mem::ScopeHandle a(s1, immortal);
    mem::ScopeHandle b(s2, immortal);
    a = std::move(b);
    EXPECT_EQ(s1.entry_count(), 0); // released by assignment
    EXPECT_EQ(s2.entry_count(), 1);
}
