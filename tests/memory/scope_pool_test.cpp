// ScopePool: pre-created scoped areas in immortal memory, reused at
// runtime (the CCL <RTSJAttributes><ScopedPool> mechanism).
#include "memory/scope_pool.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mem = compadres::memory;

namespace {
mem::ImmortalMemory& big_immortal() {
    static mem::ImmortalMemory immortal(8 * 1024 * 1024, "test-immortal");
    return immortal;
}
} // namespace

TEST(ScopePool, CreatesRequestedCount) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 3);
    EXPECT_EQ(pool.total(), 3u);
    EXPECT_EQ(pool.available(), 3u);
    EXPECT_EQ(pool.level(), 1);
    EXPECT_EQ(pool.scope_size(), 4096u);
}

TEST(ScopePool, ControlBlocksLiveInImmortal) {
    mem::ImmortalMemory immortal(512 * 1024);
    const std::size_t before = immortal.used();
    mem::ScopePool pool(immortal, 1, 4096, 2);
    EXPECT_GT(immortal.used(), before);
}

TEST(ScopePool, AcquireReturnsDistinctScopes) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 3);
    std::set<mem::LTScopedMemory*> seen;
    for (int i = 0; i < 3; ++i) seen.insert(&pool.acquire());
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(pool.available(), 0u);
}

TEST(ScopePool, ExhaustionThrows) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 2, 4096, 1);
    pool.acquire();
    EXPECT_THROW(pool.acquire(), mem::RegionExhausted);
}

TEST(ScopePool, ReleaseMakesScopeAvailableAgain) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 1);
    mem::LTScopedMemory& scope = pool.acquire();
    pool.release(scope);
    EXPECT_EQ(&pool.acquire(), &scope); // same area reused
}

TEST(ScopePool, ReleaseOfLiveScopeThrows) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 1);
    mem::LTScopedMemory& scope = pool.acquire();
    scope.enter(immortal);
    EXPECT_THROW(pool.release(scope), mem::ScopeViolation);
    scope.exit();
    EXPECT_NO_THROW(pool.release(scope));
}

TEST(ScopePool, DoubleReleaseThrows) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 2);
    mem::LTScopedMemory& scope = pool.acquire();
    pool.release(scope);
    EXPECT_THROW(pool.release(scope), mem::ScopeViolation);
}

TEST(ScopePool, ForeignScopeRejected) {
    mem::ImmortalMemory immortal(512 * 1024);
    mem::ScopePool pool(immortal, 1, 4096, 1);
    mem::LTScopedMemory foreign(4096, "foreign");
    EXPECT_THROW(pool.release(foreign), mem::ScopeViolation);
}

TEST(ScopePool, ReusedScopeIsCleanAcrossParents) {
    // The lifecycle the ORB relies on: acquire, enter under one parent,
    // use, reclaim, release, re-acquire under a different parent.
    mem::ImmortalMemory& immortal = big_immortal();
    mem::ScopePool pool(immortal, 1, 8192, 1);
    mem::LTScopedMemory parent_a(1024, "pa"), parent_b(1024, "pb");
    parent_a.enter(immortal);
    parent_b.enter(immortal);

    mem::LTScopedMemory& s1 = pool.acquire();
    s1.enter(parent_a);
    s1.allocate(4096);
    s1.exit();
    pool.release(s1);

    mem::LTScopedMemory& s2 = pool.acquire();
    EXPECT_EQ(&s1, &s2);
    s2.enter(parent_b); // different parent: legal after reclaim
    EXPECT_EQ(s2.used(), 0u);
    EXPECT_NO_THROW(s2.allocate(8000)); // full capacity available again
    s2.exit();
    pool.release(s2);
    parent_b.exit();
    parent_a.exit();
}
