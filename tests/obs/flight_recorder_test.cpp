#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <thread>

namespace obs = compadres::obs;

namespace {

/// Serialize, then decode back. The recorder is process-global, so each
/// test clears it first and quiesces its own threads before dumping.
std::vector<obs::Event> roundtrip() {
    std::ostringstream out;
    obs::FlightRecorder::dump(out);
    const std::string bytes = out.str();
    return obs::decode_events(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

} // namespace

TEST(FlightRecorder, DisabledEmitIsANoOp) {
    obs::FlightRecorder::disable();
    obs::FlightRecorder::clear();
    obs::FlightRecorder::emit(obs::EventType::kFrameSend, 1, 2);
    EXPECT_FALSE(obs::FlightRecorder::enabled());
    for (const obs::Event& e : roundtrip()) {
        EXPECT_NE(e.type, obs::EventType::kFrameSend);
    }
}

TEST(FlightRecorder, RecordsAndDecodesEvents) {
    obs::FlightRecorder::enable(64);
    obs::FlightRecorder::clear();
    obs::FlightRecorder::emit(obs::EventType::kFrameSend, 0xABCD, 3);
    obs::FlightRecorder::emit(obs::EventType::kSpanSend, 0x1234567890ULL, 7);
    const auto events = roundtrip();
    bool saw_send = false, saw_span = false;
    for (const obs::Event& e : events) {
        if (e.type == obs::EventType::kFrameSend && e.a == 0xABCD && e.b == 3) {
            saw_send = true;
        }
        if (e.type == obs::EventType::kSpanSend && e.a == 0x1234567890ULL &&
            e.b == 7) {
            saw_span = true;
            EXPECT_NE(e.tid, 0u);
            EXPECT_GT(e.ts_ns, 0);
        }
    }
    EXPECT_TRUE(saw_send);
    EXPECT_TRUE(saw_span);
    obs::FlightRecorder::disable();
}

TEST(FlightRecorder, RingOverwritesOldestKeepingNewest) {
    obs::FlightRecorder::enable(16);
    obs::FlightRecorder::clear();
    // 100 events through a depth-16 ring: only the newest 16 survive. A
    // fresh thread guarantees a fresh ring at the just-set depth — the
    // main thread's ring may predate this test with a larger depth
    // (enable() only applies its depth to rings created after it).
    std::thread writer([] {
        for (std::uint64_t i = 0; i < 100; ++i) {
            obs::FlightRecorder::emit(obs::EventType::kCoalesceFlush, i, 0);
        }
    });
    writer.join();
    std::size_t mine = 0;
    std::uint64_t min_a = ~std::uint64_t{0};
    for (const obs::Event& e : roundtrip()) {
        if (e.type != obs::EventType::kCoalesceFlush) continue;
        ++mine;
        if (e.a < min_a) min_a = e.a;
    }
    EXPECT_LE(mine, 16u);
    EXPECT_GE(min_a, 84u); // 100 - 16
    obs::FlightRecorder::disable();
}

TEST(FlightRecorder, EachThreadGetsItsOwnRing) {
    obs::FlightRecorder::enable(64);
    obs::FlightRecorder::clear();
    std::thread t1([] {
        obs::FlightRecorder::emit(obs::EventType::kLaneFailover, 1, 0);
    });
    std::thread t2([] {
        obs::FlightRecorder::emit(obs::EventType::kLaneFailover, 2, 0);
    });
    t1.join();
    t2.join();
    std::uint32_t tid1 = 0, tid2 = 0;
    for (const obs::Event& e : roundtrip()) {
        if (e.type != obs::EventType::kLaneFailover) continue;
        if (e.a == 1) tid1 = e.tid;
        if (e.a == 2) tid2 = e.tid;
    }
    EXPECT_NE(tid1, 0u);
    EXPECT_NE(tid2, 0u);
    EXPECT_NE(tid1, tid2);
    obs::FlightRecorder::disable();
}

TEST(FlightRecorder, DumpFileRoundtrip) {
    obs::FlightRecorder::enable(64);
    obs::FlightRecorder::clear();
    obs::FlightRecorder::emit(obs::EventType::kCreditStall, 0xFEED, 0);
    const std::string path = ::testing::TempDir() + "fr_dump_test.bin";
    ASSERT_TRUE(obs::FlightRecorder::dump_file(path));
    const auto events = obs::decode_events_file(path);
    bool found = false;
    for (const obs::Event& e : events) {
        if (e.type == obs::EventType::kCreditStall && e.a == 0xFEED) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
    obs::FlightRecorder::disable();
}

TEST(FlightRecorder, DecodeRejectsGarbage) {
    const std::uint8_t junk[] = {'X', 'Y', 'Z', 'W', 0, 0, 0, 0};
    EXPECT_THROW(obs::decode_events(junk, sizeof(junk)), std::runtime_error);
    EXPECT_THROW(obs::decode_events(junk, 2), std::runtime_error);
}

TEST(FlightRecorder, ChromeTraceJsonPairsHandlerBrackets) {
    std::vector<obs::Event> events;
    obs::Event start;
    start.ts_ns = 1000;
    start.a = 0xAA;
    start.b = 1;
    start.tid = 42;
    start.type = obs::EventType::kHopHandlerStart;
    obs::Event end = start;
    end.ts_ns = 3000;
    end.type = obs::EventType::kHopHandlerEnd;
    obs::Event instant;
    instant.ts_ns = 2000;
    instant.a = 0xBB;
    instant.tid = 42;
    instant.type = obs::EventType::kSpanSend;
    events.push_back(end); // out of order on purpose: the writer sorts
    events.push_back(start);
    events.push_back(instant);
    const std::string json = obs::chrome_trace_json(events);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("span-send"), std::string::npos);
    // "B" must precede "E" after the sort.
    EXPECT_LT(json.find("\"ph\":\"B\""), json.find("\"ph\":\"E\""));
}

TEST(FlightRecorder, EventNamesAreStable) {
    EXPECT_STREQ(obs::event_name(obs::EventType::kHopEnqueue), "hop-enqueue");
    EXPECT_STREQ(obs::event_name(obs::EventType::kSpanRecv), "span-recv");
    EXPECT_STREQ(obs::event_name(obs::EventType::kNone), "none");
}
