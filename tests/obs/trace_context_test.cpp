#include "obs/trace_context.hpp"

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

namespace obs = compadres::obs;

namespace {

/// Every test leaves the process-global tracer off and the calling
/// thread's context clear.
struct TracerGuard {
    ~TracerGuard() {
        obs::Tracer::configure(-1);
        obs::Tracer::clear_current();
    }
};

} // namespace

TEST(Tracer, InactiveByDefaultAndOnSendReturnsEmpty) {
    TracerGuard guard;
    obs::Tracer::configure(-1);
    EXPECT_FALSE(obs::Tracer::active());
    const obs::TraceContext ctx = obs::Tracer::on_send();
    EXPECT_FALSE(static_cast<bool>(ctx));
    EXPECT_EQ(ctx.trace_id, 0u);
}

TEST(Tracer, ShiftZeroSamplesEverySend) {
    TracerGuard guard;
    obs::Tracer::configure(0);
    ASSERT_TRUE(obs::Tracer::active());
    obs::Tracer::clear_current();
    std::set<std::uint64_t> ids;
    for (int i = 0; i < 16; ++i) {
        obs::Tracer::clear_current();
        const obs::TraceContext ctx = obs::Tracer::on_send();
        ASSERT_TRUE(static_cast<bool>(ctx)) << "send " << i;
        EXPECT_NE(ctx.span_id, 0u);
        ids.insert(ctx.trace_id);
    }
    // Every fresh send mints a distinct trace id.
    EXPECT_EQ(ids.size(), 16u);
}

TEST(Tracer, SamplingShiftThinsFreshTraces) {
    TracerGuard guard;
    obs::Tracer::configure(3); // 1 in 8
    obs::Tracer::clear_current();
    int sampled = 0;
    for (int i = 0; i < 64; ++i) {
        obs::Tracer::clear_current();
        if (obs::Tracer::on_send()) ++sampled;
    }
    EXPECT_EQ(sampled, 8);
}

TEST(Tracer, OnSendContinuesCurrentTraceWithFreshSpan) {
    TracerGuard guard;
    obs::Tracer::configure(10); // sparse sampler: continuation must not rely on it
    const obs::TraceContext parent{0xDEADBEEF, 7};
    obs::Tracer::set_current(parent);
    const obs::TraceContext child = obs::Tracer::on_send();
    ASSERT_TRUE(static_cast<bool>(child));
    EXPECT_EQ(child.trace_id, parent.trace_id);
    EXPECT_NE(child.span_id, parent.span_id);
}

TEST(Tracer, ContextIsThreadLocal) {
    TracerGuard guard;
    obs::Tracer::configure(0);
    obs::Tracer::set_current({0x1111, 1});
    obs::TraceContext seen_on_other{};
    std::thread t([&] { seen_on_other = obs::Tracer::current(); });
    t.join();
    EXPECT_EQ(seen_on_other.trace_id, 0u);
    EXPECT_EQ(obs::Tracer::current().trace_id, 0x1111u);
}

TEST(ScopedTraceContext, InstallsAndRestores) {
    TracerGuard guard;
    obs::Tracer::set_current({0xAAAA, 1});
    {
        const obs::ScopedTraceContext scope(obs::TraceContext{0xBBBB, 2});
        EXPECT_EQ(obs::Tracer::current().trace_id, 0xBBBBu);
        EXPECT_EQ(obs::Tracer::current().span_id, 2u);
    }
    EXPECT_EQ(obs::Tracer::current().trace_id, 0xAAAAu);
}

TEST(ScopedTraceContext, EmptyContextInstallsNothing) {
    TracerGuard guard;
    obs::Tracer::set_current({0xCCCC, 3});
    {
        const obs::ScopedTraceContext scope(obs::TraceContext{});
        EXPECT_EQ(obs::Tracer::current().trace_id, 0xCCCCu);
    }
    EXPECT_EQ(obs::Tracer::current().trace_id, 0xCCCCu);
}

TEST(TraceConfig, ApplyConfiguresTracerAndRecorder) {
    TracerGuard guard;
    obs::TraceConfig cfg;
    cfg.enabled = true;
    cfg.sample_shift = 2;
    cfg.recorder = true;
    cfg.ring_depth = 32;
    obs::apply(cfg);
    EXPECT_TRUE(obs::Tracer::active());
    EXPECT_TRUE(obs::FlightRecorder::enabled());
    obs::FlightRecorder::disable();
}

TEST(TraceConfig, DefaultConfigIsANoOp) {
    TracerGuard guard;
    obs::Tracer::configure(-1);
    obs::FlightRecorder::disable();
    obs::apply(obs::TraceConfig{});
    EXPECT_FALSE(obs::Tracer::active());
    EXPECT_FALSE(obs::FlightRecorder::enabled());
}
