#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <thread>
#include <vector>

namespace obs = compadres::obs;

TEST(Counter, StripedAddsSumAcrossThreads) {
    obs::Counter c;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
    obs::Gauge g;
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.add(-50);
    EXPECT_EQ(g.value(), -8);
}

TEST(Histogram, BucketIndexIsMonotoneAndBounded) {
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        const std::size_t idx = obs::Histogram::bucket_index(v);
        EXPECT_GE(idx, prev) << "v=" << v;
        EXPECT_LT(idx, obs::Histogram::kBuckets);
        // Every value must fall at or below its bucket's upper bound, and
        // above the previous bucket's.
        EXPECT_LE(v, obs::Histogram::bucket_upper_bound(idx)) << "v=" << v;
        if (idx > 0) {
            EXPECT_GT(v, obs::Histogram::bucket_upper_bound(idx - 1))
                << "v=" << v;
        }
        prev = idx;
    }
    // The whole u64 range maps inside the table.
    EXPECT_LT(obs::Histogram::bucket_index(~std::uint64_t{0}),
              obs::Histogram::kBuckets);
}

TEST(Histogram, PercentilesTrackObservations) {
    obs::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_EQ(snap.sum, 500500u);
    // Log buckets above 4 are ~12% wide; allow that slack.
    EXPECT_GE(snap.percentile(0.5), 500u);
    EXPECT_LE(snap.percentile(0.5), 640u);
    EXPECT_GE(snap.percentile(0.99), 990u);
    EXPECT_LE(snap.percentile(0.99), 1280u);
}

TEST(MetricsRegistry, FindOrCreateAndKindMismatch) {
    obs::MetricsRegistry reg;
    obs::Counter& c1 = reg.counter("frames_total", "frames");
    obs::Counter& c2 = reg.counter("frames_total");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    EXPECT_THROW(reg.gauge("frames_total"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("frames_total"), std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusTextExposition) {
    obs::MetricsRegistry reg;
    reg.counter("msgs_total", "messages").add(7);
    reg.gauge("queue.depth").set(3);
    reg.histogram("latency_ns").observe(5);
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("# TYPE msgs_total counter"), std::string::npos);
    EXPECT_NE(text.find("msgs_total 7"), std::string::npos);
    // Dots sanitize to underscores for Prometheus.
    EXPECT_NE(text.find("queue_depth 3"), std::string::npos);
    EXPECT_NE(text.find("latency_ns_count 1"), std::string::npos);
    EXPECT_NE(text.find("latency_ns_sum 5"), std::string::npos);
    EXPECT_NE(text.find("latency_ns_bucket"), std::string::npos);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
    obs::MetricsRegistry reg;
    reg.counter("sent").add(2);
    reg.histogram("rtt").observe(10);
    reg.add_source("bridge", [] {
        return std::vector<obs::SourceSample>{{"pool_hits", 9}};
    });
    const std::string json = reg.json_snapshot();
    EXPECT_NE(json.find("\"benchmark\": \"metrics_snapshot\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sent\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"bridge_pool_hits\": 9"), std::string::npos);
    EXPECT_NE(json.find("\"rtt\""), std::string::npos);
}

TEST(MetricsRegistry, SourceRemovalStopsSampling) {
    obs::MetricsRegistry reg;
    int calls = 0;
    const std::uint64_t token = reg.add_source("src", [&] {
        ++calls;
        return std::vector<obs::SourceSample>{{"n", 1}};
    });
    (void)reg.json_snapshot();
    EXPECT_EQ(calls, 1);
    reg.remove_source(token);
    (void)reg.json_snapshot();
    EXPECT_EQ(calls, 1);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
    EXPECT_EQ(&obs::MetricsRegistry::global(), &obs::MetricsRegistry::global());
}

TEST(SanitizeMetricName, ReplacesIllegalChars) {
    EXPECT_EQ(obs::sanitize_metric_name("a.b-c d"), "a_b_c_d");
    EXPECT_EQ(obs::sanitize_metric_name("ok_name:x9"), "ok_name:x9");
}
