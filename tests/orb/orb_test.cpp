// Compadres ORB end-to-end: the Fig. 10 component structure carrying real
// GIOP traffic over loopback and TCP.
#include "orb/client_orb.hpp"
#include "orb/server_orb.hpp"

#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

orb::Servant echo_servant() {
    return [](const std::string&, const std::uint8_t* payload, std::size_t len,
              std::vector<std::uint8_t>& reply) {
        reply.assign(payload, payload + len);
        return true;
    };
}

/// Wires a ServerOrb and ClientOrb across an in-process loopback.
struct LoopbackPair {
    orb::ServerOrb server;
    std::unique_ptr<orb::ClientOrb> client;

    LoopbackPair() {
        auto [client_wire, server_wire] = net::make_loopback_pair();
        server.attach(std::move(server_wire));
        client = std::make_unique<orb::ClientOrb>(std::move(client_wire));
    }
};

} // namespace

TEST(CompadresOrb, EchoRoundTrip) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {10, 20, 30};
    const auto reply =
        pair.client->invoke("Echo", "echo", payload, sizeof(payload));
    EXPECT_EQ(reply, std::vector<std::uint8_t>({10, 20, 30}));
}

TEST(CompadresOrb, ComponentStructureMatchesFig10) {
    LoopbackPair pair;
    // Client: Orb (immortal) > Transport (L1) > MessageProcessing (L2).
    auto& capp = pair.client->application();
    EXPECT_EQ(capp.component("Orb").level(), 0);
    EXPECT_EQ(capp.component("Transport").level(), 1);
    EXPECT_EQ(capp.component("MessageProcessing").level(), 2);
    EXPECT_EQ(capp.component("Transport").parent(), &capp.component("Orb"));
    EXPECT_EQ(capp.component("MessageProcessing").parent(),
              &capp.component("Transport"));
    // Server: Orb > POA (L1) > Transport (L2) > RequestProcessing (L3).
    auto& sapp = pair.server.application();
    EXPECT_EQ(sapp.component("Poa").level(), 1);
    EXPECT_EQ(sapp.component("ServerTransport").level(), 2);
    EXPECT_EQ(sapp.component("RequestProcessing").level(), 3);
}

TEST(CompadresOrb, CalculatorServantDispatchesByOperation) {
    LoopbackPair pair;
    pair.server.register_servant(
        "Calc", [](const std::string& op, const std::uint8_t* payload,
                   std::size_t len, std::vector<std::uint8_t>& reply) {
            if (len != 2) return false;
            std::uint8_t result = 0;
            if (op == "add") result = payload[0] + payload[1];
            else if (op == "mul") result = payload[0] * payload[1];
            else return false;
            reply.push_back(result);
            return true;
        });
    const std::uint8_t args[] = {6, 7};
    EXPECT_EQ(pair.client->invoke("Calc", "add", args, 2).at(0), 13);
    EXPECT_EQ(pair.client->invoke("Calc", "mul", args, 2).at(0), 42);
}

TEST(CompadresOrb, UnknownObjectKeyRaisesOrbError) {
    LoopbackPair pair;
    const std::uint8_t payload[] = {1};
    EXPECT_THROW(pair.client->invoke("NoSuchObject", "op", payload, 1),
                 orb::OrbError);
}

TEST(CompadresOrb, UserExceptionSurfacesAsOrbError) {
    LoopbackPair pair;
    pair.server.register_servant(
        "Failing", [](const std::string&, const std::uint8_t*, std::size_t,
                      std::vector<std::uint8_t>&) { return false; });
    const std::uint8_t payload[] = {1};
    EXPECT_THROW(pair.client->invoke("Failing", "op", payload, 1),
                 orb::OrbError);
}

TEST(CompadresOrb, OrbRecoversAfterFailedInvocation) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {5};
    EXPECT_THROW(pair.client->invoke("Ghost", "op", payload, 1), orb::OrbError);
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 5);
}

TEST(CompadresOrb, SequentialRequestsKeepCorrelation) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    for (std::uint8_t i = 0; i < 100; ++i) {
        const std::uint8_t payload[] = {i};
        const auto reply = pair.client->invoke("Echo", "echo", payload, 1);
        ASSERT_EQ(reply.at(0), i);
    }
}

TEST(CompadresOrb, PayloadSizesUpToFig11Maximum) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    for (const std::size_t size : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        std::vector<std::uint8_t> payload(size);
        for (std::size_t i = 0; i < size; ++i) {
            payload[i] = static_cast<std::uint8_t>(i * 7);
        }
        const auto reply =
            pair.client->invoke("Echo", "echo", payload.data(), size);
        ASSERT_EQ(reply, payload) << "size " << size;
    }
}

TEST(CompadresOrb, OversizedPayloadRejectedClientSide) {
    LoopbackPair pair;
    std::vector<std::uint8_t> huge(orb::OrbRequest::kPayloadCapacity + 1);
    EXPECT_THROW(pair.client->invoke("Echo", "echo", huge.data(), huge.size()),
                 orb::OrbError);
}

TEST(CompadresOrb, WorksOverRealTcp) {
    net::TcpAcceptor acceptor(0);
    orb::ServerOrb server;
    server.register_servant("Echo", echo_servant());
    std::thread accept_thread([&] {
        auto conn = acceptor.accept();
        ASSERT_NE(conn, nullptr);
        server.attach(std::move(conn));
    });
    auto wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    orb::ClientOrb client(std::move(wire));
    const std::uint8_t payload[] = {0xAA, 0xBB};
    EXPECT_EQ(client.invoke("Echo", "echo", payload, 2),
              std::vector<std::uint8_t>({0xAA, 0xBB}));
}

TEST(CompadresOrb, TwoClientsOneServer) {
    orb::ServerOrb server;
    server.register_servant("Echo", echo_servant());
    auto [wire_a_client, wire_a_server] = net::make_loopback_pair();
    auto [wire_b_client, wire_b_server] = net::make_loopback_pair();
    server.attach(std::move(wire_a_server));
    server.attach(std::move(wire_b_server));
    orb::ClientOrb client_a(std::move(wire_a_client));
    orb::ClientOrb client_b(std::move(wire_b_client));
    for (std::uint8_t i = 0; i < 20; ++i) {
        const std::uint8_t pa[] = {static_cast<std::uint8_t>(i)};
        const std::uint8_t pb[] = {static_cast<std::uint8_t>(100 + i)};
        ASSERT_EQ(client_a.invoke("Echo", "echo", pa, 1).at(0), i);
        ASSERT_EQ(client_b.invoke("Echo", "echo", pb, 1).at(0), 100 + i);
    }
}

TEST(CompadresOrb, CleanShutdownWhileIdle) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {1};
    pair.client->invoke("Echo", "echo", payload, 1);
    pair.server.shutdown(); // must not hang or crash
}

TEST(CompadresOrb, OnewayInvocationDeliversWithoutReply) {
    LoopbackPair pair;
    std::mutex mu;
    std::condition_variable cv;
    int calls = 0;
    pair.server.register_servant(
        "Logger", [&](const std::string&, const std::uint8_t*, std::size_t,
                      std::vector<std::uint8_t>&) {
            {
                std::lock_guard lk(mu);
                ++calls;
            }
            cv.notify_all();
            return true;
        });
    const std::uint8_t payload[] = {1, 2};
    for (int i = 0; i < 5; ++i) {
        pair.client->invoke_oneway("Logger", "log", payload, 2);
    }
    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::milliseconds(2000),
                            [&] { return calls >= 5; }));
    EXPECT_EQ(calls, 5);
}

TEST(CompadresOrb, OnewayThenTwowayStaysCorrelated) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    pair.server.register_servant(
        "Sink", [](const std::string&, const std::uint8_t*, std::size_t,
                   std::vector<std::uint8_t>&) { return true; });
    const std::uint8_t payload[] = {42};
    pair.client->invoke_oneway("Sink", "drop", payload, 1);
    // The two-way call right after must get ITS reply, not confusion from
    // the oneway (which produced no reply frame at all).
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 42);
}

TEST(CompadresOrb, InvokeWithinMeetsDeadlineNormally) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {7};
    const auto reply = pair.client->invoke_within(
        "Echo", "echo", payload, 1, std::chrono::milliseconds(2000));
    EXPECT_EQ(reply.at(0), 7);
}

TEST(CompadresOrb, InvokeWithinTimesOutWhenNoServer) {
    // A wire whose peer never reads or replies: the deadline must fire and
    // surface as OrbTimeout, and teardown must stay clean.
    auto [client_wire, server_wire] = net::make_loopback_pair();
    orb::ClientOrb client(std::move(client_wire));
    const std::uint8_t payload[] = {1};
    EXPECT_THROW(client.invoke_within("Echo", "echo", payload, 1,
                                      std::chrono::milliseconds(100)),
                 orb::OrbTimeout);
    server_wire->close(); // unblocks the pipeline's pending recv
}

TEST(CompadresOrb, LateReplyAfterTimeoutIsAbsorbed) {
    // Server replies slower than the deadline; the late reply must not
    // corrupt the next invocation.
    LoopbackPair pair;
    pair.server.register_servant(
        "Slow", [](const std::string&, const std::uint8_t* p, std::size_t n,
                   std::vector<std::uint8_t>& reply) {
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            reply.assign(p, p + n);
            return true;
        });
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {9};
    EXPECT_THROW(pair.client->invoke_within("Slow", "op", payload, 1,
                                            std::chrono::milliseconds(50)),
                 orb::OrbTimeout);
    // After the slow reply drains, a normal call works and is correlated.
    const auto reply = pair.client->invoke("Echo", "echo", payload, 1);
    EXPECT_EQ(reply.at(0), 9);
}

TEST(CompadresOrb, DestructionWithStuckRequestDoesNotHang) {
    auto [client_wire, server_wire] = net::make_loopback_pair();
    {
        orb::ClientOrb client(std::move(client_wire));
        const std::uint8_t payload[] = {1};
        EXPECT_THROW(client.invoke_within("Echo", "echo", payload, 1,
                                          std::chrono::milliseconds(50)),
                     orb::OrbTimeout);
        // The client is destroyed with the request still unanswered; its
        // destructor must close the wire and tear down without hanging.
    }
    SUCCEED();
}

TEST(CompadresOrb, PingReportsObjectPresence) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    EXPECT_TRUE(pair.client->ping("Echo"));
    EXPECT_FALSE(pair.client->ping("Ghost"));
    // Invocations still work after probes (correlation intact).
    const std::uint8_t payload[] = {4};
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 4);
}
