// RTZen-style baseline ORB: identical observable behaviour to the
// Compadres ORB (same wire format, same servants), hand-coded internals.
#include "rtzen/rtzen.hpp"

#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace compadres;

namespace {

orb::Servant echo_servant() {
    return [](const std::string&, const std::uint8_t* payload, std::size_t len,
              std::vector<std::uint8_t>& reply) {
        reply.assign(payload, payload + len);
        return true;
    };
}

struct LoopbackPair {
    rtzen::RtzenServerOrb server;
    std::unique_ptr<rtzen::RtzenClientOrb> client;

    LoopbackPair() {
        auto [client_wire, server_wire] = net::make_loopback_pair();
        server.attach(std::move(server_wire));
        client = std::make_unique<rtzen::RtzenClientOrb>(std::move(client_wire));
    }
};

} // namespace

TEST(RtzenOrb, EchoRoundTrip) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {1, 2, 3};
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 3),
              std::vector<std::uint8_t>({1, 2, 3}));
}

TEST(RtzenOrb, UnknownObjectThrows) {
    LoopbackPair pair;
    const std::uint8_t payload[] = {1};
    EXPECT_THROW(pair.client->invoke("Ghost", "op", payload, 1),
                 rtzen::RtzenError);
}

TEST(RtzenOrb, UserExceptionThrows) {
    LoopbackPair pair;
    pair.server.register_servant(
        "Failing", [](const std::string&, const std::uint8_t*, std::size_t,
                      std::vector<std::uint8_t>&) { return false; });
    const std::uint8_t payload[] = {1};
    EXPECT_THROW(pair.client->invoke("Failing", "op", payload, 1),
                 rtzen::RtzenError);
}

TEST(RtzenOrb, RecoverableAfterFailure) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    const std::uint8_t payload[] = {9};
    EXPECT_THROW(pair.client->invoke("Ghost", "op", payload, 1),
                 rtzen::RtzenError);
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 9);
}

TEST(RtzenOrb, SequentialCorrelation) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    for (std::uint8_t i = 0; i < 100; ++i) {
        const std::uint8_t payload[] = {i};
        ASSERT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), i);
    }
}

TEST(RtzenOrb, Fig11PayloadSizes) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    for (const auto size : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        std::vector<std::uint8_t> payload(size);
        for (std::size_t i = 0; i < size; ++i) {
            payload[i] = static_cast<std::uint8_t>(i * 13);
        }
        ASSERT_EQ(pair.client->invoke("Echo", "echo", payload.data(), size),
                  payload)
            << "size " << size;
    }
}

TEST(RtzenOrb, WorksOverRealTcp) {
    net::TcpAcceptor acceptor(0);
    rtzen::RtzenServerOrb server;
    server.register_servant("Echo", echo_servant());
    std::thread accept_thread([&] {
        auto conn = acceptor.accept();
        ASSERT_NE(conn, nullptr);
        server.attach(std::move(conn));
    });
    auto wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    rtzen::RtzenClientOrb client(std::move(wire));
    const std::uint8_t payload[] = {0x42};
    EXPECT_EQ(client.invoke("Echo", "echo", payload, 1).at(0), 0x42);
}

TEST(RtzenOrb, BehavesIdenticallyToCompadresOrbOnTheWire) {
    // Interop: the hand-coded client must be able to talk to a servant
    // registered behind the *component* server, proving the two ORBs share
    // one wire format (the premise of the Fig. 11 comparison).
    // (Included here to pin the protocol; the reverse direction is covered
    // by the integration suite.)
    LoopbackPair pair;
    pair.server.register_servant(
        "Upper", [](const std::string&, const std::uint8_t* payload,
                    std::size_t len, std::vector<std::uint8_t>& reply) {
            for (std::size_t i = 0; i < len; ++i) {
                reply.push_back(static_cast<std::uint8_t>(
                    std::toupper(static_cast<int>(payload[i]))));
            }
            return true;
        });
    const std::string text = "rtzen";
    const auto reply = pair.client->invoke(
        "Upper", "up", reinterpret_cast<const std::uint8_t*>(text.data()),
        text.size());
    EXPECT_EQ(std::string(reply.begin(), reply.end()), "RTZEN");
}

TEST(RtzenOrb, ShutdownIdempotent) {
    LoopbackPair pair;
    pair.server.shutdown();
    pair.server.shutdown();
}

TEST(RtzenOrb, AttachAfterShutdownThrows) {
    rtzen::RtzenServerOrb server;
    server.shutdown();
    auto [a, b] = net::make_loopback_pair();
    EXPECT_THROW(server.attach(std::move(b)), rtzen::RtzenError);
}

TEST(RtzenOrb, OnewayInvocationDelivers) {
    LoopbackPair pair;
    std::mutex mu;
    std::condition_variable cv;
    int calls = 0;
    pair.server.register_servant(
        "Logger", [&](const std::string&, const std::uint8_t*, std::size_t,
                      std::vector<std::uint8_t>&) {
            {
                std::lock_guard lk(mu);
                ++calls;
            }
            cv.notify_all();
            return true;
        });
    const std::uint8_t payload[] = {3};
    pair.client->invoke_oneway("Logger", "log", payload, 1);
    pair.client->invoke_oneway("Logger", "log", payload, 1);
    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::milliseconds(2000),
                            [&] { return calls >= 2; }));
}

TEST(RtzenOrb, OnewayThenTwowayStaysCorrelated) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    pair.server.register_servant(
        "Sink", [](const std::string&, const std::uint8_t*, std::size_t,
                   std::vector<std::uint8_t>&) { return true; });
    const std::uint8_t payload[] = {5};
    pair.client->invoke_oneway("Sink", "drop", payload, 1);
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 5);
}

TEST(RtzenOrb, PingReportsObjectPresence) {
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    EXPECT_TRUE(pair.client->ping("Echo"));
    EXPECT_FALSE(pair.client->ping("Ghost"));
    const std::uint8_t payload[] = {4};
    EXPECT_EQ(pair.client->invoke("Echo", "echo", payload, 1).at(0), 4);
}

TEST(CrossOrbLocate, RtzenPingAgainstCompadresServerInterops) {
    // Covered fully in the integration suite for invocations; pin the
    // locate path here too (shared wire format).
    LoopbackPair pair;
    pair.server.register_servant("Echo", echo_servant());
    EXPECT_TRUE(pair.client->ping("Echo"));
}
