// CDR marshalling: alignment, round-trips, byte order, bounds checking.
#include "cdr/cdr.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace cdr = compadres::cdr;

TEST(CdrOutput, PrimitivesRoundTrip) {
    cdr::OutputStream out;
    out.write_octet(0xAB);
    out.write_boolean(true);
    out.write_char('Z');
    out.write_short(-1234);
    out.write_ushort(54321);
    out.write_long(-123456789);
    out.write_ulong(3'000'000'000u);
    out.write_longlong(-9'000'000'000'000'000'000LL);
    out.write_ulonglong(18'000'000'000'000'000'000ULL);
    out.write_float(3.25f);
    out.write_double(-2.5e100);

    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_octet(), 0xAB);
    EXPECT_TRUE(in.read_boolean());
    EXPECT_EQ(in.read_char(), 'Z');
    EXPECT_EQ(in.read_short(), -1234);
    EXPECT_EQ(in.read_ushort(), 54321);
    EXPECT_EQ(in.read_long(), -123456789);
    EXPECT_EQ(in.read_ulong(), 3'000'000'000u);
    EXPECT_EQ(in.read_longlong(), -9'000'000'000'000'000'000LL);
    EXPECT_EQ(in.read_ulonglong(), 18'000'000'000'000'000'000ULL);
    EXPECT_EQ(in.read_float(), 3.25f);
    EXPECT_EQ(in.read_double(), -2.5e100);
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(CdrOutput, NaturalAlignmentInserted) {
    cdr::OutputStream out;
    out.write_octet(1);    // offset 0
    out.write_long(2);     // must pad to offset 4
    EXPECT_EQ(out.size(), 8u);
    EXPECT_EQ(out.buffer()[1], 0); // padding bytes zeroed
    out.write_octet(3);    // offset 8
    out.write_longlong(4); // pads to 16
    EXPECT_EQ(out.size(), 24u);
}

TEST(CdrInput, AlignmentSkipsPadding) {
    cdr::OutputStream out;
    out.write_octet(7);
    out.write_long(42);
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_octet(), 7);
    EXPECT_EQ(in.read_long(), 42); // aligns to 4 internally
}

TEST(CdrString, RoundTrip) {
    cdr::OutputStream out;
    out.write_string("hello CORBA");
    out.write_string("");
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_string(), "hello CORBA");
    EXPECT_EQ(in.read_string(), "");
}

TEST(CdrString, LengthIncludesNul) {
    cdr::OutputStream out;
    out.write_string("abc");
    // ulong length (4) + "abc\0" (4)
    EXPECT_EQ(out.size(), 8u);
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_ulong(), 4u);
}

TEST(CdrOctetSeq, ViewIsZeroCopy) {
    cdr::OutputStream out;
    const std::uint8_t data[] = {9, 8, 7, 6};
    out.write_octet_seq(data, sizeof(data));
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    const auto [ptr, len] = in.read_octet_seq_view();
    EXPECT_EQ(len, 4u);
    EXPECT_EQ(ptr, out.buffer().data() + 4); // points into the frame
    EXPECT_EQ(ptr[0], 9);
}

TEST(CdrSwapped, ReaderMakesRight) {
    // Encode in the non-native order; the reader must swap.
    const cdr::ByteOrder foreign =
        cdr::native_order() == cdr::ByteOrder::kLittleEndian
            ? cdr::ByteOrder::kBigEndian
            : cdr::ByteOrder::kLittleEndian;
    cdr::OutputStream out(foreign);
    out.write_ulong(0x01020304u);
    out.write_ushort(0xA0B0);
    out.write_double(1234.5678);
    cdr::InputStream in(out.buffer().data(), out.buffer().size(), foreign);
    EXPECT_EQ(in.read_ulong(), 0x01020304u);
    EXPECT_EQ(in.read_ushort(), 0xA0B0);
    EXPECT_EQ(in.read_double(), 1234.5678);
}

TEST(CdrSwapped, WrongOrderAssumptionGivesSwappedValue) {
    cdr::OutputStream out; // native
    out.write_ulong(0x01020304u);
    const cdr::ByteOrder foreign =
        cdr::native_order() == cdr::ByteOrder::kLittleEndian
            ? cdr::ByteOrder::kBigEndian
            : cdr::ByteOrder::kLittleEndian;
    cdr::InputStream in(out.buffer().data(), out.buffer().size(), foreign);
    EXPECT_EQ(in.read_ulong(), 0x04030201u);
}

TEST(CdrErrors, UnderflowThrows) {
    const std::uint8_t tiny[] = {1, 2};
    cdr::InputStream in(tiny, sizeof(tiny));
    EXPECT_THROW(in.read_ulong(), cdr::MarshalError);
}

TEST(CdrErrors, StringWithoutNulThrows) {
    cdr::OutputStream out;
    out.write_ulong(3);
    out.write_raw("abc", 3); // no NUL, length says 3
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_THROW(in.read_string(), cdr::MarshalError);
}

TEST(CdrErrors, ZeroLengthStringThrows) {
    cdr::OutputStream out;
    out.write_ulong(0);
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_THROW(in.read_string(), cdr::MarshalError);
}

TEST(CdrErrors, OctetSeqBeyondBufferThrows) {
    cdr::OutputStream out;
    out.write_ulong(1000); // claims 1000 bytes, provides none
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_THROW(in.read_octet_seq_view(), cdr::MarshalError);
}

TEST(CdrErrors, PatchOutOfRangeThrows) {
    cdr::OutputStream out;
    out.write_octet(1);
    EXPECT_THROW(out.patch_ulong(0, 5), cdr::MarshalError);
}

TEST(CdrPatch, PatchesInPlace) {
    cdr::OutputStream out;
    out.write_ulong(0);
    out.write_ulong(77);
    out.patch_ulong(0, 0xDEADBEEF);
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_ulong(), 0xDEADBEEF);
    EXPECT_EQ(in.read_ulong(), 77u);
}

TEST(CdrLimits, ExtremeValuesRoundTrip) {
    cdr::OutputStream out;
    out.write_long(std::numeric_limits<std::int32_t>::min());
    out.write_long(std::numeric_limits<std::int32_t>::max());
    out.write_longlong(std::numeric_limits<std::int64_t>::min());
    out.write_double(std::numeric_limits<double>::infinity());
    out.write_float(std::numeric_limits<float>::denorm_min());
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_EQ(in.read_long(), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(in.read_long(), std::numeric_limits<std::int32_t>::max());
    EXPECT_EQ(in.read_longlong(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(in.read_double(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(in.read_float(), std::numeric_limits<float>::denorm_min());
}

// Property fuzz: random interleavings of typed writes must read back
// identically, in both byte orders.
class CdrFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CdrFuzzTest, RandomSequenceRoundTrips) {
    std::mt19937_64 rng(GetParam());
    const cdr::ByteOrder order = (GetParam() % 2 == 0)
                                     ? cdr::native_order()
                                     : (cdr::native_order() ==
                                                cdr::ByteOrder::kLittleEndian
                                            ? cdr::ByteOrder::kBigEndian
                                            : cdr::ByteOrder::kLittleEndian);
    cdr::OutputStream out(order);
    std::vector<int> kinds;
    std::vector<std::uint64_t> values;
    std::vector<std::string> strings;
    for (int i = 0; i < 200; ++i) {
        const int kind = static_cast<int>(rng() % 5);
        kinds.push_back(kind);
        switch (kind) {
            case 0: {
                const auto v = static_cast<std::uint8_t>(rng());
                values.push_back(v);
                out.write_octet(v);
                break;
            }
            case 1: {
                const auto v = static_cast<std::uint16_t>(rng());
                values.push_back(v);
                out.write_ushort(v);
                break;
            }
            case 2: {
                const auto v = static_cast<std::uint32_t>(rng());
                values.push_back(v);
                out.write_ulong(v);
                break;
            }
            case 3: {
                const std::uint64_t v = rng();
                values.push_back(v);
                out.write_ulonglong(v);
                break;
            }
            case 4: {
                std::string s;
                const auto len = rng() % 40;
                for (std::uint64_t j = 0; j < len; ++j) {
                    s.push_back(static_cast<char>('a' + rng() % 26));
                }
                strings.push_back(s);
                values.push_back(0);
                out.write_string(s);
                break;
            }
        }
    }
    cdr::InputStream in(out.buffer().data(), out.buffer().size(), order);
    std::size_t string_idx = 0;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        switch (kinds[i]) {
            case 0: ASSERT_EQ(in.read_octet(), values[i]); break;
            case 1: ASSERT_EQ(in.read_ushort(), values[i]); break;
            case 2: ASSERT_EQ(in.read_ulong(), values[i]); break;
            case 3: ASSERT_EQ(in.read_ulonglong(), values[i]); break;
            case 4: ASSERT_EQ(in.read_string(), strings[string_idx++]); break;
        }
    }
    EXPECT_EQ(in.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdrFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));
