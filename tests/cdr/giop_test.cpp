// GIOP framing: request/reply encode/decode, header validation, fuzz.
#include "cdr/giop.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cdr = compadres::cdr;

namespace {
std::vector<std::uint8_t> bytes(std::initializer_list<int> list) {
    std::vector<std::uint8_t> out;
    for (const int v : list) out.push_back(static_cast<std::uint8_t>(v));
    return out;
}
} // namespace

TEST(Giop, RequestRoundTrips) {
    cdr::RequestHeader req;
    req.request_id = 42;
    req.response_expected = true;
    req.object_key = "EchoServant";
    req.operation = "echo";
    const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7};
    const auto frame = cdr::encode_request(req, payload, sizeof(payload));

    const auto decoded = cdr::decode_request(frame.data(), frame.size());
    EXPECT_EQ(decoded.header.request_id, 42u);
    EXPECT_TRUE(decoded.header.response_expected);
    EXPECT_EQ(decoded.header.object_key, "EchoServant");
    EXPECT_EQ(decoded.header.operation, "echo");
    ASSERT_EQ(decoded.payload_len, sizeof(payload));
    EXPECT_EQ(std::memcmp(decoded.payload, payload, sizeof(payload)), 0);
}

TEST(Giop, ReplyRoundTrips) {
    cdr::ReplyHeader rep;
    rep.request_id = 99;
    rep.status = cdr::ReplyStatus::kUserException;
    const std::uint8_t payload[] = {0xCA, 0xFE};
    const auto frame = cdr::encode_reply(rep, payload, sizeof(payload));
    const auto decoded = cdr::decode_reply(frame.data(), frame.size());
    EXPECT_EQ(decoded.header.request_id, 99u);
    EXPECT_EQ(decoded.header.status, cdr::ReplyStatus::kUserException);
    ASSERT_EQ(decoded.payload_len, 2u);
    EXPECT_EQ(decoded.payload[0], 0xCA);
}

TEST(Giop, EmptyPayloadAllowed) {
    cdr::RequestHeader req;
    req.object_key = "K";
    req.operation = "op";
    const auto frame = cdr::encode_request(req, nullptr, 0);
    const auto decoded = cdr::decode_request(frame.data(), frame.size());
    EXPECT_EQ(decoded.payload_len, 0u);
}

TEST(Giop, HeaderFieldsCorrect) {
    cdr::RequestHeader req;
    req.object_key = "K";
    req.operation = "op";
    const auto frame = cdr::encode_request(req, nullptr, 0);
    ASSERT_GE(frame.size(), cdr::GiopHeader::kSize);
    EXPECT_EQ(frame[0], 'G');
    EXPECT_EQ(frame[1], 'I');
    EXPECT_EQ(frame[2], 'O');
    EXPECT_EQ(frame[3], 'P');
    EXPECT_EQ(frame[4], 1); // major
    EXPECT_EQ(frame[5], 0); // minor
    const auto header = cdr::decode_header(frame.data(), frame.size());
    EXPECT_EQ(header.msg_type, cdr::GiopMsgType::kRequest);
    EXPECT_EQ(header.message_size, frame.size() - cdr::GiopHeader::kSize);
    EXPECT_EQ(header.byte_order, cdr::native_order());
}

TEST(GiopErrors, BadMagicRejected) {
    auto frame = bytes({'B', 'O', 'O', 'M', 1, 0, 1, 0, 0, 0, 0, 0});
    EXPECT_THROW(cdr::decode_header(frame.data(), frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, ShortHeaderRejected) {
    auto frame = bytes({'G', 'I', 'O', 'P'});
    EXPECT_THROW(cdr::decode_header(frame.data(), frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, WrongMajorVersionRejected) {
    auto frame = bytes({'G', 'I', 'O', 'P', 2, 0, 1, 0, 0, 0, 0, 0});
    EXPECT_THROW(cdr::decode_header(frame.data(), frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, BadByteOrderFlagRejected) {
    auto frame = bytes({'G', 'I', 'O', 'P', 1, 0, 7, 0, 0, 0, 0, 0});
    EXPECT_THROW(cdr::decode_header(frame.data(), frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, TypeConfusionRejected) {
    cdr::ReplyHeader rep;
    const auto frame = cdr::encode_reply(rep, nullptr, 0);
    EXPECT_THROW(cdr::decode_request(frame.data(), frame.size()),
                 cdr::MarshalError);
    cdr::RequestHeader req;
    req.object_key = "K";
    req.operation = "op";
    const auto req_frame = cdr::encode_request(req, nullptr, 0);
    EXPECT_THROW(cdr::decode_reply(req_frame.data(), req_frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, TruncatedBodyRejected) {
    cdr::RequestHeader req;
    req.object_key = "EchoServant";
    req.operation = "echo";
    const std::uint8_t payload[] = {1, 2, 3};
    auto frame = cdr::encode_request(req, payload, sizeof(payload));
    frame.resize(frame.size() - 2); // chop the tail
    EXPECT_THROW(cdr::decode_request(frame.data(), frame.size()),
                 cdr::MarshalError);
}

TEST(GiopErrors, TruncationFuzzNeverCrashes) {
    // Every prefix of a valid frame must throw (or decode, for the full
    // frame) — never crash or read out of bounds.
    cdr::RequestHeader req;
    req.request_id = 7;
    req.object_key = "SomeKey";
    req.operation = "operation_name";
    const std::uint8_t payload[64] = {};
    const auto frame = cdr::encode_request(req, payload, sizeof(payload));
    for (std::size_t len = 0; len < frame.size(); ++len) {
        EXPECT_THROW(cdr::decode_request(frame.data(), len), cdr::MarshalError)
            << "prefix length " << len;
    }
    EXPECT_NO_THROW(cdr::decode_request(frame.data(), frame.size()));
}

TEST(GiopErrors, ByteFlipFuzzNeverCrashes) {
    cdr::RequestHeader req;
    req.request_id = 1;
    req.object_key = "Key";
    req.operation = "op";
    const std::uint8_t payload[16] = {};
    const auto clean = cdr::encode_request(req, payload, sizeof(payload));
    std::mt19937 rng(1234);
    for (int trial = 0; trial < 500; ++trial) {
        auto frame = clean;
        const std::size_t pos = rng() % frame.size();
        frame[pos] ^= static_cast<std::uint8_t>(1 + rng() % 255);
        try {
            const auto decoded = cdr::decode_request(frame.data(), frame.size());
            // Decoding may succeed (the flip hit the payload); the view must
            // still be in bounds.
            EXPECT_LE(decoded.payload + decoded.payload_len,
                      frame.data() + frame.size());
        } catch (const cdr::MarshalError&) {
            // rejection is fine
        }
    }
}

// Parameterized payload-size sweep matching the paper's Fig. 11 sizes.
class GiopSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GiopSizeTest, PayloadSurvivesRoundTrip) {
    std::vector<std::uint8_t> payload(GetParam());
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 31);
    }
    cdr::RequestHeader req;
    req.object_key = "EchoServant";
    req.operation = "echo";
    const auto frame = cdr::encode_request(req, payload.data(), payload.size());
    const auto decoded = cdr::decode_request(frame.data(), frame.size());
    ASSERT_EQ(decoded.payload_len, payload.size());
    EXPECT_EQ(std::memcmp(decoded.payload, payload.data(), payload.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(Fig11Sizes, GiopSizeTest,
                         ::testing::Values(32, 64, 128, 256, 512, 1024));

TEST(GiopLocate, LocateRequestRoundTrips) {
    cdr::LocateRequestHeader req;
    req.request_id = 55;
    req.object_key = "SomeServant";
    const auto frame = cdr::encode_locate_request(req);
    const auto decoded = cdr::decode_locate_request(frame.data(), frame.size());
    EXPECT_EQ(decoded.request_id, 55u);
    EXPECT_EQ(decoded.object_key, "SomeServant");
    const auto header = cdr::decode_header(frame.data(), frame.size());
    EXPECT_EQ(header.msg_type, cdr::GiopMsgType::kLocateRequest);
}

TEST(GiopLocate, LocateReplyRoundTrips) {
    cdr::LocateReplyHeader rep;
    rep.request_id = 56;
    rep.status = cdr::LocateStatus::kObjectHere;
    const auto frame = cdr::encode_locate_reply(rep);
    const auto decoded = cdr::decode_locate_reply(frame.data(), frame.size());
    EXPECT_EQ(decoded.request_id, 56u);
    EXPECT_EQ(decoded.status, cdr::LocateStatus::kObjectHere);
}

TEST(GiopLocate, TypeConfusionRejected) {
    cdr::LocateRequestHeader req;
    req.object_key = "K";
    const auto frame = cdr::encode_locate_request(req);
    EXPECT_THROW(cdr::decode_request(frame.data(), frame.size()),
                 cdr::MarshalError);
    EXPECT_THROW(cdr::decode_locate_reply(frame.data(), frame.size()),
                 cdr::MarshalError);
    cdr::RequestHeader ordinary;
    ordinary.object_key = "K";
    ordinary.operation = "op";
    const auto req_frame = cdr::encode_request(ordinary, nullptr, 0);
    EXPECT_THROW(cdr::decode_locate_request(req_frame.data(), req_frame.size()),
                 cdr::MarshalError);
}

TEST(GiopLocate, TruncationRejected) {
    cdr::LocateRequestHeader req;
    req.request_id = 9;
    req.object_key = "SomeLongerObjectKey";
    const auto frame = cdr::encode_locate_request(req);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        EXPECT_THROW(cdr::decode_locate_request(frame.data(), len),
                     cdr::MarshalError)
            << "prefix " << len;
    }
}

// Priority band: bits 4-6 of the flags octet carry the lane band (our
// extension); band 0 stays byte-identical to stock GIOP 1.0.
TEST(GiopBand, BandRoundTripsThroughFlagsOctet) {
    cdr::RequestHeader req;
    req.request_id = 1;
    req.object_key = "K";
    req.operation = "op";
    auto frame = cdr::encode_request(req, nullptr, 0);
    EXPECT_EQ(cdr::frame_band(frame.data()), 0u); // default stock frame
    for (std::uint8_t band = 0; band <= 7; ++band) {
        cdr::set_frame_band(frame.data(), band);
        EXPECT_EQ(cdr::frame_band(frame.data()), band);
        const auto header = cdr::decode_header(frame.data(), frame.size());
        EXPECT_EQ(header.band, band);
        // The stamp never disturbs the rest of the frame: decode still works.
        const auto decoded = cdr::decode_request(frame.data(), frame.size());
        EXPECT_EQ(decoded.header.request_id, 1u);
    }
}

TEST(GiopBand, RestampPreservesByteOrderBit) {
    cdr::RequestHeader req;
    req.object_key = "K";
    req.operation = "op";
    auto frame = cdr::encode_request(req, nullptr, 0);
    const std::uint8_t order_bit =
        frame[cdr::GiopHeader::kFlagsOffset] & 0x01;
    cdr::set_frame_band(frame.data(), 5);
    cdr::set_frame_band(frame.data(), 2);
    EXPECT_EQ(frame[cdr::GiopHeader::kFlagsOffset] & 0x01, order_bit);
    EXPECT_EQ(cdr::frame_band(frame.data()), 2u);
}

TEST(GiopBand, ReservedFlagBitsStillRejected) {
    cdr::RequestHeader req;
    req.object_key = "K";
    req.operation = "op";
    const auto base = cdr::encode_request(req, nullptr, 0);
    for (const std::uint8_t bit : {0x02, 0x04, 0x80}) {
        auto frame = base;
        frame[cdr::GiopHeader::kFlagsOffset] |= bit;
        EXPECT_THROW(cdr::decode_header(frame.data(), frame.size()),
                     cdr::MarshalError)
            << "reserved bit 0x" << std::hex << int(bit);
    }
    // All band bits set together is still a legal (band 7) frame.
    auto frame = base;
    cdr::set_frame_band(frame.data(), 7);
    EXPECT_NO_THROW(cdr::decode_header(frame.data(), frame.size()));
    // Bit 3 graduated from reserved to the trace-context flag: a frame
    // carrying it decodes, and the header reports the context.
    auto traced = base;
    traced[cdr::GiopHeader::kFlagsOffset] |= cdr::GiopHeader::kTraceFlag;
    cdr::GiopHeader h{};
    EXPECT_NO_THROW(h = cdr::decode_header(traced.data(), traced.size()));
    EXPECT_TRUE(h.has_trace_context);
}

// ---- trace-context trailer (observability plane) ----

namespace {

/// Template + payload + finish, the bridge's streaming encode shape.
std::vector<std::uint8_t> traced_frame(bool with_trailer) {
    cdr::OutputStream out;
    const std::size_t len_offset = cdr::begin_request_payload(
        out, /*request_id=*/9, /*response_expected=*/false, "K", "op");
    out.rebase();
    out.write_ulong(0x11223344);
    cdr::finish_payload(out, len_offset);
    if (with_trailer) {
        cdr::append_trace_trailer(out, 0xA1B2C3D4E5F60718ULL, 0x0BADCAFE);
    }
    return out.take_buffer();
}

} // namespace

TEST(GiopTrace, TrailerRoundTrips) {
    const auto frame = traced_frame(true);
    ASSERT_TRUE(cdr::frame_has_trace_context(frame.data()));
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    ASSERT_TRUE(cdr::read_trace_trailer(frame.data(), frame.size(), trace_id,
                                        span_id));
    EXPECT_EQ(trace_id, 0xA1B2C3D4E5F60718ULL);
    EXPECT_EQ(span_id, 0x0BADCAFEu);
    // message_size covers the trailer; the header decodes and reports it.
    const cdr::GiopHeader h = cdr::decode_header(frame.data(), frame.size());
    EXPECT_TRUE(h.has_trace_context);
    EXPECT_EQ(cdr::GiopHeader::kSize + h.message_size, frame.size());
}

TEST(GiopTrace, UntracedFramesAreByteIdenticalToStockGiop) {
    const auto plain = traced_frame(false);
    // No trace flag, no trailer bytes, nothing else disturbed.
    EXPECT_FALSE(cdr::frame_has_trace_context(plain.data()));
    const auto traced = traced_frame(true);
    ASSERT_EQ(traced.size(), plain.size() + cdr::kTraceTrailerSize);
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (i == cdr::GiopHeader::kFlagsOffset) {
            EXPECT_EQ(traced[i], plain[i] | cdr::GiopHeader::kTraceFlag);
            continue;
        }
        if (i >= 8 && i < 12) continue; // message_size grew by the trailer
        EXPECT_EQ(traced[i], plain[i]) << "offset " << i;
    }
}

TEST(GiopTrace, TrailerIsInvisibleToPayloadDecoding) {
    // decode_request_view stops after the payload octet sequence, so a
    // trailer-unaware consumer sees the same request either way.
    const auto traced = traced_frame(true);
    const auto view =
        cdr::decode_request_view(traced.data(), traced.size());
    EXPECT_EQ(view.header.operation, "op");
    ASSERT_EQ(view.payload_len, 4u);
    cdr::InputStream body(view.payload, view.payload_len, view.byte_order);
    EXPECT_EQ(body.read_ulong(), 0x11223344u);
}

TEST(GiopTrace, ReadTrailerRejectsShortOrUnflaggedFrames) {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    const auto plain = traced_frame(false);
    EXPECT_FALSE(cdr::read_trace_trailer(plain.data(), plain.size(), trace_id,
                                         span_id));
    // Flag set but the frame is too short to hold a trailer.
    auto stub = bytes({'G', 'I', 'O', 'P', 1, 0, 0x08, 0, 0, 0, 0, 0});
    EXPECT_FALSE(cdr::read_trace_trailer(stub.data(), stub.size(), trace_id,
                                         span_id));
    EXPECT_EQ(trace_id, 0u);
}
