// Live repolicy of remote routes: RemoteBridge::repolicy_route swaps a
// route's TransmissionPolicy (overflow, band, coalescing) on a RUNNING
// bridge mid-burst — zero messages lost or duplicated, frames_dropped
// flat, and new frames ride the new lane.
#include "remote/bridge.hpp"

#include "core/messages.hpp"
#include "core/recompose.hpp"
#include "net/lane_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace compadres;

namespace {

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0;
    return cfg;
}

struct IntSink {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> values;

    void add(int v) {
        std::lock_guard lk(mu);
        values.push_back(v);
        cv.notify_all();
    }
    bool wait_for(std::size_t n, std::chrono::milliseconds timeout =
                                     std::chrono::milliseconds(10000)) {
        std::unique_lock lk(mu);
        return cv.wait_for(lk, timeout, [&] { return values.size() >= n; });
    }
};

struct LanePair {
    net::LaneGroup* client = nullptr;
    net::LaneGroup* server = nullptr;
    std::unique_ptr<net::Transport> client_wire;
    std::unique_ptr<net::Transport> server_wire;

    explicit LanePair(std::size_t bands = 2) {
        net::LaneGroupOptions opts;
        opts.bands = bands;
        net::LaneAcceptor acceptor(0, opts);
        std::unique_ptr<net::LaneGroup> srv;
        std::thread accept_thread([&] { srv = acceptor.accept(); });
        auto cli = net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
        accept_thread.join();
        client = cli.get();
        server = srv.get();
        client_wire = std::move(cli);
        server_wire = std::move(srv);
    }
};

class RemoteRecomposeTest : public ::testing::Test {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        remote::register_builtin_serializers();
    }
};

} // namespace

TEST_F(RemoteRecomposeTest, RepolicyMidBurstLosesAndDuplicatesNothing) {
    LanePair wires;
    net::LaneGroup* client_group = wires.client;
    core::Application app_a("a"), app_b("b");
    remote::RemoteBridge bridge_a(app_a, std::move(wires.client_wire));
    remote::RemoteBridge bridge_b(app_b, std::move(wires.server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    core::TransmissionPolicy initial;
    initial.band = 1; // bulk lane
    bridge_a.export_route(out, "telemetry", initial);

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("telemetry", in);
    bridge_a.start();
    bridge_b.start();
    app_a.start();
    app_b.start();

    constexpr int kMessages = 3000;
    std::thread sender([&] {
        for (int i = 0; i < kMessages; ++i) {
            core::MyInteger* msg = out.get_message();
            msg->value = i;
            out.send(msg, 5);
        }
    });

    // Repolicy the live route repeatedly while the burst is in flight:
    // Block<->Ring, band 1<->0, coalescing on/off.
    core::TransmissionPolicy urgent;
    urgent.overflow = core::OverflowPolicy::kRingOverwrite;
    urgent.band = 0;
    urgent.coalesce = false;
    core::TransmissionPolicy bulk = initial;
    for (int flip = 0; flip < 10; ++flip) {
        const core::TransmissionPolicy& next = flip % 2 == 0 ? urgent : bulk;
        const std::uint64_t pause =
            bridge_a.repolicy_route("telemetry", next);
        EXPECT_GT(pause, 0u);
        EXPECT_EQ(bridge_a.export_policy("telemetry"), next);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    sender.join();

    ASSERT_TRUE(sink.wait_for(kMessages));
    // Exactly once: nothing lost, nothing duplicated, frames_dropped flat.
    std::set<int> unique(sink.values.begin(), sink.values.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(kMessages));
    EXPECT_EQ(sink.values.size(), static_cast<std::size_t>(kMessages));
    EXPECT_EQ(bridge_a.frames_sent(), static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(bridge_b.frames_received(),
              static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(bridge_a.frames_dropped(), 0u);
    EXPECT_EQ(bridge_b.frames_dropped(), 0u);
    // Both lanes carried part of the burst: the repolicy really moved the
    // route between bands.
    EXPECT_GT(client_group->lane_stats(0).frames_sent, 0u);
    EXPECT_GT(client_group->lane_stats(1).frames_sent, 0u);

    bridge_a.shutdown();
    bridge_b.shutdown();
    app_a.stop();
    app_b.stop();
}

TEST_F(RemoteRecomposeTest, BandRepolicyMovesNewFramesToTheNewLane) {
    LanePair wires;
    net::LaneGroup* client_group = wires.client;
    core::Application app_a("a"), app_b("b");
    remote::RemoteBridge bridge_a(app_a, std::move(wires.client_wire));
    remote::RemoteBridge bridge_b(app_b, std::move(wires.server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    core::TransmissionPolicy bulk;
    bulk.band = 1;
    bridge_a.export_route(out, "r", bulk);

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("r", in);
    bridge_a.start();
    bridge_b.start();

    for (int i = 0; i < 4; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(4));
    const std::uint64_t lane0_mid = client_group->lane_stats(0).frames_sent;
    const std::uint64_t lane1_mid = client_group->lane_stats(1).frames_sent;
    EXPECT_GE(lane1_mid, 4u);

    core::TransmissionPolicy urgent;
    urgent.band = 0;
    bridge_a.repolicy_route("r", urgent);
    for (int i = 4; i < 8; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(8));
    // All post-repolicy frames rode lane 0; lane 1 saw nothing new.
    EXPECT_EQ(client_group->lane_stats(1).frames_sent, lane1_mid);
    EXPECT_GE(client_group->lane_stats(0).frames_sent, lane0_mid + 4);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(sink.values[i], i);
}

TEST_F(RemoteRecomposeTest, RepolicyValidatesRouteAndBand) {
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "r");
    EXPECT_THROW(bridge_a.export_route(out, "r"), remote::BridgeError);

    EXPECT_THROW(bridge_a.repolicy_route("ghost", {}), remote::BridgeError);
    core::TransmissionPolicy wild;
    wild.band = static_cast<int>(net::kMaxLanes);
    EXPECT_THROW(bridge_a.repolicy_route("r", wild), remote::BridgeError);
    EXPECT_THROW(bridge_a.export_policy("ghost"), remote::BridgeError);

    // Repolicy works before AND after start() — the route registry is not
    // frozen the way route addition is.
    core::TransmissionPolicy ring;
    ring.overflow = core::OverflowPolicy::kRingOverwrite;
    bridge_a.repolicy_route("r", ring);
    bridge_a.start();
    ring.coalesce = false;
    bridge_a.repolicy_route("r", ring);
    EXPECT_EQ(bridge_a.export_policy("r"), ring);

    bridge_a.shutdown();
    EXPECT_THROW(bridge_a.repolicy_route("r", {}), remote::BridgeError);
}

TEST_F(RemoteRecomposeTest, ApplyRecomposeDrivesRemoteRepolicyViaApplier) {
    LanePair wires;
    core::Application app_a("a"), app_b("b");
    remote::RemoteBridge bridge_a(app_a, std::move(wires.client_wire));
    remote::RemoteBridge bridge_b(app_b, std::move(wires.server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    core::TransmissionPolicy bulk;
    bulk.band = 1;
    bridge_a.export_route(out, "telemetry", bulk);

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("telemetry", in);
    bridge_a.start();
    bridge_b.start();
    app_a.start();

    core::RecomposePlan plan;
    plan.application = "a";
    core::RecomposeRepolicy rep;
    rep.remote = true;
    rep.remote_name = "peer";
    rep.route = "telemetry";
    rep.from = bulk;
    rep.to.band = 0;
    rep.to.coalesce = false;
    plan.repolicies.push_back(rep);

    core::RecomposeOptions opts;
    opts.remote_applier = remote::recompose_applier(bridge_a);
    const core::RecomposeStats stats = apply_recompose(app_a, plan, opts);
    EXPECT_EQ(stats.routes_repoliced, 1u);
    ASSERT_EQ(stats.pause_ns.size(), 1u);
    EXPECT_GT(stats.pause_ns[0], 0u);
    EXPECT_EQ(bridge_a.export_policy("telemetry").band, 0);

    core::MyInteger* msg = out.get_message();
    msg->value = 42;
    out.send(msg, 5);
    ASSERT_TRUE(sink.wait_for(1));
    EXPECT_EQ(sink.values[0], 42);
    EXPECT_EQ(bridge_a.frames_dropped(), 0u);
}
