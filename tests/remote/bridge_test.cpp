// RemoteBridge: transparent remote port connections between two
// applications (the paper's future-work feature, implemented).
#include "remote/bridge.hpp"

#include "cdr/giop.hpp"
#include "compiler/validator.hpp"
#include "core/messages.hpp"
#include "net/lane_group.hpp"
#include "net/tcp.hpp"
#include "obs/trace_context.hpp"
#include "remote/remote_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

using namespace compadres;

namespace {

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0;
    return cfg;
}

/// Collects ints delivered to an In port across threads.
struct IntSink {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> values;

    void add(int v) {
        // Notify under the mutex: the waiter owns this stack-allocated sink
        // and tears it down the moment wait_for returns, so notifying after
        // unlock races the destruction of the condvar being notified.
        std::lock_guard lk(mu);
        values.push_back(v);
        cv.notify_all();
    }
    bool wait_for(std::size_t n) {
        std::unique_lock lk(mu);
        return cv.wait_for(lk, std::chrono::milliseconds(3000),
                           [&] { return values.size() >= n; });
    }
};

class BridgeTest : public ::testing::Test {
protected:
    void SetUp() override {
        core::register_builtin_message_types();
        remote::register_builtin_serializers();
    }
};

} // namespace

TEST_F(BridgeTest, MessageCrossesBetweenApplications) {
    core::Application sender_app("sender");
    core::Application receiver_app("receiver");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(sender_app, std::move(wire_a));
    remote::RemoteBridge bridge_b(receiver_app, std::move(wire_b));

    auto& producer = sender_app.create_immortal<core::Component>("Producer");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "telemetry");

    IntSink sink;
    auto& consumer = receiver_app.create_immortal<core::Component>("Consumer");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("telemetry", in);

    bridge_a.start();
    bridge_b.start();
    sender_app.start();
    receiver_app.start();

    for (int i = 0; i < 10; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = i * 11;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(10));
    for (int i = 0; i < 10; ++i) EXPECT_EQ(sink.values[i], i * 11);
    EXPECT_EQ(bridge_a.frames_sent(), 10u);
    EXPECT_EQ(bridge_b.frames_received(), 10u);
    EXPECT_EQ(bridge_b.frames_dropped(), 0u);
}

TEST_F(BridgeTest, BidirectionalOverOneWire) {
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    IntSink sink_a, sink_b;
    auto& comp_a = app_a.create_immortal<core::Component>("A");
    auto& comp_b = app_b.create_immortal<core::Component>("B");
    auto& out_a = comp_a.add_out_port<core::MyInteger>("out", "MyInteger");
    auto& in_a = comp_a.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink_a.add(m.value); });
    auto& out_b = comp_b.add_out_port<core::MyInteger>("out", "MyInteger");
    auto& in_b = comp_b.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink_b.add(m.value); });

    bridge_a.export_route(out_a, "a-to-b");
    bridge_a.import_route("b-to-a", in_a);
    bridge_b.export_route(out_b, "b-to-a");
    bridge_b.import_route("a-to-b", in_b);
    bridge_a.start();
    bridge_b.start();

    core::MyInteger* ma = out_a.get_message();
    ma->value = 1;
    out_a.send(ma, 5);
    core::MyInteger* mb = out_b.get_message();
    mb->value = 2;
    out_b.send(mb, 5);
    ASSERT_TRUE(sink_b.wait_for(1));
    ASSERT_TRUE(sink_a.wait_for(1));
    EXPECT_EQ(sink_b.values[0], 1);
    EXPECT_EQ(sink_a.values[0], 2);
}

TEST_F(BridgeTest, OctetSeqShipsOnlyFilledPrefix) {
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::OctetSeq>("out", "OctetSeq");
    bridge_a.export_route(out, "bytes");

    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::uint8_t> got;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::OctetSeq>(
        "in", "OctetSeq", sync_port(), [&](core::OctetSeq& m, core::Smm&) {
            std::lock_guard lk(mu);
            got.assign(m.data.begin(),
                       m.data.begin() + static_cast<long>(m.length));
            cv.notify_all();
        });
    bridge_b.import_route("bytes", in);
    bridge_a.start();
    bridge_b.start();

    core::OctetSeq* msg = out.get_message();
    const std::uint8_t payload[] = {1, 2, 3, 4, 5};
    msg->assign(payload, sizeof(payload));
    out.send(msg, 5);

    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::milliseconds(2000),
                            [&] { return !got.empty(); }));
    EXPECT_EQ(got, std::vector<std::uint8_t>({1, 2, 3, 4, 5}));
}

TEST_F(BridgeTest, UnknownRouteCountedAsDropped) {
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "nobody-listens");
    bridge_a.start();
    bridge_b.start();

    core::MyInteger* msg = out.get_message();
    out.send(msg, 5);
    // Drops are asynchronous; poll briefly.
    for (int i = 0; i < 100 && bridge_b.frames_dropped() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(bridge_b.frames_dropped(), 1u);
}

TEST_F(BridgeTest, DuplicateImportRouteRejected) {
    core::Application app("a");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge(app, std::move(wire_a));
    auto& comp = app.create_immortal<core::Component>("C");
    auto& in1 = comp.add_in_port<core::MyInteger>(
        "in1", "MyInteger", sync_port(), [](core::MyInteger&, core::Smm&) {});
    auto& in2 = comp.add_in_port<core::MyInteger>(
        "in2", "MyInteger", sync_port(), [](core::MyInteger&, core::Smm&) {});
    bridge.import_route("r", in1);
    EXPECT_THROW(bridge.import_route("r", in2), remote::BridgeError);
}

TEST_F(BridgeTest, RoutesFrozenAfterStart) {
    core::Application app("a");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge(app, std::move(wire_a));
    auto& comp = app.create_immortal<core::Component>("C");
    auto& out = comp.add_out_port<core::MyInteger>("out", "MyInteger");
    auto& in = comp.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(), [](core::MyInteger&, core::Smm&) {});
    bridge.start();
    EXPECT_THROW(bridge.export_route(out, "late"), remote::BridgeError);
    EXPECT_THROW(bridge.import_route("late", in), remote::BridgeError);
}

TEST_F(BridgeTest, WorksOverRealTcp) {
    net::TcpAcceptor acceptor(0);
    core::Application app_a("a"), app_b("b");

    std::unique_ptr<net::Transport> server_wire;
    std::thread accept_thread([&] { server_wire = acceptor.accept(); });
    auto client_wire = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();

    remote::RemoteBridge bridge_a(app_a, std::move(client_wire));
    remote::RemoteBridge bridge_b(app_b, std::move(server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::SensorSample>("out", "SensorSample");
    bridge_a.export_route(out, "samples");

    std::mutex mu;
    std::condition_variable cv;
    int received = 0;
    double last = 0;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::SensorSample>(
        "in", "SensorSample", sync_port(),
        [&](core::SensorSample& s, core::Smm&) {
            std::lock_guard lk(mu);
            ++received;
            last = s.value;
            cv.notify_all();
        });
    bridge_b.import_route("samples", in);
    bridge_a.start();
    bridge_b.start();

    for (int i = 0; i < 50; ++i) {
        core::SensorSample* s = out.get_message();
        s->sensor_id = i;
        s->value = i * 0.5;
        out.send(s, 5);
    }
    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::milliseconds(3000),
                            [&] { return received >= 50; }));
    EXPECT_EQ(last, 49 * 0.5);
}

TEST_F(BridgeTest, ImportPriorityOverrideApplies) {
    // With an override, the bridge sends at the configured priority; we
    // can at least verify traffic still flows with the override set.
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "r");

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("r", in, /*priority=*/77);
    bridge_a.start();
    bridge_b.start();

    core::MyInteger* msg = out.get_message();
    msg->value = 7;
    out.send(msg, 5);
    ASSERT_TRUE(sink.wait_for(1));
    EXPECT_EQ(sink.values[0], 7);
}

namespace {

/// Hand-build a bridge wire frame: GIOP Request to "compadres.bridge"
/// carrying [ulong priority, body bytes] under `route`.
std::vector<std::uint8_t> make_bridge_frame(const std::string& route,
                                            const std::uint8_t* body,
                                            std::size_t body_len,
                                            std::uint32_t priority = 5) {
    cdr::OutputStream payload;
    payload.write_ulong(priority);
    payload.write_octet_seq(body, body_len);
    cdr::RequestHeader header;
    header.response_expected = false;
    header.object_key = "compadres.bridge";
    header.operation = route;
    return cdr::encode_request(header, payload.buffer().data(),
                               payload.buffer().size());
}

} // namespace

TEST_F(BridgeTest, DecodeFailureCountedAndReaderSurvives) {
    core::Application app("a");
    auto [wire_raw, wire_bridge] = net::make_loopback_pair();
    remote::RemoteBridge bridge(app, std::move(wire_bridge));

    IntSink sink;
    auto& consumer = app.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge.import_route("ints", in);
    bridge.start();

    // A frame whose body is 3 bytes where sizeof(MyInteger) is expected:
    // the POD codec must reject it and the reader must keep going.
    const std::uint8_t garbage[3] = {0xDE, 0xAD, 0xBE};
    wire_raw->send_frame(make_bridge_frame("ints", garbage, sizeof(garbage)));
    for (int i = 0; i < 200 && bridge.frames_dropped() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(bridge.frames_dropped(), 1u);

    // The reader thread survived: a well-formed frame still delivers.
    core::MyInteger good{};
    good.value = 42;
    wire_raw->send_frame(make_bridge_frame(
        "ints", reinterpret_cast<const std::uint8_t*>(&good), sizeof(good)));
    ASSERT_TRUE(sink.wait_for(1));
    EXPECT_EQ(sink.values[0], 42);
    EXPECT_EQ(bridge.frames_received(), 2u);
}

TEST_F(BridgeTest, MalformedFrameCountedAndReaderSurvives) {
    core::Application app("a");
    auto [wire_raw, wire_bridge] = net::make_loopback_pair();
    remote::RemoteBridge bridge(app, std::move(wire_bridge));

    IntSink sink;
    auto& consumer = app.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge.import_route("ints", in);
    bridge.start();

    // Valid GIOP header, truncated request body: decode throws, frame is
    // counted dropped, reader lives on.
    std::vector<std::uint8_t> bogus = {'G', 'I', 'O', 'P', 1, 0,
                                       0,   0,   4,   0,   0, 0};
    bogus.resize(16, 0x00);
    wire_raw->send_frame(bogus);
    for (int i = 0; i < 200 && bridge.frames_dropped() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(bridge.frames_dropped(), 1u);

    core::MyInteger good{};
    good.value = 7;
    wire_raw->send_frame(make_bridge_frame(
        "ints", reinterpret_cast<const std::uint8_t*>(&good), sizeof(good)));
    ASSERT_TRUE(sink.wait_for(1));
    EXPECT_EQ(sink.values[0], 7);
}

TEST_F(BridgeTest, LegacyWirePathInteroperatesWithFastPath) {
    // Legacy and fast paths must be wire-compatible: a legacy-path sender
    // feeding a fast-path receiver (and both directions running at once).
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::BridgeOptions legacy;
    legacy.legacy_wire_path = true;
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a), "legacy-side",
                                  legacy);
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "r");

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("r", in);
    bridge_a.start();
    bridge_b.start();

    for (int i = 0; i < 5; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = 100 + i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(5));
    for (int i = 0; i < 5; ++i) EXPECT_EQ(sink.values[i], 100 + i);
    EXPECT_EQ(bridge_b.frames_dropped(), 0u);
}

TEST_F(BridgeTest, ShutdownWithQueuedFramesReportsDropped) {
    // Flood a TCP wire nobody reads: the coalescer's queue is still full
    // when shutdown() closes the wire, and those frames must be dropped
    // deterministically (no hang) and reported via frames_dropped().
    //
    // Socket buffers are clamped small on both ends: shutdown flushes
    // whatever the kernel will still accept before dropping the rest, and
    // with default (multi-megabyte, autotuned) buffers the entire backlog
    // can fit — flushing everything and legitimately reporting zero drops.
    // Bounded buffers guarantee an unflushable remainder to count.
    net::TcpOptions opts;
    opts.send_buffer_bytes = 32 * 1024;
    opts.recv_buffer_bytes = 32 * 1024;
    net::TcpAcceptor acceptor(0, opts);
    core::Application app("a");
    std::unique_ptr<net::Transport> server_wire;
    std::thread accept_thread([&] { server_wire = acceptor.accept(); });
    auto client_wire = net::tcp_connect("127.0.0.1", acceptor.bound_port(), opts);
    accept_thread.join();

    remote::RemoteBridge bridge(app, std::move(client_wire));
    auto& producer = app.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::OctetSeq>("out", "OctetSeq");
    bridge.export_route(out, "bulk");
    bridge.start();

    std::atomic<bool> stop{false};
    std::vector<std::thread> senders;
    for (int t = 0; t < 2; ++t) {
        senders.emplace_back([&] {
            while (!stop.load()) {
                core::OctetSeq* msg = out.get_message();
                msg->length = core::OctetSeq::kCapacity; // 4 KiB frames
                out.send(msg, 5); // send errors are swallowed by the port
            }
        });
    }
    // Let the socket buffer fill and the senders pile into the coalescer.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    bridge.shutdown(); // must return promptly, not hang on the full queue
    for (auto& s : senders) s.join();

    EXPECT_GT(bridge.frames_dropped(), 0u);
}

TEST_F(BridgeTest, ShutdownStopsReaderCleanly) {
    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));
    bridge_a.start();
    bridge_b.start();
    bridge_a.shutdown();
    bridge_a.shutdown(); // idempotent
    bridge_b.shutdown();
}

// --- Priority-banded lane groups under the bridge -----------------------

namespace {

/// A connected LaneGroup pair plus keepalive handles; bands=2.
struct LanePair {
    net::LaneGroup* client = nullptr; // observed before ownership moves
    net::LaneGroup* server = nullptr;
    std::unique_ptr<net::Transport> client_wire;
    std::unique_ptr<net::Transport> server_wire;

    explicit LanePair(std::size_t bands = 2) {
        net::LaneGroupOptions opts;
        opts.bands = bands;
        net::LaneAcceptor acceptor(0, opts);
        std::unique_ptr<net::LaneGroup> srv;
        std::thread accept_thread([&] { srv = acceptor.accept(); });
        auto cli = net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
        accept_thread.join();
        client = cli.get();
        server = srv.get();
        client_wire = std::move(cli);
        server_wire = std::move(srv);
    }
};

} // namespace

TEST_F(BridgeTest, BandedExportRidesItsOwnLane) {
    LanePair wires;
    net::LaneGroup* client_group = wires.client;
    core::Application app_a("a"), app_b("b");
    remote::RemoteBridge bridge_a(app_a, std::move(wires.client_wire));
    remote::RemoteBridge bridge_b(app_b, std::move(wires.server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "bulk", {core::OverflowPolicy::kBlock, /*band=*/1});

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("bulk", in);
    bridge_a.start();
    bridge_b.start();

    const std::uint64_t lane0_before = client_group->lane_stats(0).frames_sent;
    for (int i = 0; i < 8; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(8));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(sink.values[i], i);
    // Every exported frame rode lane 1; lane 0 saw nothing new.
    EXPECT_EQ(client_group->lane_stats(0).frames_sent, lane0_before);
    EXPECT_GE(client_group->lane_stats(1).frames_sent, 8u);
}

TEST_F(BridgeTest, TraceReportCarriesLaneCounters) {
    LanePair wires;
    core::Application app_a("a"), app_b("b");
    remote::RemoteBridge bridge_a(app_a, std::move(wires.client_wire),
                                  "uplink");
    remote::RemoteBridge bridge_b(app_b, std::move(wires.server_wire));

    auto& producer = app_a.create_immortal<core::Component>("P");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "r", {core::OverflowPolicy::kBlock, /*band=*/0});

    IntSink sink;
    auto& consumer = app_b.create_immortal<core::Component>("C");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink.add(m.value); });
    bridge_b.import_route("r", in);
    bridge_a.start();
    bridge_b.start();

    core::MyInteger* msg = out.get_message();
    msg->value = 1;
    out.send(msg, 5);
    ASSERT_TRUE(sink.wait_for(1));

    const core::TraceReport report = app_a.trace_report();
    const core::CounterGroup* bridge_group = nullptr;
    for (const core::CounterGroup& g : report.counters) {
        if (g.source == "bridge:uplink") bridge_group = &g;
    }
    ASSERT_NE(bridge_group, nullptr);
    auto value_of = [&](const std::string& name) -> std::optional<std::uint64_t> {
        for (const auto& [k, v] : bridge_group->counters) {
            if (k == name) return v;
        }
        return std::nullopt;
    };
    // Satellite counters: drops, per-lane depth/stall, failover and
    // reactor registration visibility.
    EXPECT_TRUE(value_of("frames_dropped").has_value());
    EXPECT_EQ(value_of("lane_failovers"), std::uint64_t{0});
    EXPECT_EQ(value_of("lanes_down"), std::uint64_t{0});
    EXPECT_TRUE(value_of("lane0_frames_sent").has_value());
    EXPECT_TRUE(value_of("lane0_send_stalls").has_value());
    EXPECT_TRUE(value_of("lane0_intake_depth_hwm").has_value());
    EXPECT_TRUE(value_of("lane1_frames_sent").has_value());
    EXPECT_TRUE(value_of("lane1_frames_dropped").has_value());
    if (bridge_a.using_reactor()) {
        EXPECT_EQ(value_of("reactor_wire_add_failures"), std::uint64_t{0});
        // Loop-side syscall economics flow through the trace report for
        // both backends (the satellite metric of the uring PR).
        EXPECT_TRUE(value_of("reactor_wait_syscalls").has_value());
        EXPECT_TRUE(value_of("reactor_read_syscalls").has_value());
        EXPECT_TRUE(value_of("reactor_syscalls_per_1k_frames").has_value());
        EXPECT_TRUE(value_of("reactor_uring_loops").has_value());
        EXPECT_TRUE(value_of("reactor_uring_fallbacks").has_value());
    }
    // The counters also surface in the rendered report.
    const std::string text = report.to_string();
    EXPECT_NE(text.find("lane_failovers"), std::string::npos);
    EXPECT_NE(text.find("lane1_frames_sent"), std::string::npos);
}

TEST_F(BridgeTest, ApplyRemotePlanWiresBandedRoutes) {
    const auto cdl = compiler::parse_cdl_string(R"(
<CDL>
 <Component>
  <ComponentName>Node</ComponentName>
  <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
  <Port><PortName>in</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
 </Component>
</CDL>)");
    const auto ccl = compiler::parse_ccl_string(R"(
<Application>
 <ApplicationName>App</ApplicationName>
 <Component>
  <InstanceName>N1</InstanceName><ClassName>Node</ClassName>
  <ComponentType>Immortal</ComponentType>
 </Component>
 <Remote>
  <RemoteName>uplink</RemoteName>
  <Bands>2</Bands>
  <Export><Component>N1</Component><Port>out</Port><Route>up</Route><Band>1</Band></Export>
  <Import><Component>N1</Component><Port>in</Port><Route>down</Route></Import>
 </Remote>
</Application>)");
    const compiler::AssemblyPlan plan = compiler::validate_and_plan(cdl, ccl);

    core::Application app_a("a"), app_b("b");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(app_a, std::move(wire_a));
    remote::RemoteBridge bridge_b(app_b, std::move(wire_b));

    // Assemble the application shape the plan names, then let the plan do
    // the wiring: no hand-written export_route/import_route calls.
    IntSink sink_a;
    auto& node = app_a.create_immortal<core::Component>("N1");
    auto& out = node.add_out_port<core::MyInteger>("out", "MyInteger");
    node.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink_a.add(m.value); });

    EXPECT_THROW(
        remote::apply_remote_plan(plan, "no-such-remote", app_a, bridge_a),
        remote::BridgeError);
    remote::apply_remote_plan(plan, "uplink", app_a, bridge_a);

    IntSink sink_b;
    auto& peer = app_b.create_immortal<core::Component>("Peer");
    auto& peer_out = peer.add_out_port<core::MyInteger>("out", "MyInteger");
    auto& peer_in = peer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(),
        [&](core::MyInteger& m, core::Smm&) { sink_b.add(m.value); });
    bridge_b.import_route("up", peer_in);
    bridge_b.export_route(peer_out, "down");
    bridge_a.start();
    bridge_b.start();

    core::MyInteger* m1 = out.get_message();
    m1->value = 41;
    out.send(m1, 5);
    core::MyInteger* m2 = peer_out.get_message();
    m2->value = 42;
    peer_out.send(m2, 5);
    ASSERT_TRUE(sink_b.wait_for(1));
    ASSERT_TRUE(sink_a.wait_for(1));
    EXPECT_EQ(sink_b.values[0], 41);
    EXPECT_EQ(sink_a.values[0], 42);
}

// ---- wire trace-context propagation (observability plane) ----

TEST_F(BridgeTest, TraceContextCrossesTheWire) {
    // Shift 0: every export is sampled. The handler on the receiving side
    // must observe the same trace id the sender minted, re-installed from
    // the frame's 16-byte trailer.
    obs::Tracer::configure(0);
    obs::Tracer::clear_current();

    core::Application sender_app("t-sender");
    core::Application receiver_app("t-receiver");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(sender_app, std::move(wire_a));
    remote::RemoteBridge bridge_b(receiver_app, std::move(wire_b));

    auto& producer = sender_app.create_immortal<core::Component>("Producer");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "traced");

    IntSink sink;
    std::mutex ctx_mu;
    std::vector<obs::TraceContext> seen;
    auto& consumer = receiver_app.create_immortal<core::Component>("Consumer");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(), [&](core::MyInteger& m, core::Smm&) {
            {
                std::lock_guard lk(ctx_mu);
                seen.push_back(obs::Tracer::current());
            }
            sink.add(m.value);
        });
    bridge_b.import_route("traced", in);

    bridge_a.start();
    bridge_b.start();
    sender_app.start();
    receiver_app.start();

    constexpr int kMsgs = 8;
    for (int i = 0; i < kMsgs; ++i) {
        obs::Tracer::clear_current();
        core::MyInteger* msg = out.get_message();
        msg->value = i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(kMsgs));
    obs::Tracer::configure(-1);
    obs::Tracer::clear_current();

    std::lock_guard lk(ctx_mu);
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kMsgs));
    std::set<std::uint64_t> ids;
    for (const obs::TraceContext& ctx : seen) {
        EXPECT_TRUE(static_cast<bool>(ctx)) << "handler ran untraced";
        EXPECT_NE(ctx.span_id, 0u);
        ids.insert(ctx.trace_id);
    }
    // Each send started a fresh trace; each crossed intact.
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kMsgs));
}

TEST_F(BridgeTest, UntracedTrafficCarriesNoContext) {
    obs::Tracer::configure(-1); // tracing off: frames must stay stock GIOP
    core::Application sender_app("u-sender");
    core::Application receiver_app("u-receiver");
    auto [wire_a, wire_b] = net::make_loopback_pair();
    remote::RemoteBridge bridge_a(sender_app, std::move(wire_a));
    remote::RemoteBridge bridge_b(receiver_app, std::move(wire_b));

    auto& producer = sender_app.create_immortal<core::Component>("Producer");
    auto& out = producer.add_out_port<core::MyInteger>("out", "MyInteger");
    bridge_a.export_route(out, "plain");

    IntSink sink;
    std::atomic<std::uint64_t> traced{0};
    auto& consumer = receiver_app.create_immortal<core::Component>("Consumer");
    auto& in = consumer.add_in_port<core::MyInteger>(
        "in", "MyInteger", sync_port(), [&](core::MyInteger& m, core::Smm&) {
            if (obs::Tracer::current()) traced.fetch_add(1);
            sink.add(m.value);
        });
    bridge_b.import_route("plain", in);

    bridge_a.start();
    bridge_b.start();
    sender_app.start();
    receiver_app.start();

    for (int i = 0; i < 5; ++i) {
        core::MyInteger* msg = out.get_message();
        msg->value = i;
        out.send(msg, 5);
    }
    ASSERT_TRUE(sink.wait_for(5));
    EXPECT_EQ(traced.load(), 0u);
    EXPECT_EQ(bridge_b.frames_dropped(), 0u);
}
