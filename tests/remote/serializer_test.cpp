// Serializers: POD and custom codecs, registry behaviour, error paths.
#include "remote/serializer.hpp"

#include "core/messages.hpp"

#include <gtest/gtest.h>

using namespace compadres;

namespace {

struct Telemetry {
    int id = 0;
    double value = 0.0;
    char tag[8] = {};
};

class SerializerTest : public ::testing::Test {
protected:
    void SetUp() override { remote::register_builtin_serializers(); }
};

} // namespace

TEST_F(SerializerTest, PodRoundTrips) {
    auto& reg = remote::SerializerRegistry::global();
    reg.register_pod<Telemetry>("Telemetry");
    const remote::Serializer& s = reg.find(std::type_index(typeid(Telemetry)));

    Telemetry original;
    original.id = 7;
    original.value = 2.5;
    original.tag[0] = 'x';
    cdr::OutputStream out;
    s.encode(&original, out);

    Telemetry decoded;
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    s.decode(&decoded, in);
    EXPECT_EQ(decoded.id, 7);
    EXPECT_EQ(decoded.value, 2.5);
    EXPECT_EQ(decoded.tag[0], 'x');
}

TEST_F(SerializerTest, PodSizeMismatchRejected) {
    auto& reg = remote::SerializerRegistry::global();
    reg.register_pod<Telemetry>("Telemetry");
    const remote::Serializer& s = reg.find(std::type_index(typeid(Telemetry)));
    cdr::OutputStream out;
    const std::uint8_t junk[3] = {1, 2, 3};
    out.write_octet_seq(junk, sizeof(junk)); // wrong length
    Telemetry decoded;
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    EXPECT_THROW(s.decode(&decoded, in), remote::SerializationError);
}

TEST_F(SerializerTest, OctetSeqCodecShipsOnlyFilledBytes) {
    const remote::Serializer& s = remote::SerializerRegistry::global().find(
        std::type_index(typeid(core::OctetSeq)));
    core::OctetSeq msg;
    const std::uint8_t data[] = {9, 8, 7};
    msg.assign(data, sizeof(data));
    cdr::OutputStream out;
    s.encode(&msg, out);
    // ulong length + 3 bytes, nowhere near the 4 KiB struct.
    EXPECT_LE(out.size(), 16u);

    core::OctetSeq decoded;
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    s.decode(&decoded, in);
    EXPECT_EQ(decoded.length, 3u);
    EXPECT_EQ(decoded.data[0], 9);
    EXPECT_EQ(decoded.data[2], 7);
}

TEST_F(SerializerTest, UnknownTypeThrows) {
    struct Unregistered {};
    EXPECT_THROW(remote::SerializerRegistry::global().find(
                     std::type_index(typeid(Unregistered))),
                 remote::SerializationError);
    EXPECT_FALSE(remote::SerializerRegistry::global().has(
        std::type_index(typeid(Unregistered))));
}

TEST_F(SerializerTest, FindByNameWorks) {
    const remote::Serializer* s =
        remote::SerializerRegistry::global().find_by_name("MyInteger");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->type, std::type_index(typeid(core::MyInteger)));
    EXPECT_EQ(remote::SerializerRegistry::global().find_by_name("Nope"),
              nullptr);
}

TEST_F(SerializerTest, CustomCodecOverridesAndRoundTrips) {
    auto& reg = remote::SerializerRegistry::global();
    // A custom codec that ships only the id field of Telemetry.
    reg.register_custom<Telemetry>(
        "TelemetryIdOnly",
        [](const Telemetry& t, cdr::OutputStream& out) {
            out.write_long(t.id);
        },
        [](Telemetry& t, cdr::InputStream& in) { t.id = in.read_long(); });
    const remote::Serializer& s = reg.find(std::type_index(typeid(Telemetry)));
    EXPECT_EQ(s.type_name, "TelemetryIdOnly"); // re-registration replaced

    Telemetry original;
    original.id = 42;
    original.value = 99.0;
    cdr::OutputStream out;
    s.encode(&original, out);
    EXPECT_EQ(out.size(), 4u); // just the long

    Telemetry decoded;
    cdr::InputStream in(out.buffer().data(), out.buffer().size());
    s.decode(&decoded, in);
    EXPECT_EQ(decoded.id, 42);
    EXPECT_EQ(decoded.value, 0.0); // not shipped

    // Restore the POD codec for other tests in this process.
    reg.register_pod<Telemetry>("Telemetry");
}

TEST_F(SerializerTest, BuiltinRegistrationIsIdempotent) {
    remote::register_builtin_serializers();
    remote::register_builtin_serializers();
    EXPECT_TRUE(remote::SerializerRegistry::global().has(
        std::type_index(typeid(core::SensorSample))));
}
