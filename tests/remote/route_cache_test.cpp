// RouteIdCache: lock-free publish/lookup under concurrent readers.
//
// The interesting executions are racy by construction, so this suite is
// written to be run under TSan (cmake -DCOMPADRES_SANITIZE=thread ..) as
// well as plain: readers hammer lookup() while writers race publish() for
// the same slots, and the release/acquire argument in route_cache.hpp is
// what keeps TSan silent. Without TSan the tests still check the
// functional contract (first writer wins, name mismatch rejects, out of
// range ids fall through).
#include "remote/route_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using compadres::remote::RouteIdCache;

namespace {
struct Route {
    int tag = 0;
};
} // namespace

TEST(RouteIdCache, LookupMissesUntilPublished) {
    RouteIdCache<Route> cache;
    cache.reset(8);
    EXPECT_EQ(cache.capacity(), 8u);
    EXPECT_EQ(cache.lookup(3, "r3"), nullptr);

    Route r;
    cache.publish(3, &r, "r3");
    EXPECT_EQ(cache.lookup(3, "r3"), &r);
}

TEST(RouteIdCache, NameMismatchRejectsAliasedId) {
    // Peer-assigned ids are untrusted: an id that aliases a different
    // operation must miss, not return the wrong route.
    RouteIdCache<Route> cache;
    cache.reset(4);
    Route r;
    cache.publish(1, &r, "telemetry");
    EXPECT_EQ(cache.lookup(1, "telemetry"), &r);
    EXPECT_EQ(cache.lookup(1, "command"), nullptr);
}

TEST(RouteIdCache, OutOfRangeIdsAreIgnored) {
    RouteIdCache<Route> cache;
    cache.reset(4);
    Route r;
    cache.publish(99, &r, "r"); // silently dropped
    EXPECT_EQ(cache.lookup(99, "r"), nullptr);
    EXPECT_EQ(cache.lookup(4, "r"), nullptr);
}

TEST(RouteIdCache, FirstPublishWins) {
    RouteIdCache<Route> cache;
    cache.reset(4);
    Route first, second;
    cache.publish(2, &first, "op");
    cache.publish(2, &second, "op"); // dropped, entry stays immutable
    EXPECT_EQ(cache.lookup(2, "op"), &first);
}

TEST(RouteIdCache, ResetFreesAndResizes) {
    RouteIdCache<Route> cache;
    cache.reset(4);
    Route r;
    cache.publish(0, &r, "op");
    cache.reset(2); // frees the entry; new empty slots
    EXPECT_EQ(cache.lookup(0, "op"), nullptr);
    EXPECT_EQ(cache.capacity(), 2u);
}

TEST(RouteIdCache, ConcurrentReadersSeeOnlyCompleteEntries) {
    // The reactor scenario: loop threads resolve ids while another thread
    // (a second wire's reader, or a racing duplicate frame) publishes the
    // same slots. A reader must observe either a miss or a fully-formed
    // entry whose name matches — never a torn one. Run under TSan to
    // check the release/acquire pairing, not just the outcome.
    constexpr std::size_t kSlots = 64;
    constexpr int kReaders = 4;
    constexpr int kWriters = 2;
    constexpr int kRounds = 2000;

    // Stable storage outliving the cache, as the bridge's import map
    // guarantees for its keys.
    std::vector<Route> routes(kSlots);
    std::vector<std::string> names(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        routes[i].tag = static_cast<int>(i);
        names[i] = "route-" + std::to_string(i);
    }

    RouteIdCache<Route> cache;
    cache.reset(kSlots);

    std::atomic<bool> go{false};
    std::atomic<int> writers_active{kWriters};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) {}
            for (int round = 0; round < kRounds; ++round) {
                const std::uint32_t id =
                    static_cast<std::uint32_t>(round % kSlots);
                cache.publish(id, &routes[id], names[id]);
            }
            writers_active.fetch_sub(1, std::memory_order_release);
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) {}
            auto pass = [&] {
                for (std::size_t i = 0; i < kSlots; ++i) {
                    const std::uint32_t id = static_cast<std::uint32_t>(i);
                    const Route* found = cache.lookup(id, names[i]);
                    if (found != nullptr) {
                        // A hit is always the one immutable entry for
                        // this id.
                        ASSERT_EQ(found, &routes[i]);
                        ASSERT_EQ(found->tag, static_cast<int>(i));
                        hits.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            };
            // Race the writers for as long as they run (the schedule
            // decides how many passes that is — could be zero overlap),
            // then take one pass against the fully-published cache so
            // the hit assertion below never depends on timing.
            while (writers_active.load(std::memory_order_acquire) > 0) {
                pass();
            }
            pass();
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    // Everything was published by the end, so late lookups all hit.
    for (std::size_t i = 0; i < kSlots; ++i) {
        EXPECT_EQ(cache.lookup(static_cast<std::uint32_t>(i), names[i]),
                  &routes[i]);
    }
    // Every reader's final pass ran against the complete cache.
    EXPECT_GE(hits.load(), static_cast<std::uint64_t>(kReaders) * kSlots);
}
