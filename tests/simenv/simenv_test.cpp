// Simulated platforms: the injectors must be deterministic, correctly
// parameterized, and produce the causal behaviours the Table 2 / Fig. 9
// experiment relies on.
#include "simenv/platform.hpp"

#include "rt/clock.hpp"

#include <gtest/gtest.h>

using namespace compadres;

TEST(Profiles, TimesysIsQuiet) {
    const auto p = simenv::PlatformProfile::timesys_ri();
    EXPECT_TRUE(p.pooled_messages);
    EXPECT_EQ(p.gc_threshold_bytes, 0);
    EXPECT_EQ(p.os_noise_probability, 0.0);
}

TEST(Profiles, MackinacHasOsNoiseButNoGc) {
    const auto p = simenv::PlatformProfile::mackinac();
    EXPECT_TRUE(p.pooled_messages);
    EXPECT_EQ(p.gc_threshold_bytes, 0);
    EXPECT_GT(p.os_noise_probability, 0.0);
    EXPECT_GT(p.os_noise_max_ns, p.os_noise_min_ns);
}

TEST(Profiles, Jdk14HasGcAndFreshAllocation) {
    const auto p = simenv::PlatformProfile::jdk14();
    EXPECT_FALSE(p.pooled_messages);
    EXPECT_GT(p.gc_threshold_bytes, 0);
    EXPECT_GT(p.gc_pause_max_ns, p.gc_pause_min_ns);
}

TEST(Profiles, ForPlatformMapsAllThree) {
    EXPECT_EQ(simenv::PlatformProfile::for_platform(
                  simenv::Platform::kTimesysRI).name,
              "TimesysRI");
    EXPECT_EQ(simenv::PlatformProfile::for_platform(
                  simenv::Platform::kMackinac).name,
              "Mackinac");
    EXPECT_EQ(simenv::PlatformProfile::for_platform(simenv::Platform::kJdk14).name,
              "JDK1.4");
}

TEST(Profiles, ToStringNames) {
    EXPECT_STREQ(simenv::to_string(simenv::Platform::kTimesysRI), "TimesysRI");
    EXPECT_STREQ(simenv::to_string(simenv::Platform::kMackinac), "Mackinac");
    EXPECT_STREQ(simenv::to_string(simenv::Platform::kJdk14), "JDK1.4");
}

TEST(GcInjector, PausesOnlyAfterThresholdBytes) {
    auto profile = simenv::PlatformProfile::jdk14();
    profile.gc_threshold_bytes = 10'000;
    profile.gc_pause_min_ns = 100'000;
    profile.gc_pause_max_ns = 100'000;
    simenv::PlatformRuntime runtime(profile, 1);
    for (int i = 0; i < 9; ++i) runtime.on_allocate(1'000);
    EXPECT_EQ(runtime.gc_pause_count(), 0);
    runtime.on_allocate(1'000); // crosses 10k
    EXPECT_EQ(runtime.gc_pause_count(), 1);
}

TEST(GcInjector, AccountingResetsAfterPause) {
    auto profile = simenv::PlatformProfile::jdk14();
    profile.gc_threshold_bytes = 1'000;
    profile.gc_pause_min_ns = 1'000;
    profile.gc_pause_max_ns = 1'000;
    simenv::PlatformRuntime runtime(profile, 1);
    for (int i = 0; i < 10; ++i) runtime.on_allocate(1'000);
    EXPECT_EQ(runtime.gc_pause_count(), 10);
}

TEST(GcInjector, PauseActuallyTakesTime) {
    auto profile = simenv::PlatformProfile::jdk14();
    profile.gc_threshold_bytes = 1;
    profile.gc_pause_min_ns = 2'000'000;
    profile.gc_pause_max_ns = 2'000'000;
    simenv::PlatformRuntime runtime(profile, 1);
    const auto t0 = rt::now_ns();
    runtime.on_allocate(10);
    EXPECT_GE(rt::now_ns() - t0, 2'000'000);
}

TEST(GcInjector, DisabledCollectorNeverPauses) {
    simenv::PlatformRuntime runtime(simenv::PlatformProfile::timesys_ri(), 1);
    for (int i = 0; i < 1000; ++i) runtime.on_allocate(1'000'000);
    EXPECT_EQ(runtime.gc_pause_count(), 0);
}

TEST(NoiseInjector, FiresAtRoughlyConfiguredRate) {
    auto profile = simenv::PlatformProfile::mackinac();
    profile.os_noise_probability = 0.10;
    profile.os_noise_min_ns = 0;
    profile.os_noise_max_ns = 0;
    simenv::PlatformRuntime runtime(profile, 7);
    constexpr int kTrials = 20'000;
    for (int i = 0; i < kTrials; ++i) runtime.on_dispatch();
    const double rate =
        static_cast<double>(runtime.noise_event_count()) / kTrials;
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 0.15);
}

TEST(NoiseInjector, QuietProfileNeverFires) {
    simenv::PlatformRuntime runtime(simenv::PlatformProfile::timesys_ri(), 7);
    for (int i = 0; i < 10'000; ++i) runtime.on_dispatch();
    EXPECT_EQ(runtime.noise_event_count(), 0);
}

TEST(NoiseInjector, DeterministicForFixedSeed) {
    auto profile = simenv::PlatformProfile::mackinac();
    profile.os_noise_min_ns = 0;
    profile.os_noise_max_ns = 0;
    simenv::PlatformRuntime a(profile, 1234);
    simenv::PlatformRuntime b(profile, 1234);
    for (int i = 0; i < 5'000; ++i) {
        a.on_dispatch();
        b.on_dispatch();
    }
    EXPECT_EQ(a.noise_event_count(), b.noise_event_count());
}

TEST(NoiseInjector, DifferentSeedsDiverge) {
    auto profile = simenv::PlatformProfile::mackinac();
    profile.os_noise_probability = 0.5;
    profile.os_noise_min_ns = 0;
    profile.os_noise_max_ns = 0;
    simenv::PlatformRuntime a(profile, 1);
    simenv::PlatformRuntime b(profile, 2);
    for (int i = 0; i < 5'000; ++i) {
        a.on_dispatch();
        b.on_dispatch();
    }
    EXPECT_NE(a.noise_event_count(), b.noise_event_count());
}

TEST(Profiles, RtgcIsIncrementalNotStopTheWorld) {
    const auto rtgc = simenv::PlatformProfile::rtgc();
    const auto jdk = simenv::PlatformProfile::jdk14();
    EXPECT_FALSE(rtgc.pooled_messages);
    // Smaller increments, triggered more often: bounded pauses.
    EXPECT_LT(rtgc.gc_threshold_bytes, jdk.gc_threshold_bytes);
    EXPECT_LT(rtgc.gc_pause_max_ns, jdk.gc_pause_min_ns);
}

TEST(Profiles, RtgcMappedByForPlatform) {
    EXPECT_EQ(simenv::PlatformProfile::for_platform(simenv::Platform::kRtgc).name,
              "RTGC");
    EXPECT_STREQ(simenv::to_string(simenv::Platform::kRtgc), "RTGC");
}

TEST(GcInjector, RtgcPausesOftenButBriefly) {
    simenv::PlatformRuntime rtgc(simenv::PlatformProfile::rtgc(), 3);
    simenv::PlatformRuntime jdk(simenv::PlatformProfile::jdk14(), 3);
    for (int i = 0; i < 200; ++i) {
        rtgc.on_allocate(2048);
        jdk.on_allocate(2048);
    }
    EXPECT_GT(rtgc.gc_pause_count(), jdk.gc_pause_count());
}
