// compadres-trace: decode a flight-recorder binary dump into Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
//   compadres-trace <dump.bin> [-o out.json]
//
// Without -o the JSON goes to stdout, so
//   compadres-trace flight.bin > trace.json
// works too. A short per-event-type census goes to stderr either way, so
// piping stdout stays clean.
#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <string>

namespace obs = compadres::obs;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <dump.bin> [-o out.json]\n"
                 "  Decodes a Compadres flight-recorder dump (written by\n"
                 "  FlightRecorder::dump_file or the fatal-signal handler)\n"
                 "  into Chrome trace-event JSON for Perfetto.\n",
                 argv0);
    return 1;
}

} // namespace

int main(int argc, char** argv) {
    const char* in_path = nullptr;
    const char* out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0) {
            if (i + 1 >= argc) return usage(argv[0]);
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            return usage(argv[0]);
        } else if (!in_path) {
            in_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (!in_path) return usage(argv[0]);

    std::vector<obs::Event> events;
    try {
        events = obs::decode_events_file(in_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", in_path, e.what());
        return 2;
    }

    std::map<std::string, std::size_t> census;
    for (const obs::Event& e : events) ++census[obs::event_name(e.type)];
    std::fprintf(stderr, "%s: %zu event(s)\n", in_path, events.size());
    for (const auto& [name, count] : census) {
        std::fprintf(stderr, "  %-16s %zu\n", name.c_str(), count);
    }

    const std::string json = obs::chrome_trace_json(events);
    if (out_path) {
        std::FILE* f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 2;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path);
    } else {
        std::fwrite(json.data(), 1, json.size(), stdout);
    }
    return 0;
}
