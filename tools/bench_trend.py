#!/usr/bin/env python3
"""Aggregate the repo's BENCH_*.json artifacts into one trajectory table.

Each perf PR lands a bench binary that drops a BENCH_<name>.json next to
the build tree (hop, remote, fanin, lanes, obs, ...). This reads every
BENCH_*.json under the given directory (default: ./build, falling back to
the current directory) and prints one row per benchmark with its headline
numbers, so the performance trajectory across PRs is visible in one
place without opening five differently-shaped JSON files.

Missing, empty, or corrupt files never abort the run: absent files are
reported as an informational note (exit 0, so CI steps that run before
any bench has executed don't fail), and unreadable files get a row
flagging the problem while every other row still prints.

Stdlib only; no dependencies.

Usage:
    tools/bench_trend.py [--format text|markdown] [build-dir ...]
"""

import glob
import json
import os
import sys


def us(ns):
    """ns -> microseconds string, or '-' when absent."""
    if ns is None:
        return "-"
    return "%.1f" % (ns / 1000.0)


def headline(doc):
    """(p50_us, p99_us, detail) headline for one bench document.

    Every bench names its own headline comparison; anything unrecognized
    still gets a row from whatever common fields it carries.
    """
    name = doc.get("benchmark", "?")
    if name == "hop_microbench":
        s = doc.get("single_lock", {})
        return (
            us(s.get("median_ns")),
            us(s.get("p99_ns")),
            "locks/hop %.3f" % doc.get("locks_per_uncontended_hop", -1),
        )
    if name == "remote_roundtrip":
        shm = doc.get("shm", {})
        if shm.get("upgraded"):
            # Co-located rung: headline the shared-memory wire against the
            # same-run TCP control, plus the failover drill outcome.
            s = shm.get("shm", {})
            fo = shm.get("failover", {})
            return (
                us(s.get("median_ns")),
                us(s.get("p99_ns")),
                "shm rung %.1fx vs same-run tcp, allocs/msg %.2f, "
                "futex/rt %.3f, failover missing %d dup %d resent %d"
                % (
                    shm.get("paired_p50_speedup", -1),
                    shm.get("allocs_per_message", -1),
                    shm.get("futex_per_roundtrip", -1),
                    fo.get("missing", -1),
                    fo.get("duplicates", -1),
                    fo.get("resent_frames", -1),
                ),
            )
        sizes = doc.get("sizes", [])
        fast = sizes[0].get("fast", {}) if sizes else {}
        detail = "allocs/msg %.2f, p50 vs legacy %+.1f%%" % (
            doc.get("allocs_per_message_steady_state", -1),
            doc.get("improvement_p50_32B_pct", 0),
        )
        if "shm" in doc:
            detail += ", shm upgrade FAILED"
        return (us(fast.get("median_ns")), us(fast.get("p99_ns")), detail)
    if name == "fanin_roundtrip":
        gated = doc.get("gated_interleaved", {})
        return (
            us(gated.get("reactor64_p50_ns")),
            us(gated.get("reactor64_p99_ns")),
            "reactor@64 on %s threads, allocs/msg %.2f"
            % (
                doc.get("reactor_threads_at_64", "?"),
                doc.get("allocs_per_message_steady_state", -1),
            ),
        )
    if name == "lane_interference":
        legs = {leg.get("leg"): leg for leg in doc.get("legs", [])}
        con = legs.get("two_lane_bulk", {})
        sw_unc = legs.get("single_wire", {})
        sw_con = legs.get("single_wire_bulk", {})
        inversion = "-"
        if sw_unc.get("p50_ns") and sw_con.get("p50_ns"):
            inversion = "%.0fx" % (sw_con["p50_ns"] / sw_unc["p50_ns"])
        return (
            us(con.get("p50_ns")),
            us(con.get("p99_ns")),
            "urgent under bulk; single-wire inversion %s, allocs/msg %.2f"
            % (inversion, doc.get("allocs_per_message_steady_state", -1)),
        )
    if name == "obs_overhead":
        sizes = doc.get("sizes", [])
        on = sizes[0].get("on", {}) if sizes else {}
        stitch = doc.get("trace_stitch", {})
        return (
            us(on.get("median_ns")),
            us(on.get("p99_ns")),
            "plane-on overhead %+.1f%%, allocs/msg %.2f, stitch %s"
            % (
                doc.get("overhead_p50_pct", 0),
                doc.get("allocs_per_message_steady_state", -1),
                "ok" if stitch.get("stitched") else "FAIL",
            ),
        )
    if name == "recompose_churn":
        churn = doc.get("churn", {})
        pause = doc.get("pause", {})
        return (
            us(churn.get("p50_ns")),
            us(churn.get("p99_ns")),
            "under churn; p50 %.2fx baseline, %d repolicies, "
            "pause p99 %s us, lost %d, dropped +%d"
            % (
                doc.get("p50_ratio", -1),
                doc.get("repolicies", 0),
                us(pause.get("p99_ns")),
                doc.get("lost", -1),
                doc.get("frames_dropped_growth", -1),
            ),
        )
    if name == "metrics_snapshot":
        counters = doc.get("counters", {})
        gauges = doc.get("gauges", {})
        hists = doc.get("histograms", {})
        sources = doc.get("sources", {})
        return (
            "-",
            "-",
            "%d counter(s), %d gauge(s), %d histogram(s), %d source sample(s)"
            % (len(counters), len(gauges), len(hists), len(sources)),
        )
    return ("-", "-", "(no headline extractor)")


def fanin_backend_rows(base, doc):
    """Backend-comparison sub-rows for fanin_roundtrip (PR-10)."""
    rows = []
    notes = []
    compare = doc.get("backend_compare")
    if compare is None:
        notes.append(
            "note: %s has no epoll-vs-uring comparison (artifact predates "
            "the io_uring backend; re-run fanin_bench)" % base
        )
        return rows, notes
    if "skipped" in compare:
        notes.append(
            "note: %s backend comparison skipped: %s"
            % (base, compare["skipped"])
        )
        return rows, notes
    for backend in ("epoll", "uring"):
        leg = compare.get(backend, {})
        rows.append(
            (
                base,
                "  %s@%s" % (backend, compare.get("wires", "?")),
                us(leg.get("p50_ns")),
                us(leg.get("p99_ns")),
                "loop syscalls/frame %.4f, server sendmsg/frame %.4f, "
                "allocs/msg %.2f"
                % (
                    leg.get("loop_syscalls_per_frame", -1),
                    leg.get("server_send_syscalls_per_frame", -1),
                    leg.get("allocs_per_message", -1),
                ),
            )
        )
    return rows, notes


def lane_backend_rows(base, doc):
    """Backend-comparison sub-rows for lane_interference (PR-10)."""
    rows = []
    notes = []
    backends = doc.get("backends")
    if backends is None:
        notes.append(
            "note: %s has no reactor-served-lanes comparison (artifact "
            "predates the io_uring backend; re-run lane_bench)" % base
        )
        return rows, notes
    if "skipped" in backends:
        notes.append(
            "note: %s backend comparison skipped: %s"
            % (base, backends["skipped"])
        )
        return rows, notes
    for backend in ("epoll", "uring"):
        leg = backends.get(backend, {})
        rows.append(
            (
                base,
                "  %s lanes" % backend,
                us(leg.get("contended_p50_ns")),
                us(leg.get("contended_p99_ns")),
                "urgent under bulk (clean p99 %s us), loop syscalls/frame "
                "%.4f"
                % (
                    us(leg.get("uncontended_p99_ns")),
                    leg.get("loop_syscalls_per_frame", -1),
                ),
            )
        )
    return rows, notes


def extra_rows(base, doc):
    """(rows, notes) beyond the headline for benches with sub-rungs.

    remote_roundtrip's co-located run carries a zero-copy payload sweep and
    a 2-band interference rung; fanin_roundtrip and lane_interference carry
    an epoll-vs-uring backend comparison. Each gets its own row so the
    trajectory of both is visible without opening the JSON. Older artifacts
    that predate those fields get a note, never an error — the trend table
    must keep rendering across a bench-format transition.
    """
    rows = []
    notes = []
    if doc.get("benchmark") == "fanin_roundtrip":
        return fanin_backend_rows(base, doc)
    if doc.get("benchmark") == "lane_interference":
        return lane_backend_rows(base, doc)
    if doc.get("benchmark") != "remote_roundtrip":
        return rows, notes
    shm = doc.get("shm", {})
    if not shm.get("upgraded"):
        return rows, notes
    sweep = shm.get("sweep")
    if sweep:
        for entry in sweep:
            zc = entry.get("zero_copy", {})
            rows.append(
                (
                    base,
                    "  sweep@%sB" % entry.get("payload_bytes", "?"),
                    us(zc.get("median_ns")),
                    us(zc.get("p99_ns")),
                    "zero-copy rx vs copy-out: paired p50 %+.1f%%"
                    % entry.get("paired_improvement_pct", 0),
                )
            )
    else:
        notes.append(
            "note: %s has no zero-copy payload sweep (artifact predates "
            "the banded-shm bench; re-run remote_roundtrip)" % base
        )
    two_band = shm.get("two_band")
    if two_band:
        con = two_band.get("contended", {})
        rows.append(
            (
                base,
                "  2-band shm",
                us(con.get("median_ns")),
                us(con.get("p99_ns")),
                "urgent under bulk; p99 %.2fx uncontended over %d bulk "
                "frames"
                % (
                    two_band.get("urgent_p99_ratio", -1),
                    two_band.get("bulk_frames", -1),
                ),
            )
        )
    else:
        notes.append(
            "note: %s has no 2-band shm rung (artifact predates the "
            "banded-shm bench; re-run remote_roundtrip)" % base
        )
    if sweep and "rx_copies" in shm and shm.get("rx_copies") != 0:
        notes.append(
            "note: %s shm steady state copied %s frames out of the "
            "segment (zero-copy regression?)" % (base, shm.get("rx_copies"))
        )
    return rows, notes


def render_text(rows):
    widths = [
        max(len(r[i]) for r in rows + [HEADER]) for i in range(len(HEADER))
    ]
    for row in [HEADER] + rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())


def render_markdown(rows):
    """GitHub-flavored pipe table (for CI job summaries)."""
    print("| " + " | ".join(HEADER) + " |")
    print("|" + "|".join(" --- " for _ in HEADER) + "|")
    for row in rows:
        print("| " + " | ".join(c.replace("|", "\\|") for c in row) + " |")


def main(argv):
    fmt = "text"
    dirs = []
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--format":
            if not args or args[0] not in ("text", "markdown"):
                print("--format needs 'text' or 'markdown'", file=sys.stderr)
                return 2
            fmt = args.pop(0)
        elif a.startswith("--format="):
            fmt = a.split("=", 1)[1]
            if fmt not in ("text", "markdown"):
                print("--format needs 'text' or 'markdown'", file=sys.stderr)
                return 2
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        else:
            dirs.append(a)
    if not dirs:
        dirs = ["build" if os.path.isdir("build") else "."]
    paths = []
    for d in dirs:
        paths.extend(sorted(glob.glob(os.path.join(d, "BENCH_*.json"))))
    if not paths:
        # Not an error: the trend table is simply empty until a bench runs.
        print(
            "no BENCH_*.json found under: %s (run a bench target first, "
            "e.g. `cmake --build build --target obs_bench`)" % ", ".join(dirs)
        )
        return 0

    rows = []
    # One row per BENCHMARK, not per file: repeated runs of the same bench
    # (a smoke artifact next to a full one, or the same bench found under
    # several build dirs) used to each get a row, silently inflating the
    # table. Keep only the newest file (by mtime) per benchmark name and
    # say which stale artifacts were skipped. Files whose bench can't be
    # identified (unreadable/corrupt) always keep their own diagnostic row.
    newest = {}  # benchmark name -> (mtime, path, doc)
    skipped = []  # (base, benchmark, kept_base)
    for path in paths:
        base = os.path.basename(path)
        try:
            with open(path) as f:
                text = f.read()
            mtime = os.path.getmtime(path)
        except OSError as e:
            rows.append((base, "?", "-", "-", "unreadable: %s" % e))
            continue
        if not text.strip():
            rows.append((base, "?", "-", "-", "empty file (bench aborted?)"))
            continue
        try:
            doc = json.loads(text)
        except ValueError as e:
            rows.append((base, "?", "-", "-", "corrupt JSON: %s" % e))
            continue
        if not isinstance(doc, dict):
            rows.append((base, "?", "-", "-", "not a JSON object"))
            continue
        # Unnamed docs dedupe per-file (the name is all we have to group on).
        name = doc.get("benchmark") or base
        prev = newest.get(name)
        if prev is None:
            newest[name] = (mtime, path, doc)
        elif mtime > prev[0]:
            skipped.append((os.path.basename(prev[1]), name, base))
            newest[name] = (mtime, path, doc)
        else:
            skipped.append((base, name, os.path.basename(prev[1])))

    notes = []
    for _, (mtime, path, doc) in sorted(newest.items()):
        base = os.path.basename(path)
        p50, p99, detail = headline(doc)
        rows.append((base, doc.get("benchmark", "?"), p50, p99, detail))
        sub_rows, sub_notes = extra_rows(base, doc)
        rows.extend(sub_rows)
        notes.extend(sub_notes)

    if fmt == "markdown":
        render_markdown(rows)
    else:
        render_text(rows)
    for note in notes:
        print(note)
    for base, name, kept in sorted(skipped):
        print("note: skipped %s (older run of %s; kept %s)" % (base, name, kept))
    return 0


HEADER = ("file", "benchmark", "p50(us)", "p99(us)", "headline")

if __name__ == "__main__":
    sys.exit(main(sys.argv))
