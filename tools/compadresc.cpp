// compadresc: command-line front-end of the Compadres compiler.
#include "compiler/cli.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    return compadres::compiler::compadresc_main(args, std::cout, std::cerr);
}
